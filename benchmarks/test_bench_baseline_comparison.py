"""Baseline comparison: WS³ proof for all inputs vs. single-input model checking.

The paper's headline claim (abstract and Section 6): the constraint-based
approach proves well-specification *for all of the infinitely many inputs*
in less time than earlier explicit-state tools [6, 8, 21, 25] needed to
check one single large input.  This benchmark pits the two approaches
against each other on the same protocol:

* ``ws3``   — one run of the WS³ membership check (covers every input);
* ``explicit-n<size>`` — explicit-state verification of *one* input of the
  given population size (the baseline; its cost grows quickly with the
  population, while the WS³ check is independent of it).
"""

from __future__ import annotations

import pytest

from repro.protocols.library import flock_of_birds_protocol, majority_protocol
from repro.verification.explicit import verify_single_input
from repro.verification.ws3 import verify_ws3

from .conftest import run_once

MAJORITY_POPULATIONS = [10, 14, 18]
FLOCK_POPULATIONS = [7, 9, 11]


def test_majority_all_inputs_via_ws3(benchmark):
    result = run_once(benchmark, verify_ws3, majority_protocol())
    assert result.is_ws3


@pytest.mark.parametrize("size", MAJORITY_POPULATIONS)
def test_majority_single_input_via_explicit_search(benchmark, size):
    protocol = majority_protocol()
    population = {"A": size // 2, "B": size - size // 2}
    result = run_once(
        benchmark, verify_single_input, protocol, population, max_configurations=2_000_000
    )
    assert result.well_specified


def test_flock_all_inputs_via_ws3(benchmark):
    result = run_once(benchmark, verify_ws3, flock_of_birds_protocol(6))
    assert result.is_ws3


@pytest.mark.parametrize("size", FLOCK_POPULATIONS)
def test_flock_single_input_via_explicit_search(benchmark, size):
    protocol = flock_of_birds_protocol(6)
    population = {"sick": size, "healthy": 2}
    result = run_once(
        benchmark, verify_single_input, protocol, population, max_configurations=2_000_000
    )
    assert result.well_specified
