"""Batch verification: fan a set of protocols over the engine, with caching.

``verify_many`` is the multi-protocol front end the ROADMAP's batch
scenario asks for: each protocol becomes one ``verify-ws3`` subproblem, the
pool verifies ``jobs`` of them concurrently, and a content-addressed
:class:`~repro.engine.cache.ResultCache` short-circuits protocols whose
verdict is already known (identical protocol + engine version + options),
so repeated sweeps — benchmark reruns, parameter scans that revisit
instances — are served from disk in milliseconds.

Results are uniform portable summaries (plain dictionaries) whether they
come from a worker, from the in-process serial path, or from the cache.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.engine.cache import ResultCache, protocol_content_hash
from repro.engine.scheduler import ENGINE_VERSION, VerificationEngine
from repro.engine.subproblem import (
    Subproblem,
    encode_consensus_counterexample,
)
from repro.io.serialization import protocol_to_dict
from repro.protocols.protocol import PopulationProtocol


def ws3_cache_options(
    strategy: str = "auto", theory: str = "auto", max_layers: int | None = None
) -> dict:
    """The options dictionary that keys cached WS³ verdicts.

    The single source of truth for cache keying: every caller that reads or
    writes the result cache (``verify_many``, ``scripts/bench.py``) must
    build its options through here, or identical runs would stop sharing
    entries.
    """
    return {"check": "ws3", "strategy": strategy, "theory": theory, "max_layers": max_layers}


def ws3_result_to_dict(result) -> dict:
    """Portable summary of a :class:`~repro.verification.ws3.WS3Result`."""
    layered = result.layered_termination
    summary = {
        "protocol": result.protocol_name,
        "is_ws3": result.is_ws3,
        "layered_termination": {
            "holds": layered.holds,
            "strategy": (
                layered.certificate.strategy
                if layered.certificate is not None
                else layered.statistics.get("strategy")
            ),
            "num_layers": (
                layered.certificate.num_layers if layered.certificate is not None else None
            ),
            "reason": layered.reason,
        },
        "strong_consensus": None,
        "time_seconds": result.statistics.get("time"),
    }
    strong = result.strong_consensus
    if strong is not None:
        summary["strong_consensus"] = {
            "holds": strong.holds,
            "refinements": len(strong.refinements),
            "counterexample": (
                encode_consensus_counterexample(strong.counterexample)
                if strong.counterexample is not None
                else None
            ),
        }
    return summary


@dataclass
class BatchItem:
    """Verdict for one protocol of a batch."""

    index: int
    protocol_name: str
    protocol_hash: str
    summary: dict
    from_cache: bool = False
    time_seconds: float = 0.0

    @property
    def is_ws3(self) -> bool:
        return bool(self.summary.get("is_ws3"))


@dataclass
class BatchResult:
    """Outcome of a :func:`verify_many` run."""

    items: list[BatchItem]
    statistics: dict = field(default_factory=dict)

    @property
    def all_ws3(self) -> bool:
        return all(item.is_ws3 for item in self.items)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


def verify_many(
    protocols: Iterable[PopulationProtocol],
    jobs: int = 1,
    cache: ResultCache | None = None,
    cache_dir=None,
    strategy: str = "auto",
    theory: str = "auto",
    max_layers: int | None = None,
    engine: VerificationEngine | None = None,
) -> BatchResult:
    """Verify many protocols, fanning out over worker processes.

    Protocols appearing more than once (by content hash) are verified once;
    later occurrences reuse the verdict.  With a cache (an explicit
    :class:`ResultCache` or a ``cache_dir`` path), verdicts are read from /
    written to disk; cache traffic is reported in the result statistics.
    """
    from repro.verification.ws3 import verify_ws3

    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    start = time.perf_counter()
    protocols = list(protocols)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    options = ws3_cache_options(strategy=strategy, theory=theory, max_layers=max_layers)

    items: list[BatchItem | None] = [None] * len(protocols)
    pending: list[tuple[int, PopulationProtocol, str, str]] = []
    first_occurrence: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []

    for index, protocol in enumerate(protocols):
        content_hash = protocol_content_hash(protocol)
        key = ResultCache.entry_key(content_hash, ENGINE_VERSION, options)
        if content_hash in first_occurrence:
            duplicates.append((index, first_occurrence[content_hash]))
            continue
        first_occurrence[content_hash] = index
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            items[index] = BatchItem(
                index=index,
                protocol_name=protocol.name,
                protocol_hash=content_hash,
                summary=cached,
                from_cache=True,
            )
        else:
            pending.append((index, protocol, content_hash, key))

    verified = 0
    parallel = jobs > 1 or (engine is not None and engine.parallel)
    if pending:
        verified = len(pending)
        if parallel and len(pending) > 1:
            # Across-protocol fan-out: one verify-ws3 subproblem per protocol.
            _verify_parallel(pending, items, options, jobs, engine)
        else:
            # A single pending protocol gets the within-protocol parallelism
            # (pattern pairs, strategy portfolio) instead of one lonely
            # worker; with jobs=1 this is the plain serial loop.
            for index, protocol, content_hash, _key in pending:
                instance_start = time.perf_counter()
                result = verify_ws3(
                    protocol,
                    strategy=strategy,
                    theory=theory,
                    max_layers=max_layers,
                    jobs=jobs if engine is None else 1,
                    engine=engine,
                )
                items[index] = BatchItem(
                    index=index,
                    protocol_name=protocol.name,
                    protocol_hash=content_hash,
                    summary=ws3_result_to_dict(result),
                    time_seconds=time.perf_counter() - instance_start,
                )
        if cache is not None:
            for index, _protocol, _content_hash, key in pending:
                cache.put(key, items[index].summary)

    for index, original in duplicates:
        source = items[original]
        items[index] = BatchItem(
            index=index,
            protocol_name=protocols[index].name,
            protocol_hash=source.protocol_hash,
            summary=source.summary,
            from_cache=source.from_cache,
        )

    statistics = {
        "protocols": len(protocols),
        "verified": verified,
        "duplicates": len(duplicates),
        "jobs": jobs if engine is None else engine.jobs,
        "time": time.perf_counter() - start,
        "cache": dict(cache.statistics) if cache is not None else None,
    }
    return BatchResult(items=list(items), statistics=statistics)


def _verify_parallel(
    pending: Sequence[tuple[int, PopulationProtocol, str, str]],
    items: list,
    options: dict,
    jobs: int,
    engine: VerificationEngine | None,
) -> None:
    """Fan the pending protocols over the pool, one subproblem each."""
    subproblems = [
        Subproblem(
            kind="verify-ws3",
            index=position,
            protocol_key=content_hash,
            protocol_data=protocol_to_dict(protocol),
            params={
                "strategy": options["strategy"],
                "theory": options["theory"],
                "max_layers": options["max_layers"],
            },
        )
        for position, (_index, protocol, content_hash, _key) in enumerate(pending)
    ]
    owned = engine is None
    engine = engine or VerificationEngine(jobs=jobs)
    try:
        results = engine.run_wave(subproblems)
    finally:
        if owned:
            engine.shutdown()
    for position, result in enumerate(results):
        index, protocol, content_hash, _key = pending[position]
        items[index] = BatchItem(
            index=index,
            protocol_name=protocol.name,
            protocol_hash=content_hash,
            summary=result.data["summary"],
            time_seconds=result.statistics.get("time", 0.0),
        )
