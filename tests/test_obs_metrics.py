"""Tests of the metrics registry (:mod:`repro.obs.metrics`).

The snapshot algebra carries the routing tier's fleet aggregation, so the
properties the router relies on — merge associativity/commutativity, label
stamping, exact bucket sums — are asserted directly, the algebraic ones
with hypothesis over integer-valued observations (integer float arithmetic
is exact, so associativity is testable without tolerance games).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
    parse_prometheus_text,
    prometheus_text,
)


class TestCounter:
    def test_inc_value_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_events_total", "test")
        counter.inc()
        counter.inc(2, event="hit")
        counter.inc(event="hit")
        assert counter.value() == 1
        assert counter.value(event="hit") == 3
        assert counter.value(event="miss") == 0
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help text")
        second = registry.counter("repro_test_total")
        assert first is second

    def test_non_scalar_label_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(TypeError):
            counter.inc(event=["a", "list"])


class TestGauge:
    def test_set_add_value(self):
        gauge = MetricsRegistry().gauge("repro_test_depth")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value() == 3
        gauge.set(7, shard="s0")
        assert gauge.value(shard="s0") == 7


class TestHistogram:
    def test_observe_count_and_sum(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        for value in (0.001, 0.01, 0.1, 1.0):
            histogram.observe(value)
        assert histogram.count() == 4
        series = histogram.series()[next(iter(histogram.series()))]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(1.111)
        assert sum(series["buckets"]) == 4  # all within the grid

    def test_overflow_lands_outside_buckets(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds", bounds=(1.0, 2.0))
        histogram.observe(5.0)
        series = next(iter(histogram.series().values()))
        assert series["buckets"] == [0, 0]
        assert series["count"] == 1

    def test_nan_and_inf_dropped(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        histogram.observe(float("nan"))
        histogram.observe(math.inf)
        assert histogram.count() == 0

    def test_default_grid_spans_100us_to_100s(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------


def _snapshot_with(counts: dict, observations: list) -> dict:
    """A registry snapshot with the given counter events and observations."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_events_total", "events")
    for event, amount in counts.items():
        if amount:
            counter.inc(amount, event=event)
    histogram = registry.histogram("repro_test_seconds", "latency")
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


class TestSnapshotAlgebra:
    def test_merge_sums_counters_and_buckets(self):
        a = _snapshot_with({"hit": 2}, [0.01])
        b = _snapshot_with({"hit": 3, "miss": 1}, [0.01, 10.0])
        merged = merge_snapshots(a, b)
        series = merged["counters"]["repro_test_events_total"]["series"]
        assert series['{"event":"hit"}'] == 5
        assert series['{"event":"miss"}'] == 1
        histogram = merged["histograms"]["repro_test_seconds"]["series"]["{}"]
        assert histogram["count"] == 3
        assert sum(histogram["buckets"]) == 3

    def test_merge_rejects_mismatched_bucket_grids(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", bounds=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("repro_test_seconds", bounds=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(registry.snapshot(), other.snapshot())

    def test_label_snapshot_stamps_every_series(self):
        snapshot = _snapshot_with({"hit": 1}, [0.01])
        stamped = label_snapshot(snapshot, shard="s0")
        for section in ("counters", "histograms"):
            for block in stamped[section].values():
                for key in block["series"]:
                    assert '"shard":"s0"' in key
        # The stamp must not mutate the source snapshot.
        assert '{"event":"hit"}' in snapshot["counters"]["repro_test_events_total"]["series"]

    def test_label_stamp_wins_on_collision(self):
        snapshot = _snapshot_with({"hit": 1}, [])
        lying = label_snapshot(snapshot, event="forged")
        series = lying["counters"]["repro_test_events_total"]["series"]
        assert list(series) == ['{"event":"forged"}']

    def test_shard_labelled_series_stay_distinct_after_merge(self):
        a = label_snapshot(_snapshot_with({"hit": 2}, []), shard="s0")
        b = label_snapshot(_snapshot_with({"hit": 7}, []), shard="s1")
        merged = merge_snapshots(a, b)
        series = merged["counters"]["repro_test_events_total"]["series"]
        assert series['{"event":"hit","shard":"s0"}'] == 2
        assert series['{"event":"hit","shard":"s1"}'] == 7


#: Integer-valued observations: float addition over (small) integers is
#: exact, so merge associativity is an equality, not an approximation.
_snapshots = st.builds(
    _snapshot_with,
    st.dictionaries(st.sampled_from(["hit", "miss", "store"]), st.integers(0, 50), max_size=3),
    st.lists(st.integers(0, 200).map(float), max_size=20),
)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(a=_snapshots, b=_snapshots)
    def test_merge_is_commutative(self, a, b):
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(max_examples=50, deadline=None)
    @given(a=_snapshots, b=_snapshots, c=_snapshots)
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @settings(max_examples=25, deadline=None)
    @given(a=_snapshots)
    def test_empty_snapshot_is_identity(self, a):
        assert merge_snapshots(a, {}) == merge_snapshots(a)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


class TestPrometheusText:
    def test_round_trip_through_validating_parser(self):
        snapshot = _snapshot_with({"hit": 3, "miss": 1}, [0.001, 0.5, 50.0])
        text = prometheus_text(snapshot)
        samples = parse_prometheus_text(text)
        values = dict(
            (labels.get("event"), value)
            for labels, value in samples["repro_test_events_total"]
        )
        assert values == {"hit": 3, "miss": 1}
        count = samples["repro_test_seconds_count"][0][1]
        assert count == 3
        total = samples["repro_test_seconds_sum"][0][1]
        assert total == pytest.approx(50.501)

    def test_buckets_are_cumulative_and_end_at_count(self):
        snapshot = _snapshot_with({}, [0.001, 0.5, 50.0, 1e9])
        samples = parse_prometheus_text(prometheus_text(snapshot))
        buckets = samples["repro_test_seconds_bucket"]
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative ⇒ monotone
        inf = [value for labels, value in buckets if labels["le"] == "+Inf"]
        assert inf == [4.0]  # +Inf bucket includes the 1e9 overflow

    def test_help_and_type_emitted_once_per_metric(self):
        text = prometheus_text(_snapshot_with({"hit": 1}, [0.1]))
        assert text.count("# TYPE repro_test_events_total counter") == 1
        assert text.count("# TYPE repro_test_seconds histogram") == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(event='quo"te\\slash')
        samples = parse_prometheus_text(prometheus_text(registry.snapshot()))
        assert samples["repro_test_total"][0][0]["event"] == 'quo"te\\slash'

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus_text(
                "# TYPE repro_x counter\n# TYPE repro_x counter\nrepro_x 1\n"
            )

    def test_merged_fleet_snapshot_renders_valid_text(self):
        # The router path end to end: label, merge, render, parse.
        fleet = merge_snapshots(
            label_snapshot(_snapshot_with({"hit": 1}, [0.1]), shard="s0"),
            label_snapshot(_snapshot_with({"hit": 2}, [0.2]), shard="s1"),
            label_snapshot(_snapshot_with({"miss": 1}, []), shard="router"),
        )
        samples = parse_prometheus_text(prometheus_text(fleet))
        shards = {labels["shard"] for labels, _ in samples["repro_test_events_total"]}
        assert shards == {"s0", "s1", "router"}
