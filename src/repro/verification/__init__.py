"""The WS³ verification engine (Sections 4 and 6 of the paper).

Public entry points:

* :func:`repro.verification.ws3.verify_ws3` — decide membership in WS³
  (LayeredTermination + StrongConsensus);
* :func:`repro.verification.layered_termination.check_layered_termination`;
* :func:`repro.verification.strong_consensus.check_strong_consensus`;
* :func:`repro.verification.correctness.check_correctness` — does a WS³
  protocol compute a given predicate? (the Section 6 extension);
* :mod:`repro.verification.explicit` — the explicit-state single-input
  baseline of earlier work.
"""

from repro.verification.correctness import CorrectnessResult, check_correctness
from repro.verification.layered_termination import (
    LayeredTerminationResult,
    check_layered_termination,
    check_partition,
)
from repro.verification.strong_consensus import StrongConsensusResult, check_strong_consensus
from repro.verification.ws3 import WS3Result, verify_ws3

__all__ = [
    "verify_ws3",
    "WS3Result",
    "check_layered_termination",
    "check_partition",
    "LayeredTerminationResult",
    "check_strong_consensus",
    "StrongConsensusResult",
    "check_correctness",
    "CorrectnessResult",
]
