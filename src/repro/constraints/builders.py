"""Reusable IR builders for the paper's recurring constraint blocks.

The verification procedures of Sections 4 and 6 keep re-assembling the same
few constraint shapes (Appendix D.2): flow equations, initial/terminal
population constraints, output-presence constraints, trap and siphon cuts,
and terminal-support-pattern memberships.  This module owns all of them:

* :class:`TerminalPattern` / :func:`terminal_support_patterns` — the
  combinatorial factoring of ``Terminal(c)`` into maximal independent sets
  of the interaction conflict graph;
* :class:`ConstraintBuilder` — one shared naming scheme and the formula
  templates, plus system-level builders that package whole blocks as
  :class:`~repro.constraints.ir.ConstraintSystem` values (with named
  variable groups) ready for simplification and any backend.

Everything here is pure construction: no solver is touched, which is what
lets the same blocks serve the smtlite DPLL(T) backend, the direct-ILP
backend and the engine's worker processes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx

from repro.constraints.ir import ConstraintSystem
from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol, Transition
from repro.smtlite.formula import FALSE, Formula, Implies, conjunction, disjunction
from repro.smtlite.terms import LinearExpr


# ----------------------------------------------------------------------
# Terminal support patterns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TerminalPattern:
    """A candidate shape for a terminal configuration.

    ``allowed`` is a maximal independent set of the interaction conflict
    graph: only these states may be populated.  ``capped`` are the allowed
    states that react with themselves, so they can hold at most one agent.
    Every terminal configuration matches at least one pattern, and every
    configuration matching a pattern is terminal.
    """

    allowed: frozenset
    capped: frozenset

    def admits_output(self, protocol: PopulationProtocol, output: int) -> bool:
        return any(protocol.output_map[state] == output for state in self.allowed)


def terminal_support_patterns(protocol: PopulationProtocol) -> list[TerminalPattern]:
    """Enumerate the terminal support patterns of a protocol.

    The *conflict graph* has the protocol's states as vertices and an edge
    between two distinct states that appear together in the pre of some
    non-silent transition.  A configuration is terminal iff its support is an
    independent set of this graph and every state with a non-silent
    self-interaction holds at most one agent.  Patterns are the maximal
    independent sets (computed via maximal cliques of the complement graph).
    """
    graph = nx.Graph()
    graph.add_nodes_from(protocol.states)
    self_forbidden: set = set()
    for transition in protocol.transitions:
        support = sorted(transition.pre.support(), key=repr)
        if len(support) == 1:
            self_forbidden.add(support[0])
        else:
            graph.add_edge(support[0], support[1])
    complement = nx.complement(graph)
    patterns = []
    for clique in nx.find_cliques(complement):
        allowed = frozenset(clique)
        patterns.append(TerminalPattern(allowed=allowed, capped=frozenset(allowed & self_forbidden)))
    patterns.sort(key=lambda pattern: sorted(map(repr, pattern.allowed)))
    return patterns


# ----------------------------------------------------------------------
# The constraint builder (Appendix D.2)
# ----------------------------------------------------------------------


def state_delta_rows(protocol: PopulationProtocol) -> dict:
    """The flow-equation basis: ``state -> ((transition, delta), ...)``.

    One row per state, in the builder's deterministic orders (states sorted
    by ``repr``, transitions in protocol order) — exactly the sums the state
    equation ``C' = C + Δ·x`` iterates over.  The single source of this
    derivation: both :class:`ConstraintBuilder` and
    :attr:`repro.constraints.context.AnalysisContext.state_deltas` (which
    also ships it to engine workers) call here, so the row order can never
    drift between a hydrated basis and a locally derived one.
    """
    transitions = list(protocol.transitions)
    return {
        state: tuple(
            (transition, transition.delta_map[state])
            for transition in transitions
            if state in transition.delta_map
        )
        for state in sorted(protocol.states, key=repr)
    }


class ConstraintBuilder:
    """Shared naming scheme and constraint templates from Appendix D.2.

    ``state_deltas`` is the optional precomputed flow-equation basis
    (:attr:`repro.constraints.context.AnalysisContext.state_deltas`):
    ``state -> ((transition, delta), ...)`` in enumeration order.  When the
    builder comes from a shared analysis context the basis is derived once
    per protocol (and shipped to engine workers); a standalone builder
    derives it lazily on first use.
    """

    def __init__(self, protocol: PopulationProtocol, state_deltas: dict | None = None):
        self.protocol = protocol
        self.states = sorted(protocol.states, key=repr)
        self.state_index = {state: index for index, state in enumerate(self.states)}
        self.transitions = list(protocol.transitions)
        self.transition_index = {t: index for index, t in enumerate(self.transitions)}
        self.initial_states = protocol.initial_states()
        self._state_deltas = state_deltas

    @property
    def state_deltas(self) -> dict:
        """The per-state flow-equation rows (see :func:`state_delta_rows`)."""
        if self._state_deltas is None:
            self._state_deltas = state_delta_rows(self.protocol)
        return self._state_deltas

    # -- variable families -------------------------------------------------

    def config_vars(self, prefix: str) -> dict:
        return {state: LinearExpr.variable(f"{prefix}_{self.state_index[state]}") for state in self.states}

    def flow_vars(self, prefix: str) -> dict[Transition, LinearExpr]:
        return {
            transition: LinearExpr.variable(f"{prefix}_{self.transition_index[transition]}")
            for transition in self.transitions
        }

    def derived_config(self, source: dict, flow: dict[Transition, LinearExpr]) -> dict:
        """The configuration reached from ``source`` via ``flow``, as expressions.

        Substituting the flow equations away (instead of introducing fresh
        variables per target state plus equality constraints) keeps the
        constraint systems handed to the theory solver small.
        """
        rows = self.state_deltas
        derived = {}
        for state in self.states:
            change = LinearExpr.sum_of(delta * flow[transition] for transition, delta in rows[state])
            derived[state] = source[state] + change
        return derived

    def non_negative(self, config: dict) -> Formula:
        """Every (derived) state count is non-negative."""
        return conjunction([config[state] >= 0 for state in self.states])

    # -- constraint templates ----------------------------------------------

    def initial(self, config: dict) -> Formula:
        """``Initial(c)``: population of size >= 2 located on initial states only."""
        initial_states = self.initial_states
        on_initial = LinearExpr.sum_of(config[state] for state in self.states if state in initial_states)
        off_initial = [config[state] <= 0 for state in self.states if state not in initial_states]
        return conjunction([on_initial >= 2] + off_initial)

    def terminal(self, config: dict) -> Formula:
        """``Terminal(c)``: every non-silent transition is disabled (monolithic form)."""
        clauses = []
        for transition in self.transitions:
            options = [
                config[state] <= transition.pre[state] - 1
                for state in transition.pre.support()
            ]
            clauses.append(disjunction(options))
        return conjunction(clauses)

    def pattern(self, config: dict, pattern: TerminalPattern) -> Formula:
        """Terminal-ness restricted to one support pattern (conjunctive form)."""
        constraints = []
        for state in self.states:
            if state not in pattern.allowed:
                constraints.append(config[state] <= 0)
            elif state in pattern.capped:
                constraints.append(config[state] <= 1)
        return conjunction(constraints)

    def has_output(self, config: dict, output: int) -> Formula:
        """``True(c)`` / ``False(c)``: some populated state has the given output."""
        states = [state for state in self.states if self.protocol.output_map[state] == output]
        if not states:
            return FALSE
        return LinearExpr.sum_of(config[state] for state in states) >= 1

    def flow_equation(self, source: dict, target: dict, flow: dict[Transition, LinearExpr]) -> Formula:
        """``FlowEquation(c, c', x)`` for every state (monolithic form)."""
        rows = self.state_deltas
        constraints = []
        for state in self.states:
            change = LinearExpr.sum_of(delta * flow[transition] for transition, delta in rows[state])
            constraints.append(target[state].eq(source[state] + change))
        return conjunction(constraints)

    def trap_constraint(
        self,
        states: Iterable,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        target_support: Iterable | None = None,
    ) -> Formula:
        """``UTrap(R, c, c', x)``: if the flow uses •R and R is a trap of its support, R stays marked.

        ``target_support`` may restrict the states that can possibly be
        populated in the target configuration (e.g. the allowed set of a
        terminal support pattern); states outside it contribute nothing to
        the "stays marked" sum, which often turns the consequent into FALSE
        and the whole constraint into a two-literal clause.
        """
        states = set(states)
        into = [t for t in self.transitions if set(t.post.support()) & states]
        out_only = [
            t
            for t in self.transitions
            if set(t.pre.support()) & states and not (set(t.post.support()) & states)
        ]
        marked_states = states if target_support is None else states & set(target_support)
        uses_into = LinearExpr.sum_of(flow[t] for t in into) >= 1 if into else None
        no_escape = LinearExpr.sum_of(flow[t] for t in out_only) <= 0 if out_only else None
        if marked_states:
            marked: Formula = LinearExpr.sum_of(target[state] for state in marked_states) >= 1
        else:
            marked = FALSE
        if uses_into is None:
            return marked if no_escape is None else Implies(no_escape, marked)
        antecedent = uses_into if no_escape is None else conjunction([uses_into, no_escape])
        return Implies(antecedent, marked)

    def siphon_constraint(
        self,
        states: Iterable,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        source_support: Iterable | None = None,
    ) -> Formula:
        """``USiphon(S, c, c', x)``: if the flow uses S• and S is a siphon of its support, S was marked.

        ``source_support`` restricts the states that can be populated in the
        source configuration; by default it is the set of initial states
        (``Initial(c0)`` forces every other state of ``c0`` to zero).
        """
        states = set(states)
        out = [t for t in self.transitions if set(t.pre.support()) & states]
        in_only = [
            t
            for t in self.transitions
            if set(t.post.support()) & states and not (set(t.pre.support()) & states)
        ]
        if source_support is None:
            source_support = self.initial_states
        marked_states = states & set(source_support)
        uses_out = LinearExpr.sum_of(flow[t] for t in out) >= 1 if out else None
        no_refill = LinearExpr.sum_of(flow[t] for t in in_only) <= 0 if in_only else None
        if marked_states:
            marked: Formula = LinearExpr.sum_of(source[state] for state in marked_states) >= 1
        else:
            marked = FALSE
        if uses_out is None:
            return marked if no_refill is None else Implies(no_refill, marked)
        antecedent = uses_out if no_refill is None else conjunction([uses_out, no_refill])
        return Implies(antecedent, marked)

    def refinement_constraint(
        self,
        step,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        target_support: Iterable | None = None,
    ) -> Formula:
        """The constraint of a trap/siphon refinement step (duck-typed on ``kind``/``states``)."""
        if step.kind == "trap":
            return self.trap_constraint(step.states, source, target, flow, target_support=target_support)
        return self.siphon_constraint(step.states, source, target, flow)

    # -- system-level blocks ----------------------------------------------

    def consensus_variables(self) -> tuple:
        """The shared variable families ``(c0, c1, c2, x1, x2)`` of Appendix D.2."""
        c0 = self.config_vars("c0")
        x1 = self.flow_vars("x1")
        x2 = self.flow_vars("x2")
        c1 = self.derived_config(c0, x1)
        c2 = self.derived_config(c0, x2)
        return c0, c1, c2, x1, x2

    def consensus_base_system(self, variables: tuple) -> ConstraintSystem:
        """The pair-independent StrongConsensus block (initial population,
        non-negativity of both derived configurations), with named groups."""
        c0, c1, c2, x1, x2 = variables
        system = ConstraintSystem("consensus-base")
        system.declare_group("config:c0", (f"c0_{index}" for index in range(len(self.states))))
        system.declare_group("flow:x1", (f"x1_{index}" for index in range(len(self.transitions))))
        system.declare_group("flow:x2", (f"x2_{index}" for index in range(len(self.transitions))))
        system.add(self.initial(c0))
        system.add(self.non_negative(c1))
        system.add(self.non_negative(c2))
        return system

    def consensus_pair_system(
        self,
        variables: tuple,
        pattern_true: TerminalPattern,
        pattern_false: TerminalPattern,
        refinements: Iterable = (),
    ) -> ConstraintSystem:
        """The per-pattern-pair block: memberships, outputs, seeded refinements."""
        c0, c1, c2, x1, x2 = variables
        system = ConstraintSystem("consensus-pair")
        system.add(self.pattern(c1, pattern_true))
        system.add(self.pattern(c2, pattern_false))
        system.add(self.has_output(c1, 1))
        system.add(self.has_output(c2, 0))
        for step in refinements:
            system.add(self.refinement_constraint(step, c0, c1, x1, target_support=pattern_true.allowed))
            system.add(self.refinement_constraint(step, c0, c2, x2, target_support=pattern_false.allowed))
        return system

    def correctness_variables(self) -> tuple:
        """``(input_vars, c0, c1, x1)``: the correctness check's families.

        The initial configuration is the image of the input under I,
        expressed directly over the input variables; the flow equations are
        likewise substituted away (c1 is an expression over the input and
        the flow).
        """
        protocol = self.protocol
        input_vars = {
            symbol: LinearExpr.variable(f"inp_{index}")
            for index, symbol in enumerate(protocol.input_alphabet)
        }
        x1 = self.flow_vars("x1")
        c0 = {}
        for state in self.states:
            symbols = [symbol for symbol in protocol.input_alphabet if protocol.input_map[symbol] == state]
            if symbols:
                c0[state] = LinearExpr.sum_of(input_vars[symbol] for symbol in symbols)
            else:
                c0[state] = LinearExpr.constant_expr(0)
        c1 = self.derived_config(c0, x1)
        return input_vars, c0, c1, x1

    def correctness_base_system(self, variables: tuple) -> ConstraintSystem:
        """The pattern-independent correctness block (population size, non-negativity)."""
        input_vars, _c0, c1, _x1 = variables
        system = ConstraintSystem("correctness-base")
        system.declare_group("input", (f"inp_{index}" for index in range(len(input_vars))))
        system.declare_group("flow:x1", (f"x1_{index}" for index in range(len(self.transitions))))
        system.add(LinearExpr.sum_of(input_vars.values()) >= 2)
        system.add(self.non_negative(c1))
        return system

    def correctness_pattern_system(
        self,
        variables: tuple,
        expected_output: int,
        pattern: TerminalPattern,
        refinements: Iterable = (),
    ) -> ConstraintSystem:
        """The per-(direction, pattern) correctness block.

        The predicate itself is compiled separately (through
        :func:`repro.presburger.ir.predicate_system`, which declares the
        fresh existential variables) and merged by the caller.
        """
        _input_vars, c0, c1, x1 = variables
        system = ConstraintSystem("correctness-pattern")
        system.add(self.pattern(c1, pattern))
        # Wrong output: some populated state disagrees with the expected value.
        system.add(self.has_output(c1, 1 - expected_output))
        for step in refinements:
            system.add(self.refinement_constraint(step, c0, c1, x1, target_support=pattern.allowed))
        return system

    # -- model extraction ----------------------------------------------------

    def configuration_from_model(self, model, config: dict) -> Configuration:
        return Multiset(
            {state: model.value(config[state]) for state in self.states if model.value(config[state]) > 0}
        )

    def flow_from_model(self, model, flow: dict[Transition, LinearExpr]) -> dict[Transition, int]:
        return {
            transition: model.value(expression)
            for transition, expression in flow.items()
            if model.value(expression) > 0
        }
