"""Tests for the protocol library: construction sizes, semantics, WS3 membership."""

from __future__ import annotations

import pytest

from repro.protocols.library import (
    PROTOCOL_FAMILIES,
    broadcast_protocol,
    coin_flip_protocol,
    conjunction_protocol,
    disjunction_protocol,
    exclusive_majority_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    negation_protocol,
    oscillating_majority_protocol,
    remainder_protocol,
    threshold_protocol,
    threshold_table_protocol,
)
from repro.protocols.simulation import Simulator
from repro.verification.explicit import check_predicate_on_inputs, verify_single_input
from repro.verification.layered_termination import check_partition


class TestTableSizes:
    """|Q| and |T| must match Table 1 of the paper exactly."""

    def test_majority_size(self):
        protocol = majority_protocol()
        assert (protocol.num_states, protocol.num_transitions) == (4, 4)

    def test_broadcast_size(self):
        protocol = broadcast_protocol()
        assert (protocol.num_states, protocol.num_transitions) == (2, 1)

    @pytest.mark.parametrize("c,expected_transitions", [(20, 210), (25, 325), (30, 465)])
    def test_flock_of_birds_sizes(self, c, expected_transitions):
        protocol = flock_of_birds_protocol(c)
        assert protocol.num_states == c + 1
        assert protocol.num_transitions == expected_transitions

    @pytest.mark.parametrize("c,expected_transitions", [(50, 99), (100, 199)])
    def test_flock_of_birds_threshold_n_sizes(self, c, expected_transitions):
        protocol = flock_of_birds_threshold_n_protocol(c)
        assert protocol.num_states == c + 1
        assert protocol.num_transitions == expected_transitions

    @pytest.mark.parametrize("m,expected_transitions", [(10, 65), (20, 230)])
    def test_remainder_sizes(self, m, expected_transitions):
        protocol = remainder_protocol(list(range(m)), m, 1)
        assert protocol.num_states == m + 2
        assert protocol.num_transitions == expected_transitions

    @pytest.mark.parametrize("vmax,expected_states,expected_transitions", [(3, 28, 288), (4, 36, 478)])
    def test_threshold_sizes(self, vmax, expected_states, expected_transitions):
        protocol = threshold_table_protocol(vmax)
        assert protocol.num_states == expected_states
        assert protocol.num_transitions == expected_transitions

    def test_family_registry(self):
        assert set(PROTOCOL_FAMILIES) == {
            "majority",
            "broadcast",
            "threshold",
            "remainder",
            "flock-of-birds",
            "flock-of-birds-threshold-n",
        }
        assert PROTOCOL_FAMILIES["flock-of-birds"](7).num_states == 8


class TestHintsAreValidCertificates:
    def test_majority_hint(self):
        protocol = majority_protocol()
        assert check_partition(protocol, protocol.partition_hint).holds

    def test_threshold_hint(self):
        protocol = threshold_table_protocol(2)
        assert protocol.partition_hint is not None
        assert check_partition(protocol, protocol.partition_hint).holds

    def test_threshold_hint_negative_c(self):
        protocol = threshold_protocol({"x": 1, "y": -1}, -1)
        assert protocol.partition_hint is not None
        assert check_partition(protocol, protocol.partition_hint).holds

    def test_remainder_hint(self):
        protocol = remainder_protocol([0, 1, 2, 3, 4], 5, 1)
        assert protocol.partition_hint is not None
        assert check_partition(protocol, protocol.partition_hint).holds

    def test_strict_majority_hint(self):
        protocol = exclusive_majority_protocol()
        assert check_partition(protocol, protocol.partition_hint).holds


class TestSemanticsOnSmallInputs:
    """The explicit-state baseline confirms each protocol computes its predicate."""

    def test_majority_small_inputs(self):
        protocol = majority_protocol()
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=4)
        assert ok, mismatches

    def test_broadcast_small_inputs(self):
        protocol = broadcast_protocol()
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=5)
        assert ok, mismatches

    def test_flock_of_birds_small_inputs(self):
        protocol = flock_of_birds_protocol(3)
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=5)
        assert ok, mismatches

    def test_flock_of_birds_threshold_n_small_inputs(self):
        protocol = flock_of_birds_threshold_n_protocol(3)
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=5)
        assert ok, mismatches

    def test_remainder_small_inputs(self):
        protocol = remainder_protocol({"x1": 1, "x2": 2}, 3, 1)
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=4)
        assert ok, mismatches

    def test_threshold_small_inputs(self):
        protocol = threshold_protocol({"x1": 1, "x2": -1}, 1)
        ok, mismatches = check_predicate_on_inputs(protocol, protocol.metadata["predicate"], max_size=4)
        assert ok, mismatches

    def test_strict_majority_differs_on_ties(self):
        protocol = exclusive_majority_protocol()
        result = verify_single_input(protocol, {"A": 2, "B": 2})
        assert result.well_specified
        assert result.output == 0  # ties go to A, unlike the standard majority

    def test_coin_flip_is_not_well_specified(self):
        result = verify_single_input(coin_flip_protocol(), {"x": 3})
        assert not result.well_specified

    def test_oscillating_majority_still_stabilises(self):
        # Not silent, but still well-specified for each fixed input.
        result = verify_single_input(oscillating_majority_protocol(), {"A": 1, "B": 2})
        assert result.well_specified
        assert result.output == 1


class TestSimulationAgreement:
    @pytest.mark.parametrize(
        "factory,population,expected",
        [
            (majority_protocol, {"A": 3, "B": 5}, 1),
            (majority_protocol, {"A": 5, "B": 3}, 0),
            (broadcast_protocol, {"one": 1, "zero": 6}, 1),
            (broadcast_protocol, {"zero": 5}, 0),
            (lambda: flock_of_birds_protocol(4), {"sick": 5, "healthy": 2}, 1),
            (lambda: flock_of_birds_protocol(4), {"sick": 3, "healthy": 2}, 0),
            (lambda: flock_of_birds_threshold_n_protocol(3), {"sick": 4}, 1),
            (lambda: flock_of_birds_threshold_n_protocol(3), {"sick": 2, "healthy": 1}, 0),
            (lambda: remainder_protocol({"x": 1}, 3, 0), {"x": 6}, 1),
            (lambda: remainder_protocol({"x": 1}, 3, 0), {"x": 7}, 0),
        ],
    )
    def test_simulation_matches_expected_output(self, factory, population, expected):
        protocol = factory()
        result = Simulator(protocol, seed=7).run(input_population=population)
        assert result.converged
        assert result.output == expected

    def test_threshold_simulation(self):
        protocol = threshold_protocol({"x": 1, "y": -1}, 0)  # computes #x - #y < 0
        result = Simulator(protocol, seed=11).run(input_population={"x": 2, "y": 5})
        assert result.converged
        assert result.output == 1
        result = Simulator(protocol, seed=11).run(input_population={"x": 5, "y": 2})
        assert result.converged
        assert result.output == 0


class TestCombinators:
    def test_negation_flips_outputs(self):
        protocol = majority_protocol()
        negated = negation_protocol(protocol)
        assert negated.true_states() == protocol.false_states()
        predicate = negated.metadata["predicate"]
        assert predicate.evaluate({"A": 3, "B": 1})
        assert not predicate.evaluate({"A": 1, "B": 3})

    def test_conjunction_requires_same_alphabet(self):
        with pytest.raises(Exception):
            conjunction_protocol(majority_protocol(), broadcast_protocol())

    def test_conjunction_of_majority_and_strict_majority(self):
        both = conjunction_protocol(majority_protocol(), exclusive_majority_protocol())
        assert both.num_states == 16
        # The product computes #B >= #A and #B > #A, i.e. #B > #A.
        ok, mismatches = check_predicate_on_inputs(
            both, exclusive_majority_protocol().metadata["predicate"], max_size=3
        )
        assert ok, mismatches

    def test_conjunction_lifts_partition_hint(self):
        both = conjunction_protocol(majority_protocol(), exclusive_majority_protocol())
        assert both.partition_hint is not None
        assert check_partition(both, both.partition_hint).holds

    def test_disjunction_outputs(self):
        either = disjunction_protocol(majority_protocol(), exclusive_majority_protocol())
        # #B >= #A or #B > #A is just #B >= #A.
        ok, mismatches = check_predicate_on_inputs(
            either, majority_protocol().metadata["predicate"], max_size=3
        )
        assert ok, mismatches

    def test_product_preserves_agent_count(self):
        both = conjunction_protocol(majority_protocol(), exclusive_majority_protocol())
        config = both.initial_configuration({"A": 2, "B": 2})
        simulator = Simulator(both, seed=3)
        result = simulator.run(configuration=config)
        assert result.final.size() == 4


class TestConstructionValidation:
    def test_flock_of_birds_requires_c_at_least_2(self):
        with pytest.raises(ValueError):
            flock_of_birds_protocol(1)
        with pytest.raises(ValueError):
            flock_of_birds_threshold_n_protocol(0)

    def test_remainder_requires_modulus(self):
        with pytest.raises(ValueError):
            remainder_protocol([1], 1, 0)
        with pytest.raises(ValueError):
            remainder_protocol([], 3, 0)

    def test_threshold_requires_coefficients(self):
        with pytest.raises(ValueError):
            threshold_protocol([], 1)

    def test_threshold_vmax_validation(self):
        with pytest.raises(ValueError):
            threshold_protocol({"x": 5}, 1, vmax=2)

    def test_threshold_input_map_targets_leaders(self):
        protocol = threshold_protocol({"x": 2, "y": -1}, 1)
        for symbol in protocol.input_alphabet:
            leader, value, opinion = protocol.input_map[symbol]
            assert leader == 1
            assert opinion == (1 if value < 1 else 0)

    def test_remainder_output_map(self):
        protocol = remainder_protocol({"x": 1}, 4, 2)
        assert protocol.output_map[2] == 1
        assert protocol.output_map["true"] == 1
        assert protocol.output_map["false"] == 0
        assert protocol.output_map[1] == 0
