"""Traps and siphons — the one module for nets *and* population protocols.

The population-protocol notions of Definition 10 are the classical
Petri-net ones specialised to a subset ``U`` of transitions:

* a set of places/states ``P`` is a *(U-)trap* if every transition (of
  ``U``) that takes a token out of ``P`` also puts one into ``P``
  (``P• ∩ U ⊆ •P``);
* a set ``P`` is a *(U-)siphon* if every transition (of ``U``) that puts a
  token into ``P`` also takes one out of ``P`` (``•P ∩ U ⊆ P•``).

Traps, once marked, stay marked; siphons, once empty, stay empty
(Observation 11).  Both families are closed under union, so the *maximal*
trap (siphon) inside a candidate set is unique and computable by a greedy
fixed point — which is what the CEGAR refinement loop of Section 6 uses.

Nets and protocols share one implementation here: every function operates
on "transition-like" objects (anything with ``pre``/``post`` multisets),
which both :class:`repro.petri.net.PetriTransition` and
:class:`repro.protocols.protocol.Transition` are.  The historical
protocol-specific copies under ``repro.verification.traps_siphons`` are a
deprecated re-export shim over this module.

The fixed points accept an optional precomputed ``supports`` mapping
(transition -> ``(pre-support, post-support)`` frozensets) — the
*trap/siphon basis* memoized once per protocol by
:class:`repro.constraints.context.AnalysisContext` — so the per-iteration
support recomputation disappears from the refinement hot loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.petri.net import PetriNet

Supports = Mapping[object, tuple[frozenset, frozenset]]


def transition_supports(transitions: Iterable) -> dict:
    """The (pre-support, post-support) pair of every transition-like object."""
    return {t: (frozenset(t.pre.support()), frozenset(t.post.support())) for t in transitions}


def _support_pair(transition, supports: Supports | None) -> tuple[frozenset, frozenset]:
    if supports is not None:
        pair = supports.get(transition)
        if pair is not None:
            return pair
    return frozenset(transition.pre.support()), frozenset(transition.post.support())


# ----------------------------------------------------------------------
# The generic core (shared by the net-level and protocol-level surfaces)
# ----------------------------------------------------------------------


def is_trap(system, places: Iterable, transitions: Iterable | None = None) -> bool:
    """Is ``places`` a (U-)trap?  ``system`` supplies the default transitions.

    Called as ``is_trap(net, places)`` this is the classical net notion
    (``P• ⊆ •P``); called as ``is_trap(protocol, states, transitions)`` it
    is the U-trap of Definition 10 for ``U = transitions``.
    """
    place_set = set(places)
    pool = system.transitions if transitions is None else transitions
    for transition in pool:
        takes_out = bool(set(transition.pre.support()) & place_set)
        puts_in = bool(set(transition.post.support()) & place_set)
        if takes_out and not puts_in:
            return False
    return True


def is_siphon(system, places: Iterable, transitions: Iterable | None = None) -> bool:
    """Is ``places`` a (U-)siphon?  (``•P ⊆ P•``, dually to :func:`is_trap`.)"""
    place_set = set(places)
    pool = system.transitions if transitions is None else transitions
    for transition in pool:
        puts_in = bool(set(transition.post.support()) & place_set)
        takes_out = bool(set(transition.pre.support()) & place_set)
        if puts_in and not takes_out:
            return False
    return True


def maximal_trap_inside(
    system, candidate_places: Iterable, transitions: Iterable | None = None, supports: Supports | None = None
) -> frozenset:
    """The unique maximal (U-)trap contained in ``candidate_places``.

    Greedy fixed point: repeatedly remove a place if some transition takes
    a token from it but puts none into the current set.  Runs in time
    polynomial in ``|U| * |P|``.
    """
    pool = list(system.transitions if transitions is None else transitions)
    current: set = set(candidate_places)
    changed = True
    while changed and current:
        changed = False
        for transition in pool:
            pre_support, post_support = _support_pair(transition, supports)
            if not post_support & current:
                offending = pre_support & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


def maximal_siphon_inside(
    system, candidate_places: Iterable, transitions: Iterable | None = None, supports: Supports | None = None
) -> frozenset:
    """The unique maximal (U-)siphon contained in ``candidate_places``."""
    pool = list(system.transitions if transitions is None else transitions)
    current: set = set(candidate_places)
    changed = True
    while changed and current:
        changed = False
        for transition in pool:
            pre_support, post_support = _support_pair(transition, supports)
            if not pre_support & current:
                offending = post_support & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


# ----------------------------------------------------------------------
# Net-level surface (names kept from the original Petri module)
# ----------------------------------------------------------------------


def preset(net: PetriNet, places: Iterable) -> frozenset[str]:
    """``•P``: names of transitions producing into some place of ``P``."""
    place_set = set(places)
    return frozenset(t.name for t in net.transitions if set(t.post.support()) & place_set)


def postset(net: PetriNet, places: Iterable) -> frozenset[str]:
    """``P•``: names of transitions consuming from some place of ``P``."""
    place_set = set(places)
    return frozenset(t.name for t in net.transitions if set(t.pre.support()) & place_set)


def siphon_trap_property_violations(net: PetriNet, initial_marking) -> list[frozenset]:
    """Siphons that are unmarked initially (candidates for permanent starvation).

    Classical deadlock analysis: a siphon that is (or becomes) empty stays
    empty, so an initially unmarked siphon pinpoints places that can never be
    marked.  Returns the maximal initially-unmarked siphon (as a singleton
    list, or an empty list if there is none).
    """
    unmarked = {place for place in net.places if initial_marking[place] == 0}
    siphon = maximal_siphon_inside(net, unmarked)
    return [siphon] if siphon else []


# ----------------------------------------------------------------------
# Protocol-level surface (names kept from the verification module)
# ----------------------------------------------------------------------


def pre_transitions(protocol, states: Iterable, transitions: Iterable | None = None) -> frozenset:
    """``•P``: transitions whose *post* multiset intersects ``states``."""
    state_set = set(states)
    pool = protocol.transitions if transitions is None else transitions
    return frozenset(t for t in pool if set(t.post.support()) & state_set)


def post_transitions(protocol, states: Iterable, transitions: Iterable | None = None) -> frozenset:
    """``P•``: transitions whose *pre* multiset intersects ``states``."""
    state_set = set(states)
    pool = protocol.transitions if transitions is None else transitions
    return frozenset(t for t in pool if set(t.pre.support()) & state_set)


def maximal_trap_with_support_outside(
    protocol,
    transitions: Iterable,
    candidate_states: Iterable,
    supports: Supports | None = None,
) -> frozenset:
    """The unique maximal U-trap contained in ``candidate_states`` (Definition 10)."""
    return maximal_trap_inside(protocol, candidate_states, transitions=transitions, supports=supports)


def maximal_siphon_with_support_outside(
    protocol,
    transitions: Iterable,
    candidate_states: Iterable,
    supports: Supports | None = None,
) -> frozenset:
    """The unique maximal U-siphon contained in ``candidate_states``."""
    return maximal_siphon_inside(protocol, candidate_states, transitions=transitions, supports=supports)


def all_minimal_siphons(
    protocol, transitions: Iterable | None = None, limit: int = 1000
) -> list[frozenset]:
    """Enumerate minimal non-empty siphons (small protocols only).

    This is exponential in the worst case and intended for tests, examples
    and diagnostics; the verification engine itself only ever needs maximal
    traps/siphons inside a candidate set.
    """
    pool = list(protocol.transitions if transitions is None else transitions)
    states = sorted(protocol.states, key=repr)
    siphons: list[frozenset] = []

    def is_minimal(candidate: frozenset) -> bool:
        return not any(existing < candidate for existing in siphons)

    from itertools import combinations

    for size in range(1, len(states) + 1):
        if len(siphons) >= limit:
            break
        for subset in combinations(states, size):
            candidate = frozenset(subset)
            if not is_minimal(candidate):
                continue
            if is_siphon(protocol, candidate, pool):
                siphons.append(candidate)
                if len(siphons) >= limit:
                    break
    return [s for s in siphons if not any(other < s for other in siphons)]
