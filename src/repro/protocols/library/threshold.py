"""The threshold protocol of Angluin et al. [1] (Section 5 of the paper).

The protocol computes the predicate ``sum_i a_i * x_i < c``.  Every agent
carries a triple ``(leader?, value, opinion)``; when a leader meets another
agent it absorbs as much of the other agent's value as fits into
``[-vmax, vmax]``, demotes it to a non-leader, and overwrites its opinion.
The paper proves the protocol belongs to WS³ (Propositions 17 and 18); the
ordered partition from the proof of Proposition 18 is attached as the
partition hint.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.presburger.predicates import ThresholdPredicate
from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition

State = tuple[int, int, int]  # (leader flag, value, opinion)


def _clamp(value: int, vmax: int) -> int:
    return max(-vmax, min(vmax, value))


def threshold_protocol(
    coefficients: Sequence[int] | Mapping[str, int],
    c: int,
    vmax: int | None = None,
) -> PopulationProtocol:
    """Build the threshold protocol for ``sum_i a_i * x_i < c``.

    Parameters
    ----------
    coefficients:
        Either a sequence of integers (input symbols are then named
        ``x1, x2, ...``) or a mapping from symbol names to coefficients.
    c:
        The threshold constant.
    vmax:
        The value cap.  Defaults to ``max(|a_1|, ..., |a_k|, |c| + 1)`` as in
        the paper; a larger value may be supplied (this only grows the state
        space and is used by the Table 1 benchmarks, which fix the set of
        coefficients to all values of ``[-vmax, vmax]``).
    """
    if isinstance(coefficients, Mapping):
        symbol_coefficients = dict(coefficients)
    else:
        symbol_coefficients = {f"x{i + 1}": value for i, value in enumerate(coefficients)}
    if not symbol_coefficients:
        raise ValueError("the threshold predicate needs at least one variable")
    minimum_vmax = max([abs(value) for value in symbol_coefficients.values()] + [abs(c) + 1])
    if vmax is None:
        vmax = minimum_vmax
    if vmax < minimum_vmax:
        raise ValueError(f"vmax must be at least {minimum_vmax}")

    values = range(-vmax, vmax + 1)
    states: list[State] = [
        (leader, value, opinion) for leader in (0, 1) for value in values for opinion in (0, 1)
    ]

    def output_bit(value: int) -> int:
        return 1 if value < c else 0

    transitions: list[Transition] = []
    for n in values:
        for n_prime in values:
            merged = _clamp(n + n_prime, vmax)
            remainder = (n + n_prime) - merged
            opinion = output_bit(merged)
            for other_leader in (0, 1):
                for o in (0, 1):
                    for o_prime in (0, 1):
                        pre = ((1, n, o), (other_leader, n_prime, o_prime))
                        post = ((1, merged, opinion), (0, remainder, opinion))
                        transitions.append(Transition.make(pre, post))

    protocol = PopulationProtocol(
        states=states,
        transitions=transitions,
        input_alphabet=list(symbol_coefficients),
        input_map={
            symbol: (1, value, output_bit(value)) for symbol, value in symbol_coefficients.items()
        },
        output_map={state: state[2] for state in states},
        name=f"threshold[c={c}, vmax={vmax}]",
        metadata={
            "predicate": ThresholdPredicate(symbol_coefficients, c),
            "source": "Angluin et al. [1]; Section 5",
            "vmax": vmax,
            "c": c,
        },
    )
    hint = _proposition_18_partition(protocol, c, vmax)
    if hint is not None and hint.covers(protocol.transitions):
        protocol.partition_hint = hint
    return protocol


def _proposition_18_partition(
    protocol: PopulationProtocol, c: int, vmax: int
) -> OrderedPartition | None:
    """The two-layer ordered partition from the proof of Proposition 18.

    For ``c > 0`` the second layer contains the interactions between a leader
    with opinion 0 and value ``>= c`` and the passive state ``(0, 0, 1)``;
    for ``c <= 0`` the roles of the opinions are swapped.
    """
    if c > 0:
        late_leaders = {(1, value, 0) for value in range(c, vmax + 1)}
        late_passive = (0, 0, 1)
    else:
        late_leaders = {(1, value, 1) for value in range(-vmax, c)}
        late_passive = (0, 0, 0)

    second_layer = []
    first_layer = []
    for transition in protocol.transitions:
        support = transition.pre.support()
        is_late = any(q in late_leaders for q in support) and late_passive in support
        # The pre must consist of exactly one late leader and the passive state.
        if is_late and transition.pre[late_passive] >= 1:
            leaders_in_pre = [q for q in support if q in late_leaders]
            if leaders_in_pre and transition.pre.size() == 2:
                second_layer.append(transition)
                continue
        first_layer.append(transition)
    if not second_layer:
        return OrderedPartition.of(first_layer) if first_layer else OrderedPartition(())
    if not first_layer:
        return OrderedPartition.of(second_layer)
    return OrderedPartition.of(first_layer, second_layer)


def threshold_table_protocol(vmax: int, c: int = 1) -> PopulationProtocol:
    """The Table 1 variant: all coefficient values of ``[-vmax, vmax]`` are present.

    Following Section 6 of the paper, the secondary parameter ``c`` is fixed
    to 1 and one input variable per possible coefficient value is assumed, so
    that every state of the protocol can be initial (the worst case for the
    verifier).
    """
    coefficients = {f"a{value}": value for value in range(-vmax, vmax + 1)}
    return threshold_protocol(coefficients, c, vmax=vmax)
