"""Picklable subproblem envelopes exchanged between coordinator and workers.

A :class:`Subproblem` is a self-contained description of one independent
piece of a verification run: which check to perform (``kind``), the protocol
it concerns, and the kind-specific parameters (a terminal-pattern pair and
the trap/siphon refinements to seed the CEGAR loop with, a partition-search
strategy, ...).  Everything in the envelope is picklable, so a subproblem
can cross a process boundary; the protocol travels as the serialisation
dictionary of :mod:`repro.io.serialization` together with its content hash,
which lets worker processes cache the decoded protocol across subproblems.

Small objects with stable equality semantics (patterns, refinement steps)
travel as plain pickled values; payloads that also land on disk — the
result cache stores whole verification reports — go through the shared
artifact codecs of :mod:`repro.io.serialization`, re-exported here for the
engine's convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.serialization import (  # noqa: F401  (re-exported codec surface)
    counterexample_from_dict,
    counterexample_to_dict,
    decode_flow,
    decode_multiset,
    decode_partition,
    encode_flow,
    encode_multiset,
    encode_partition,
)

#: Subproblem kinds understood by :func:`repro.engine.worker.solve_subproblem`.
KINDS = (
    "consensus-pair",
    "correctness-pattern",
    "termination-strategy",
    "check-protocol",
    "poison",
)


@dataclass(frozen=True)
class Subproblem:
    """One independent unit of verification work.

    ``index`` is the subproblem's position in the deterministic enumeration
    order of its producer; the coordinator uses it to merge results (and
    pick winners) independently of completion timing.

    ``job_id`` names the verification-service job the envelope belongs to.
    It is stamped automatically from the thread's job binding when the
    envelope is built by a bound coordinator (and stays ``None`` for plain
    library use), so engine traffic — and the progress events derived from
    it — can always be attributed to a job.
    """

    kind: str
    index: int
    protocol_key: str
    protocol_data: dict
    params: dict = field(default_factory=dict)
    job_id: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown subproblem kind {self.kind!r}")
        if self.job_id is None:
            from repro.engine.monitor import current_job_id

            object.__setattr__(self, "job_id", current_job_id())

    @property
    def label(self) -> str:
        return f"{self.kind}[{self.index}]"


@dataclass
class SubproblemResult:
    """What a worker sends back: a verdict plus kind-specific payload.

    ``verdict`` is kind-dependent ("unsat"/"sat" for CEGAR subproblems,
    "holds"/"fails" for strategy and whole-protocol subproblems); ``data``
    carries portable payloads (new refinements, encoded partitions, result
    summaries) and ``statistics`` the worker-side counters.

    ``spans`` carries the worker-side trace spans of a traced run (the
    envelope's ``params["trace"]`` flag asks the worker to collect them);
    the coordinator re-parents them under its own span tree at harvest.
    ``None`` — not an empty list — when the run was untraced, so untraced
    pickles stay byte-for-byte what they were.
    """

    kind: str
    index: int
    verdict: str
    data: dict = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)
    spans: list | None = None


# ----------------------------------------------------------------------
# Portable encodings (shared codecs from repro.io.serialization)
# ----------------------------------------------------------------------

#: Backwards-compatible aliases for the pre-codec names.
encode_consensus_counterexample = counterexample_to_dict
decode_consensus_counterexample = counterexample_from_dict

