"""Batch verification: fan a set of protocols over the engine, with caching.

:func:`run_batch` is the multi-protocol back end of
:meth:`repro.api.verifier.Verifier.check_many`: each protocol becomes one
``check-protocol`` subproblem, the pool verifies ``jobs`` of them
concurrently, and a content-addressed
:class:`~repro.engine.cache.ResultCache` short-circuits protocols whose
verdict is already known (identical protocol + engine version + property
set + options), so repeated sweeps — benchmark reruns, parameter scans that
revisit instances — are served from disk in milliseconds.

Every item carries a full, lossless
:class:`~repro.api.report.VerificationReport` — certificates,
counterexamples and refinement trails included — whether it comes from a
worker, from the in-process serial path, or from the cache (which stores
exactly ``report.to_dict()``).

The legacy :func:`verify_many` entry point remains as a deprecated shim.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.api.options import VerificationOptions
from repro.api.report import VerificationReport
from repro.engine import monitor
from repro.engine.cache import ResultCache, protocol_content_hash
from repro.service.events import CacheHit
from repro.engine.scheduler import ENGINE_VERSION, VerificationEngine
from repro.engine.subproblem import Subproblem
from repro.io.serialization import protocol_to_dict
from repro.protocols.protocol import PopulationProtocol


def batch_cache_options(
    properties: Sequence[str],
    options: VerificationOptions,
    predicate=None,
) -> dict:
    """The options dictionary that keys cached verdicts.

    The single source of truth for cache keying: every caller that reads or
    writes the result cache (``run_batch``, ``scripts/bench.py``) must build
    its options through here, or identical runs would stop sharing entries.
    Only verdict-affecting fields participate (``options.cache_snapshot()``);
    the documented predicate joins the key when correctness is requested,
    since the verdict depends on it.
    """
    payload = {"properties": list(properties), "options": options.cache_snapshot()}
    if predicate is not None:
        payload["predicate"] = predicate.describe()
    return payload


@dataclass
class BatchItem:
    """Verdict for one protocol of a batch."""

    index: int
    protocol_name: str
    protocol_hash: str
    report: VerificationReport
    from_cache: bool = False
    time_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff no requested property failed."""
        return self.report.ok

    @property
    def is_ws3(self) -> bool:
        """True iff WS³ membership was checked and holds.

        Never fabricated: when ``"ws3"`` was not among the requested
        properties this is ``False``, not a guess from the other verdicts.
        """
        result = self.report.result_for("ws3")
        return result is not None and result.holds


@dataclass
class BatchResult:
    """Outcome of a batch run."""

    items: list[BatchItem]
    statistics: dict = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def all_ws3(self) -> bool:
        return all(item.is_ws3 for item in self.items)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


def batch_result_to_dict(batch: BatchResult) -> dict:
    """Lossless plain-dictionary form of a batch outcome (JSON-clean).

    The serve daemon's batch payloads and the journal's finished records
    both ship this shape; :func:`batch_result_from_dict` reverses it, which
    is what lets a restarted service hand out finished batch results it
    never computed itself.
    """
    return {
        "items": [
            {
                "index": item.index,
                "protocol": item.protocol_name,
                "protocol_hash": item.protocol_hash,
                "ok": item.ok,
                "from_cache": item.from_cache,
                "time_seconds": item.time_seconds,
                "report": item.report.to_dict(),
            }
            for item in batch.items
        ],
        "statistics": batch.statistics,
    }


def batch_result_from_dict(data: dict) -> BatchResult:
    """Inverse of :func:`batch_result_to_dict`."""
    return BatchResult(
        items=[
            BatchItem(
                index=entry["index"],
                protocol_name=entry["protocol"],
                protocol_hash=entry["protocol_hash"],
                report=VerificationReport.from_dict(entry["report"]),
                from_cache=entry.get("from_cache", False),
                time_seconds=entry.get("time_seconds", 0.0),
            )
            for entry in data.get("items", [])
        ],
        statistics=data.get("statistics", {}),
    )


def run_batch(
    protocols: Sequence[PopulationProtocol],
    properties: Sequence[str],
    options: VerificationOptions,
    engine: VerificationEngine | None = None,
    cache: ResultCache | None = None,
    check_one=None,
) -> BatchResult:
    """Verify many protocols, fanning out over worker processes.

    ``check_one(protocol, engine) -> VerificationReport`` is the serial
    fallback used when the batch cannot fan out across protocols (no
    parallel engine, or a single pending protocol that gets the
    *within*-protocol parallelism instead); ``Verifier.check_many`` wires it
    to its own ``check``.  Protocols appearing more than once (by content
    hash) are verified once; later occurrences reuse the verdict.
    """
    if check_one is None:
        raise ValueError("run_batch requires a check_one callback (see Verifier.check_many)")
    start = time.perf_counter()
    protocols = list(protocols)
    properties = tuple(properties)

    items: list[BatchItem | None] = [None] * len(protocols)
    pending: list[tuple[int, PopulationProtocol, str, str, object]] = []
    first_occurrence: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []

    for index, protocol in enumerate(protocols):
        content_hash = protocol_content_hash(protocol)
        predicate = protocol.metadata.get("predicate") if "correctness" in properties else None
        key = ResultCache.entry_key(
            content_hash, ENGINE_VERSION, batch_cache_options(properties, options, predicate)
        )
        # Dedup on the full entry key, not the content hash alone: two
        # structurally identical protocols can still differ in their
        # documented predicate (metadata is excluded from the hash), and a
        # correctness verdict must not leak between them.
        if key in first_occurrence:
            duplicates.append((index, first_occurrence[key]))
            continue
        first_occurrence[key] = index
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            monitor.emit(
                lambda job_id, protocol=protocol, content_hash=content_hash: CacheHit(
                    job_id=job_id,
                    protocol_name=protocol.name,
                    protocol_hash=content_hash,
                )
            )
            items[index] = BatchItem(
                index=index,
                protocol_name=protocol.name,
                protocol_hash=content_hash,
                report=VerificationReport.from_dict(cached),
                from_cache=True,
            )
        else:
            pending.append((index, protocol, content_hash, key, predicate))

    verified = 0
    # Across-protocol fan-out requires every property to be resolvable in a
    # fresh worker process; plugin properties registered only in this
    # process stay on the coordinator's serial path.
    from repro.api.properties import BUILTIN_PROPERTIES

    parallel = (
        engine is not None and engine.parallel and set(properties) <= BUILTIN_PROPERTIES
    )
    if pending:
        verified = len(pending)
        if parallel and len(pending) > 1:
            # Across-protocol fan-out: one check-protocol subproblem each.
            _run_parallel(pending, items, properties, options, engine)
        else:
            # A single pending protocol gets the within-protocol parallelism
            # (pattern pairs, strategy portfolio) instead of one lonely
            # worker; with no engine this is the plain serial loop.
            for index, protocol, content_hash, _key, _predicate in pending:
                instance_start = time.perf_counter()
                report = check_one(protocol, engine)
                items[index] = BatchItem(
                    index=index,
                    protocol_name=protocol.name,
                    protocol_hash=content_hash,
                    report=report,
                    time_seconds=time.perf_counter() - instance_start,
                )
        if cache is not None:
            for index, _protocol, _content_hash, key, _predicate in pending:
                # A partial report (job budget ran out mid-batch) decided
                # nothing for its unfinished properties; caching it would
                # serve the indecision forever.
                if not items[index].report.partial:
                    cache.put(key, items[index].report.to_dict())

    for index, original in duplicates:
        source = items[original]
        items[index] = BatchItem(
            index=index,
            protocol_name=protocols[index].name,
            protocol_hash=source.protocol_hash,
            report=source.report,
            from_cache=source.from_cache,
        )

    statistics = {
        "protocols": len(protocols),
        "verified": verified,
        "duplicates": len(duplicates),
        "properties": list(properties),
        "jobs": engine.jobs if engine is not None else 1,
        "time": time.perf_counter() - start,
        "cache": dict(cache.statistics) if cache is not None else None,
    }
    return BatchResult(items=[item for item in items], statistics=statistics)


def _run_parallel(
    pending: Sequence[tuple[int, PopulationProtocol, str, str, object]],
    items: list,
    properties: tuple[str, ...],
    options: VerificationOptions,
    engine: VerificationEngine,
) -> None:
    """Fan the pending protocols over the pool, one subproblem each.

    Workers run the full property pipeline serially (their ``options`` are
    forced to ``jobs=1``); the documented predicate travels in the params
    because protocol metadata does not survive the wire format.
    """
    worker_options = options.replace(jobs=1, cache_dir=None).to_dict()
    subproblems = []
    for position, (_index, protocol, content_hash, _key, predicate) in enumerate(pending):
        params = {
            "properties": list(properties),
            "options": worker_options,
        }
        if predicate is not None:
            params["predicate"] = predicate
        subproblems.append(
            Subproblem(
                kind="check-protocol",
                index=position,
                protocol_key=content_hash,
                protocol_data=protocol_to_dict(protocol),
                params=params,
            )
        )
    results = engine.run_wave(subproblems)
    for position, result in enumerate(results):
        index, protocol, content_hash, _key, _predicate = pending[position]
        items[index] = BatchItem(
            index=index,
            protocol_name=protocol.name,
            protocol_hash=content_hash,
            report=VerificationReport.from_dict(result.data["report"]),
            time_seconds=result.statistics.get("time", 0.0),
        )


def verify_many(
    protocols: Iterable[PopulationProtocol],
    jobs: int = 1,
    cache: ResultCache | None = None,
    cache_dir=None,
    strategy: str = "auto",
    theory: str = "auto",
    max_layers: int | None = None,
    engine: VerificationEngine | None = None,
) -> BatchResult:
    """Deprecated: use :meth:`repro.api.Verifier.check_many` instead.

    ``Verifier(jobs=..., cache_dir=...).check_many(protocols)`` returns the
    same :class:`BatchResult`; this shim delegates to the same machinery, so
    verdicts are identical.  Note that items now carry full
    :class:`~repro.api.report.VerificationReport` objects (``item.report``)
    instead of the old lossy summary dictionaries.
    """
    import warnings

    warnings.warn(
        "verify_many() is deprecated; use repro.api.Verifier"
        " (Verifier(jobs=..., cache_dir=...).check_many(protocols))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.verifier import Verifier

    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    options = VerificationOptions(
        strategy=strategy,
        theory=theory,
        max_layers=max_layers,
        jobs=jobs if engine is None else 1,
    )
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    with Verifier(options, engine=engine, cache=cache) as verifier:
        return verifier.check_many(protocols)
