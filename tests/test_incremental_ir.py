"""The incremental constraint IR (PR 9): scoped deltas, the online
dedup/subsumption index, and the scoped simplifier.

The load-bearing invariants:

* **pop never leaks** — after ``pop_scope`` the system (constraints, bounds,
  groups) is identical to its state at the matching push, and the
  :class:`SimplifyIndex` forgets the popped scope's admissions exactly;
* **delta == from-scratch** — at every point of a random
  push/add/tighten/pop trace, the scoped system is equivalent to
  from-scratch simplification of the flattened system: same ``evaluate``
  on random assignments, same solver verdict;
* **cores survive pops** — the direct-ILP backend's learned infeasibility
  cores are content+bounds-keyed and deliberately not cleared on pop, and
  the statistics prove it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.backends import create_solver
from repro.constraints.direct import DirectILPSolver
from repro.constraints.incremental import (
    ScopedSimplifier,
    SimplifyIndex,
    incremental_statistics,
    resolve_incremental,
)
from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import simplify_system
from repro.constraints.simplify_cache import system_content_key
from repro.smtlite.formula import And, BoolConst, Or
from repro.smtlite.solver import SolverStatus
from repro.smtlite.terms import LinearExpr


VARIABLES = ("u", "v", "w")


def _expr(names):
    return LinearExpr.sum_of(LinearExpr.variable(name) for name in names)


# ----------------------------------------------------------------------
# ConstraintSystem scopes
# ----------------------------------------------------------------------


def test_pop_scope_restores_exactly():
    system = ConstraintSystem("scoped")
    u = system.declare("u", 0, 10, group="g")
    system.add(u <= 7)
    snapshot = (tuple(system.constraints), dict(system.bounds), dict(system.groups))

    system.push_scope()
    v = system.declare("v", 1, 5, group="g")
    system.declare("u", 0, 3)  # re-declare inside the scope
    system.tighten("u", upper=2)
    system.add(v <= 4, u + v <= 6)
    assert system.scope_depth == 1
    assert system.bounds["u"] == (0, 2)
    system.pop_scope()

    assert system.scope_depth == 0
    assert (tuple(system.constraints), dict(system.bounds), dict(system.groups)) == snapshot


def test_pop_without_push_raises():
    system = ConstraintSystem("bare")
    with pytest.raises(RuntimeError):
        system.pop_scope()


def test_nested_scopes_restore_in_order():
    system = ConstraintSystem("nested")
    u = system.declare("u", 0, None)
    system.push_scope()
    system.add(u <= 5)
    inner_snapshot = (tuple(system.constraints), dict(system.bounds))
    system.push_scope()
    system.tighten("u", upper=3)
    system.add(u <= 1)
    system.pop_scope()
    assert (tuple(system.constraints), dict(system.bounds)) == inner_snapshot
    system.pop_scope()
    assert system.constraints == []
    assert system.scope_marks() == ()


def test_tighten_intersects_bounds():
    system = ConstraintSystem("tighten")
    system.declare("u", 0, 10)
    assert system.tighten("u", lower=2) == (2, 10)
    assert system.tighten("u", upper=12) == (2, 10)  # looser upper is ignored
    assert system.tighten("u", lower=1, upper=5) == (2, 5)


def test_scope_marks_feed_the_cache_key():
    """A scoped system must never collide with its flattened twin."""
    flat = ConstraintSystem("s")
    u = flat.declare("u", 0, 5)
    flat.add(u <= 3)

    scoped = ConstraintSystem("s")
    u2 = scoped.declare("u", 0, 5)
    scoped.push_scope()
    scoped.add(u2 <= 3)

    assert scoped.constraints == flat.constraints
    assert system_content_key(flat, False) != system_content_key(scoped, False)


# ----------------------------------------------------------------------
# SimplifyIndex
# ----------------------------------------------------------------------


def test_index_duplicate_and_subsumption():
    index = SimplifyIndex()
    weak = _expr(["u", "v"]) <= 10
    strong = _expr(["u", "v"]) <= 3
    assert index.admit(weak) == "fresh"
    assert index.admit(weak) == "duplicate"
    # A strictly stronger atom with the same coefficient vector is fresh...
    assert index.admit(strong) == "fresh"
    # ...and now subsumes re-arrivals of the weaker one.
    weak_again = _expr(["u", "v"]) <= 7
    assert index.admit(weak_again) == "subsumed"


def test_index_pop_restores_admissions():
    index = SimplifyIndex()
    base = _expr(["u"]) <= 5
    index.admit(base)
    index.push()
    scoped_formula = _expr(["v"]) <= 2
    stronger = _expr(["u"]) <= 1
    assert index.admit(scoped_formula) == "fresh"
    assert index.admit(stronger) == "fresh"
    index.pop()
    # The popped scope's admissions are forgotten exactly: the identical
    # formula is NOT a duplicate of its popped twin, and the strongest
    # constant for u's vector reverts from the scoped `u <= 1` to the
    # base `u <= 5` — so `u <= 6` is subsumed but `u <= 4` is fresh again.
    assert index.admit(scoped_formula) == "fresh"
    assert index.admit(_expr(["u"]) <= 6) == "subsumed"
    assert index.admit(_expr(["u"]) <= 4) == "fresh"


def test_index_subsumption_direction():
    """Stored strongest constant wins: c' <= c means subsumed."""
    index = SimplifyIndex()
    index.admit(_expr(["u"]) <= 3)
    assert index.admit(_expr(["u"]) <= 5) == "subsumed"  # weaker: implied
    assert index.admit(_expr(["u"]) <= 2) == "fresh"  # stronger: must assert


# ----------------------------------------------------------------------
# ScopedSimplifier: random traces vs from-scratch flattening
# ----------------------------------------------------------------------


def _random_atom(rng: random.Random):
    names = rng.sample(VARIABLES, rng.randint(1, len(VARIABLES)))
    coefficients = {name: rng.randint(-2, 3) for name in names}
    expr = LinearExpr.sum_of(
        coefficient * LinearExpr.variable(name)
        for name, coefficient in coefficients.items()
    )
    return expr <= rng.randint(-2, 8)


def _random_formula(rng: random.Random):
    kind = rng.random()
    if kind < 0.6:
        return _random_atom(rng)
    if kind < 0.8:
        return And(_random_atom(rng), _random_atom(rng))
    return Or(_random_atom(rng), _random_atom(rng))


def _flattened(base_formulas, frames):
    """The unsimplified from-scratch system a trace's scopes flatten to."""
    system = ConstraintSystem("flat")
    for name in VARIABLES:
        system.declare(name, 0, 10)
    for formula in base_formulas:
        system.add(formula)
    for frame in frames:
        for formula in frame:
            system.add(formula)
    return system


def _solver_verdict(system: ConstraintSystem) -> SolverStatus:
    solver = create_solver(None)
    system.assert_into(solver)
    return solver.check().status


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_scoped_delta_equivalent_to_from_scratch(seed):
    rng = random.Random(seed)
    base = ConstraintSystem("base")
    for name in VARIABLES:
        base.declare(name, 0, 10)
    base_formulas = [_random_formula(rng) for _ in range(rng.randint(0, 4))]
    for formula in base_formulas:
        base.add(formula)

    scoped = ScopedSimplifier(base, tighten_bounds=bool(rng.getrandbits(1)))
    frames: list[list] = []  # original (unsimplified) delta per open scope

    def check_equivalent():
        flat = _flattened(base_formulas, frames)
        # Same satisfaction on random assignments (bounds included)...
        for _ in range(25):
            assignment = {name: rng.randint(-1, 11) for name in VARIABLES}
            for extra in scoped.system.variables() | flat.variables():
                assignment.setdefault(extra, rng.randint(0, 3))
            assert scoped.system.evaluate(assignment) == flat.evaluate(assignment), (
                f"seed={seed} assignment={assignment}"
            )
        # ...and the same solver verdict as full from-scratch simplification.
        simplified_flat, _stats = simplify_system(flat, tighten_bounds=False)
        assert _solver_verdict(scoped.system) == _solver_verdict(simplified_flat), f"seed={seed}"

    check_equivalent()
    for _ in range(rng.randint(2, 8)):
        action = rng.random()
        if action < 0.4 or not frames:
            scoped.push()
            frames.append([])
        elif action < 0.7:
            delta = [_random_formula(rng) for _ in range(rng.randint(1, 3))]
            frames[-1].extend(delta)
            scoped.add_delta(*delta)
        else:
            scoped.pop()
            frames.pop()
        check_equivalent()
    while frames:
        scoped.pop()
        frames.pop()
    check_equivalent()


def test_scoped_simplifier_pop_never_leaks():
    base = ConstraintSystem("base")
    u = base.declare("u", 0, 10)
    base.add(u <= 8)
    scoped = ScopedSimplifier(base)
    snapshot = (
        tuple(scoped.system.constraints),
        dict(scoped.system.bounds),
        len(scoped.index),
    )
    scoped.push()
    scoped.add_delta(u <= 5, _expr(["u", "v"]) <= 4)
    scoped.pop()
    assert (
        tuple(scoped.system.constraints),
        dict(scoped.system.bounds),
        len(scoped.index),
    ) == snapshot


def test_scoped_simplifier_counts_savings():
    base = ConstraintSystem("base")
    u = base.declare("u", 0, 10)
    base.add(u <= 8)
    scoped = ScopedSimplifier(base)
    scoped.push()
    asserted = scoped.add_delta(
        u <= 8,  # duplicate of the base constraint
        u <= 9,  # subsumed by it
        BoolConst(True),  # folds away
        _expr(["u", "v"]) <= 4,  # fresh
    )
    assert asserted == [_expr(["u", "v"]) <= 4]
    scoped.pop()
    summary = scoped.savings_summary()
    assert summary["scopes"] == 1
    assert summary["admitted"] == 1
    assert summary["duplicates"] == 1
    assert summary["subsumed"] == 1
    assert summary["folded"] == 1


def test_false_delta_is_surfaced():
    base = ConstraintSystem("base")
    base.declare("u", 0, 10)
    scoped = ScopedSimplifier(base)
    scoped.push()
    asserted = scoped.add_delta(BoolConst(False))
    assert asserted == [BoolConst(False)]
    assert _solver_verdict(scoped.system) is SolverStatus.UNSAT


def test_tighten_bounds_mode_turns_atoms_into_scoped_bounds():
    base = ConstraintSystem("base")
    u = base.declare("u", 0, 10)
    scoped = ScopedSimplifier(base, tighten_bounds=True)
    scoped.push()
    asserted = scoped.add_delta(u <= 4)
    assert asserted == []  # became a bound, nothing to assert
    assert scoped.system.bounds["u"] == (0, 4)
    scoped.pop()
    assert scoped.system.bounds["u"] == (0, 10)


# ----------------------------------------------------------------------
# Learned cores survive pops (direct-ILP backend)
# ----------------------------------------------------------------------


def test_direct_ilp_cores_survive_pops():
    solver = DirectILPSolver()
    u = solver.int_var("u", 0, 5)
    solver.push()
    # Unsatisfiable atoms force a theory conflict and a learned core.
    solver.add(u >= 3, u <= 1)
    assert solver.check().status is SolverStatus.UNSAT
    assert solver.statistics["cores_learned"] >= 1
    before = incremental_statistics()
    solver.pop()
    after = incremental_statistics()
    assert solver.statistics["cores_retained_across_pops"] >= 1
    assert after["cores_retained_across_pops"] > before["cores_retained_across_pops"]
    assert after["pops_with_live_cores"] > before["pops_with_live_cores"]
    # The retained core still answers without a theory call: a *superset*
    # of the learned core on a fresh scope (a new union, so the result memo
    # misses) is refuted by core subsumption alone.
    v = solver.int_var("v", 0, 5)
    solver.push()
    solver.add(u >= 3, u <= 1, v <= 2)
    assert solver.check().status is SolverStatus.UNSAT
    assert solver.statistics["core_subsumptions"] >= 1
    solver.pop()


# ----------------------------------------------------------------------
# The escape hatch
# ----------------------------------------------------------------------


def test_resolve_incremental_override_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    assert resolve_incremental(None) is True
    assert resolve_incremental(False) is False
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert resolve_incremental(None) is False
    assert resolve_incremental(True) is True
    monkeypatch.setenv("REPRO_INCREMENTAL", "off")
    assert resolve_incremental(None) is False


def test_incremental_statistics_shape():
    stats = incremental_statistics()
    for key in (
        "scopes_pushed",
        "scopes_popped",
        "delta_constraints_simplified",
        "full_resimplifications_avoided",
        "cuts_promoted_to_base",
        "cores_learned",
        "cores_retained_across_pops",
        "core_retention_rate",
        "enabled_default",
    ):
        assert key in stats
