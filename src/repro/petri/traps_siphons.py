"""Traps and siphons of Petri nets.

The population-protocol notions of Definition 10 are the classical Petri-net
ones; this module provides them for general nets (the protocol-specific
versions live in :mod:`repro.verification.traps_siphons`).  A *trap* is a
set of places that, once marked, stays marked; a *siphon* is a set of places
that, once empty, stays empty.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.petri.net import PetriNet


def preset(net: PetriNet, places: Iterable) -> frozenset[str]:
    """``•P``: names of transitions producing into some place of ``P``."""
    place_set = set(places)
    return frozenset(t.name for t in net.transitions if set(t.post.support()) & place_set)


def postset(net: PetriNet, places: Iterable) -> frozenset[str]:
    """``P•``: names of transitions consuming from some place of ``P``."""
    place_set = set(places)
    return frozenset(t.name for t in net.transitions if set(t.pre.support()) & place_set)


def is_trap(net: PetriNet, places: Iterable) -> bool:
    """``P• ⊆ •P``: every consumer of ``P`` also produces into ``P``."""
    place_set = set(places)
    for transition in net.transitions:
        consumes = bool(set(transition.pre.support()) & place_set)
        produces = bool(set(transition.post.support()) & place_set)
        if consumes and not produces:
            return False
    return True


def is_siphon(net: PetriNet, places: Iterable) -> bool:
    """``•P ⊆ P•``: every producer into ``P`` also consumes from ``P``."""
    place_set = set(places)
    for transition in net.transitions:
        produces = bool(set(transition.post.support()) & place_set)
        consumes = bool(set(transition.pre.support()) & place_set)
        if produces and not consumes:
            return False
    return True


def maximal_trap_inside(net: PetriNet, candidate_places: Iterable) -> frozenset:
    """The unique maximal trap contained in ``candidate_places`` (greedy fixed point)."""
    current = set(candidate_places)
    changed = True
    while changed and current:
        changed = False
        for transition in net.transitions:
            if not set(transition.post.support()) & current:
                offending = set(transition.pre.support()) & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


def maximal_siphon_inside(net: PetriNet, candidate_places: Iterable) -> frozenset:
    """The unique maximal siphon contained in ``candidate_places`` (greedy fixed point)."""
    current = set(candidate_places)
    changed = True
    while changed and current:
        changed = False
        for transition in net.transitions:
            if not set(transition.pre.support()) & current:
                offending = set(transition.post.support()) & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


def siphon_trap_property_violations(net: PetriNet, initial_marking) -> list[frozenset]:
    """Siphons that are unmarked initially (candidates for permanent starvation).

    Classical deadlock analysis: a siphon that is (or becomes) empty stays
    empty, so an initially unmarked siphon pinpoints places that can never be
    marked.  Returns the maximal initially-unmarked siphon (as a singleton
    list, or an empty list if there is none).
    """
    unmarked = {place for place in net.places if initial_marking[place] == 0}
    siphon = maximal_siphon_inside(net, unmarked)
    return [siphon] if siphon else []
