"""The gated z3 solver adapter.

Without z3 installed (the CI default), the backend must be cleanly absent:
the module imports, the registry does not list ``"z3"`` and the options
validation rejects it with the standard message.  With z3 installed, the
adapter must honour the ConstraintSolver protocol — and the cross-backend
parity suite (:mod:`tests.test_backend_parity`) then exercises it against
every library protocol for free, because it enumerates the registry.
"""

from __future__ import annotations

import pytest

from repro.api import VerificationOptions
from repro.constraints.backends import available_backends, create_solver
from repro.constraints.z3_backend import Z3Backend, z3_available
from repro.smtlite.solver import SolverStatus
from repro.smtlite.terms import IntVar


class TestGating:
    def test_module_imports_without_z3(self):
        # Imported at the top of this file: reaching here is the test.
        assert isinstance(z3_available(), bool)

    def test_registry_matches_availability(self):
        assert ("z3" in available_backends()) == z3_available()

    @pytest.mark.skipif(z3_available(), reason="z3 is installed here")
    def test_unavailable_backend_rejected_by_options(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            VerificationOptions(backend="z3")

    @pytest.mark.skipif(z3_available(), reason="z3 is installed here")
    def test_solver_construction_requires_z3(self):
        with pytest.raises(ImportError):
            Z3Backend().create_solver()


@pytest.mark.skipif(not z3_available(), reason="z3 is not installed")
class TestZ3Solver:
    def _solver(self):
        return create_solver("z3")

    def test_sat_with_model_and_default_bounds(self):
        solver = self._solver()
        x, y = IntVar("x"), IntVar("y")
        solver.add(x + y >= 5, x <= 2)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        model = result.model
        assert model.value(x) + model.value(y) >= 5
        assert model.value(x) >= 0 and model.value(y) >= 0  # natural domain

    def test_unsat_under_declared_bounds(self):
        solver = self._solver()
        x = solver.int_var("x", lower=0, upper=3)
        solver.add(x >= 4)
        assert solver.check().status is SolverStatus.UNSAT

    def test_push_pop_retracts_assertions(self):
        solver = self._solver()
        x = IntVar("x")
        solver.add(x >= 1)
        solver.push()
        solver.add(x <= 0)
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        assert solver.check().status is SolverStatus.SAT

    def test_assumptions_do_not_stick(self):
        solver = self._solver()
        x = IntVar("x")
        solver.add(x >= 1)
        assert solver.check(assumptions=[x <= 0]).status is SolverStatus.UNSAT
        assert solver.check().status is SolverStatus.SAT

    def test_check_conjunction_ignores_asserted_state(self):
        solver = self._solver()
        x = IntVar("x")
        solver.add(x >= 10)
        result = solver.check_conjunction([x <= 5])
        assert result.status is SolverStatus.SAT

    def test_ws3_verdict_matches_the_default_backend(self):
        from repro.api import Verifier
        from repro.protocols.library import majority_protocol

        with Verifier(VerificationOptions(backend="z3")) as verifier:
            via_z3 = verifier.check(majority_protocol())
        with Verifier() as verifier:
            reference = verifier.check(majority_protocol())
        assert via_z3.is_ws3 == reference.is_ws3
