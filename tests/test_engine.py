"""Tests for the parallel verification engine (scheduler, worker, envelopes)."""

from __future__ import annotations

import pickle

import pytest

from repro.datatypes.multiset import Multiset
from repro.engine import EngineError, Subproblem, VerificationEngine
from repro.engine.cache import protocol_content_hash
from repro.engine.subproblem import (
    decode_consensus_counterexample,
    decode_partition,
    encode_consensus_counterexample,
    encode_partition,
)
from repro.io.serialization import protocol_to_dict
from repro.protocols.protocol import OrderedPartition, Transition
from repro.verification.results import RefinementStep, StrongConsensusCounterexample


def _consensus_subproblems(protocol, count=None):
    """All pattern-pair subproblems of a protocol, seeded empty."""
    from repro.verification.strong_consensus import (
        consensus_pair_subproblems,
        terminal_support_patterns,
    )

    patterns = terminal_support_patterns(protocol)
    true_patterns = [p for p in patterns if p.admits_output(protocol, 1)]
    false_patterns = [p for p in patterns if p.admits_output(protocol, 0)]
    pairs = [(t, f) for t in true_patterns for f in false_patterns]
    if count is not None:
        pairs = pairs[:count]
    return consensus_pair_subproblems(
        protocol,
        pairs,
        [],
        "auto",
        10_000,
        0,
        protocol_to_dict(protocol),
        protocol_content_hash(protocol),
    )


class TestEnvelopes:
    def test_subproblem_rejects_unknown_kind(self, majority_protocol):
        with pytest.raises(ValueError):
            Subproblem(kind="nonsense", index=0, protocol_key="k", protocol_data={})

    def test_subproblems_pickle(self, majority_protocol):
        subproblems = _consensus_subproblems(majority_protocol)
        assert subproblems, "majority must have at least one pattern pair"
        for subproblem in subproblems:
            clone = pickle.loads(pickle.dumps(subproblem))
            assert clone.kind == subproblem.kind
            assert clone.protocol_key == subproblem.protocol_key
            assert clone.params["pattern_true"] == subproblem.params["pattern_true"]

    def test_multiset_pickle_drops_cached_hash(self):
        multiset = Multiset({"a": 2, ("b", 1): 1})
        hash(multiset)  # populate the cache
        clone = pickle.loads(pickle.dumps(multiset))
        assert clone._hash is None
        assert clone == multiset
        assert hash(clone) == hash(multiset)  # same process, same seed

    def test_refinement_steps_pickle(self):
        step = RefinementStep(kind="trap", states=frozenset({"a", ("b", 2)}), iteration=3)
        clone = pickle.loads(pickle.dumps(step))
        assert clone.kind == step.kind
        assert clone.states == step.states

    def test_counterexample_round_trip(self):
        transition = Transition.make(("a", "b"), ("b", "b"))
        counterexample = StrongConsensusCounterexample(
            initial=Multiset({"a": 3}),
            terminal_true=Multiset({"b": 3}),
            terminal_false=Multiset({"a": 1, "b": 2}),
            flow_true={transition: 2},
            flow_false={},
        )
        clone = decode_consensus_counterexample(
            encode_consensus_counterexample(counterexample)
        )
        assert clone.initial == counterexample.initial
        assert clone.terminal_true == counterexample.terminal_true
        assert clone.terminal_false == counterexample.terminal_false
        assert clone.flow_true == counterexample.flow_true
        assert clone.flow_false == counterexample.flow_false

    def test_partition_round_trip(self):
        first = Transition.make(("a", "b"), ("b", "b"))
        second = Transition.make(("b", "c"), ("c", "c"))
        partition = OrderedPartition.of([first], [second])
        clone = decode_partition(encode_partition(partition))
        assert clone == partition


class TestSchedulerSerial:
    """jobs=1 solves everything inline: no pool, no pickling."""

    def test_inline_results_in_input_order(self, majority_protocol):
        engine = VerificationEngine(jobs=1)
        subproblems = _consensus_subproblems(majority_protocol)
        results = engine.run_wave(subproblems)
        assert [r.index for r in results] == [s.index for s in subproblems]
        assert all(r.verdict in ("unsat", "sat", "pruned") for r in results)

    def test_inline_stop_on_skips_the_rest(self, majority_protocol):
        engine = VerificationEngine(jobs=1)
        subproblems = _consensus_subproblems(majority_protocol) * 3
        results = engine.run_wave(subproblems, stop_on=lambda result: True)
        assert results[0] is not None
        assert all(result is None for result in results[1:])
        assert engine.statistics["cancelled"] == len(subproblems) - 1

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            VerificationEngine(jobs=0)


class TestSchedulerParallel:
    def test_pool_results_in_input_order(self, majority_protocol):
        with VerificationEngine(jobs=2) as engine:
            subproblems = _consensus_subproblems(majority_protocol)
            results = engine.run_wave(subproblems)
        assert [r.index for r in results] == [s.index for s in subproblems]

    def test_poisoned_worker_raises_clean_error(self):
        """A worker dying mid-subproblem is an EngineError, not a hang."""
        with VerificationEngine(jobs=2, wave_timeout=60) as engine:
            poison = Subproblem(kind="poison", index=0, protocol_key="k", protocol_data={})
            with pytest.raises(EngineError, match="worker process died"):
                engine.run_wave([poison])

    def test_engine_usable_again_after_worker_death(self, majority_protocol):
        with VerificationEngine(jobs=2, wave_timeout=60) as engine:
            poison = Subproblem(kind="poison", index=0, protocol_key="k", protocol_data={})
            with pytest.raises(EngineError):
                engine.run_wave([poison])
            results = engine.run_wave(_consensus_subproblems(majority_protocol, count=1))
            assert results[0] is not None

    def test_worker_exception_propagates(self):
        with VerificationEngine(jobs=2, wave_timeout=60) as engine:
            bad = Subproblem(
                kind="poison", index=0, protocol_key="k", protocol_data={}, params={"mode": "raise"}
            )
            with pytest.raises(RuntimeError, match="poisoned subproblem"):
                engine.run_wave([bad])

    def test_failed_peer_does_not_mask_a_decisive_result(self, majority_protocol):
        """A peer that fails past the stopping point must not hide the verdict.

        The serial order would never have solved the failing subproblem (it
        sits after the decisive one), so its error is dropped, exactly like
        a cancelled sibling.
        """
        decisive = _consensus_subproblems(majority_protocol, count=1)[0]
        bad = Subproblem(
            kind="poison", index=1, protocol_key="k", protocol_data={}, params={"mode": "raise"}
        )
        with VerificationEngine(jobs=2, wave_timeout=60) as engine:
            results = engine.run_wave([decisive, bad], stop_on=lambda result: True)
            assert results[0] is not None
            assert results[1] is None
            dropped = engine.statistics["cancelled"] + engine.statistics["failed_after_stop"]
            assert dropped == 1
