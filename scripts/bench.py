#!/usr/bin/env python
"""Run the fixed verification benchmark subset and record a perf snapshot.

Writes ``BENCH_<n>.json`` (next free ``n``) in the repository root with one
entry per benchmark instance: protocol name, |Q|, |T|, the verification
verdict, wall-clock time, and the constraint-solver statistics (theory
checks, cache hits/misses, CEGAR refinements).  Successive PRs can diff
these snapshots to track the performance trajectory.

Usage::

    PYTHONPATH=src python scripts/bench.py            # default subset
    PYTHONPATH=src python scripts/bench.py --large    # adds the heavier rows
    PYTHONPATH=src python scripts/bench.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.protocols.library import (  # noqa: E402
    broadcast_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    remainder_protocol,
    threshold_table_protocol,
)
from repro.verification.ws3 import verify_ws3  # noqa: E402


def benchmark_suite(large: bool):
    """The fixed subset: (family, parameter label, protocol factory)."""
    rows = [
        ("majority", "-", majority_protocol),
        ("broadcast", "-", broadcast_protocol),
        ("flock-of-birds", "c=4", lambda: flock_of_birds_protocol(4)),
        ("flock-of-birds", "c=6", lambda: flock_of_birds_protocol(6)),
        ("threshold-n", "c=5", lambda: flock_of_birds_threshold_n_protocol(5)),
        ("threshold-n", "c=8", lambda: flock_of_birds_threshold_n_protocol(8)),
        ("remainder", "m=5", lambda: remainder_protocol([1], 5, 3)),
        ("threshold", "vmax=2", lambda: threshold_table_protocol(2)),
    ]
    if large:
        rows += [
            ("flock-of-birds", "c=8", lambda: flock_of_birds_protocol(8)),
            ("threshold-n", "c=10", lambda: flock_of_birds_threshold_n_protocol(10)),
            ("remainder", "m=8", lambda: remainder_protocol([1], 8, 3)),
            ("threshold", "vmax=3", lambda: threshold_table_protocol(3)),
        ]
    return rows


def run_instance(family: str, parameter: str, factory) -> dict:
    protocol = factory()
    start = time.perf_counter()
    result = verify_ws3(protocol)
    elapsed = time.perf_counter() - start
    strong = result.strong_consensus
    entry = {
        "family": family,
        "parameter": parameter,
        "protocol": protocol.name,
        "num_states": protocol.num_states,
        "num_transitions": protocol.num_transitions,
        "is_ws3": result.is_ws3,
        "wall_clock_seconds": round(elapsed, 4),
        "layered_termination": {
            "holds": result.layered_termination.holds,
            "strategy": result.layered_termination.statistics.get("strategy"),
            "time": result.layered_termination.statistics.get("time"),
        },
    }
    if strong is not None:
        entry["strong_consensus"] = {
            "holds": strong.holds,
            "iterations": strong.statistics.get("iterations"),
            "pattern_pairs": strong.statistics.get("pattern_pairs"),
            "refinements": len(strong.refinements),
            "time": strong.statistics.get("time"),
            "solver": strong.statistics.get("solver", {}),
        }
    return entry


def next_output_path() -> Path:
    taken = set()
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            taken.add(int(match.group(1)))
    index = 0
    while index in taken:
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--large", action="store_true", help="include the heavier instances")
    parser.add_argument("--output", type=Path, default=None, help="output path (default: BENCH_<n>.json)")
    args = parser.parse_args(argv)

    entries = []
    for family, parameter, factory in benchmark_suite(args.large):
        print(f"running {family} {parameter} ...", flush=True)
        entry = run_instance(family, parameter, factory)
        print(
            f"  |Q|={entry['num_states']} |T|={entry['num_transitions']} "
            f"ws3={entry['is_ws3']} time={entry['wall_clock_seconds']}s",
            flush=True,
        )
        entries.append(entry)

    snapshot = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "large": args.large,
        "total_seconds": round(sum(entry["wall_clock_seconds"] for entry in entries), 4),
        "benchmarks": entries,
    }
    output = args.output or next_output_path()
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
