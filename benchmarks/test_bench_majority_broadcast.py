"""Table 1, sub-tables "Majority" and "Broadcast".

The paper reports a single row for each of these fixed-size protocols
(majority: |Q| = 4, |T| = 4, 0.1 s; broadcast: |Q| = 2, |T| = 1, 0.1 s).
Each benchmark proves WS³ membership from scratch.
"""

from __future__ import annotations

from repro.protocols.library import broadcast_protocol, majority_protocol
from repro.verification.ws3 import verify_ws3

from .conftest import run_once


def test_majority_ws3(benchmark):
    protocol = majority_protocol()
    assert (protocol.num_states, protocol.num_transitions) == (4, 4)  # Table 1 row
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


def test_broadcast_ws3(benchmark):
    protocol = broadcast_protocol()
    assert (protocol.num_states, protocol.num_transitions) == (2, 1)  # Table 1 row
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3
