"""Syntax of population protocols (Section 2 of the paper).

A population protocol is a tuple ``P = (Q, T, Sigma, I, O)`` where ``Q`` is a
finite set of states, ``T`` a set of pairwise transitions, ``Sigma`` an input
alphabet, ``I`` an input mapping and ``O`` a boolean output mapping.

Representation choices
----------------------
* States and input symbols are arbitrary hashable Python values (strings,
  integers, tuples, ...).
* Only *non-silent* transitions are stored explicitly.  The paper requires
  every pair of states to have at least one transition; pairs without an
  explicit transition implicitly carry the silent transition
  ``(p, q) -> (p, q)``.  This matches the convention used in the paper's
  experimental section, where ``|T|`` counts non-silent transitions.
* Configurations are :class:`~repro.datatypes.multiset.Multiset` instances
  over states.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.datatypes.multiset import Multiset

State = Hashable
Symbol = Hashable
Configuration = Multiset


class ProtocolError(ValueError):
    """Raised when a protocol definition is inconsistent."""


@dataclass(frozen=True)
class Transition:
    """A pairwise transition ``(p, q) -> (p', q')``.

    ``pre`` and ``post`` are multisets of size exactly two.  A transition is
    *silent* if ``pre == post``; silent transitions can never change a
    configuration.
    """

    pre: Multiset
    post: Multiset
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.pre.size() != 2 or self.post.size() != 2:
            raise ProtocolError(
                f"transitions are pairwise: pre and post must have size 2, got "
                f"{self.pre.pretty()} -> {self.post.pretty()}"
            )
        effect: dict[State, int] = {}
        for state in self.pre.support() | self.post.support():
            change = self.post[state] - self.pre[state]
            if change != 0:
                effect[state] = change
        # The dataclass is frozen; the cached derived data is not a field.
        object.__setattr__(self, "delta_map", effect)

    @classmethod
    def make(
        cls,
        pre: Sequence[State] | Multiset,
        post: Sequence[State] | Multiset,
        name: str | None = None,
    ) -> "Transition":
        """Build a transition from two-element sequences or multisets."""
        pre_ms = pre if isinstance(pre, Multiset) else Multiset(list(pre))
        post_ms = post if isinstance(post, Multiset) else Multiset(list(post))
        return cls(pre_ms, post_ms, name)

    @property
    def is_silent(self) -> bool:
        """True if the transition cannot change any configuration."""
        return self.pre == self.post

    def states(self) -> frozenset[State]:
        """All states mentioned by the transition."""
        return self.pre.support() | self.post.support()

    def delta(self) -> dict[State, int]:
        """Effect of the transition on each state: ``post(q) - pre(q)``."""
        return dict(self.delta_map)

    def enabled_at(self, configuration: Configuration) -> bool:
        """True if ``configuration >= pre``."""
        return self.pre <= configuration

    def fire(self, configuration: Configuration) -> Configuration:
        """Occurrence of the transition: ``C - pre + post``.

        Raises :class:`ProtocolError` if the transition is not enabled.
        """
        if not self.enabled_at(configuration):
            raise ProtocolError(f"transition {self} is not enabled at {configuration.pretty()}")
        return configuration - self.pre + self.post

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"<{label}{self.pre.pretty()} -> {self.post.pretty()}>"


@dataclass(frozen=True)
class OrderedPartition:
    """An ordered partition ``(T_1, ..., T_n)`` of a set of transitions.

    Used as a certificate for LayeredTermination (Definition 4).
    """

    layers: tuple[frozenset[Transition], ...]

    @classmethod
    def of(cls, *layers: Iterable[Transition]) -> "OrderedPartition":
        return cls(tuple(frozenset(layer) for layer in layers))

    def __post_init__(self) -> None:
        seen: set[Transition] = set()
        for index, layer in enumerate(self.layers):
            if not layer:
                raise ProtocolError(f"layer {index + 1} of an ordered partition must be non-empty")
            overlap = seen & layer
            if overlap:
                raise ProtocolError(f"ordered partition layers must be disjoint; {overlap} repeated")
            seen |= layer

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def transitions(self) -> frozenset[Transition]:
        """Union of all layers."""
        result: set[Transition] = set()
        for layer in self.layers:
            result |= layer
        return frozenset(result)

    def covers(self, transitions: Iterable[Transition]) -> bool:
        """True if the partition covers exactly the given non-silent transitions."""
        return self.transitions() == frozenset(transitions)

    def layer_of(self, transition: Transition) -> int:
        """1-based index of the layer containing ``transition``."""
        for index, layer in enumerate(self.layers, start=1):
            if transition in layer:
                return index
        raise KeyError(transition)


class PopulationProtocol:
    """A population protocol ``P = (Q, T, Sigma, I, O)``.

    Parameters
    ----------
    states:
        Finite iterable of states.
    transitions:
        Iterable of transitions; silent transitions are accepted but dropped
        (they are implicit for every pair of states).
    input_alphabet:
        Finite iterable of input symbols.
    input_map:
        Mapping from each input symbol to a state.
    output_map:
        Mapping from each state to a boolean (or 0/1) output.
    name:
        Optional human-readable name.
    partition_hint:
        Optional :class:`OrderedPartition` certificate for LayeredTermination
        (for example the partitions given in the paper's proofs).
    metadata:
        Free-form dictionary (e.g. the predicate the protocol is meant to
        compute, construction parameters, ...).
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Iterable[Transition],
        input_alphabet: Iterable[Symbol],
        input_map: Mapping[Symbol, State],
        output_map: Mapping[State, bool | int],
        name: str = "protocol",
        partition_hint: OrderedPartition | None = None,
        metadata: Mapping[str, Any] | None = None,
    ):
        self.states: frozenset[State] = frozenset(states)
        if not self.states:
            raise ProtocolError("a protocol needs a non-empty set of states")

        non_silent = []
        seen: set[tuple[Multiset, Multiset]] = set()
        for transition in transitions:
            if transition.is_silent:
                continue
            key = (transition.pre, transition.post)
            if key in seen:
                continue
            seen.add(key)
            non_silent.append(transition)
        self.transitions: tuple[Transition, ...] = tuple(non_silent)

        self.input_alphabet: tuple[Symbol, ...] = tuple(dict.fromkeys(input_alphabet))
        if not self.input_alphabet:
            raise ProtocolError("the input alphabet must be non-empty")
        self.input_map: dict[Symbol, State] = dict(input_map)
        for state, value in output_map.items():
            if value not in (0, 1, True, False):
                raise ProtocolError(f"output of state {state!r} must be a boolean (0/1), got {value!r}")
        self.output_map: dict[State, int] = {state: int(value) for state, value in output_map.items()}
        self.name = name
        self.partition_hint = partition_hint
        self.metadata: dict[str, Any] = dict(metadata or {})

        self._validate()
        self._transitions_by_state: dict[State, tuple[Transition, ...]] | None = None

    # ------------------------------------------------------------------
    # Validation and derived data
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        for transition in self.transitions:
            unknown = transition.states() - self.states
            if unknown:
                raise ProtocolError(f"transition {transition} uses unknown states {set(unknown)}")
        missing_inputs = set(self.input_alphabet) - set(self.input_map)
        if missing_inputs:
            raise ProtocolError(f"input symbols without a mapped state: {missing_inputs}")
        for symbol, state in self.input_map.items():
            if state not in self.states:
                raise ProtocolError(f"input symbol {symbol!r} maps to unknown state {state!r}")
        missing_outputs = self.states - set(self.output_map)
        if missing_outputs:
            raise ProtocolError(f"states without an output value: {missing_outputs}")
        for state, value in self.output_map.items():
            if value not in (0, 1):
                raise ProtocolError(f"output of state {state!r} must be 0 or 1, got {value!r}")
        if self.partition_hint is not None and not self.partition_hint.covers(self.transitions):
            raise ProtocolError("the partition hint must cover exactly the non-silent transitions")

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        """Number of non-silent transitions (the ``|T|`` column of Table 1)."""
        return len(self.transitions)

    def initial_states(self) -> frozenset[State]:
        """The states in the image of the input mapping, ``I(Sigma)``."""
        return frozenset(self.input_map[symbol] for symbol in self.input_alphabet)

    def true_states(self) -> frozenset[State]:
        """States with output 1."""
        return frozenset(state for state, value in self.output_map.items() if value == 1)

    def false_states(self) -> frozenset[State]:
        """States with output 0."""
        return frozenset(state for state, value in self.output_map.items() if value == 0)

    def output(self, state: State) -> int:
        """Output of a single state."""
        return self.output_map[state]

    def transitions_touching(self, state: State) -> tuple[Transition, ...]:
        """Non-silent transitions whose ``pre`` contains the given state."""
        if self._transitions_by_state is None:
            by_state: dict[State, list[Transition]] = {q: [] for q in self.states}
            for transition in self.transitions:
                for q in transition.pre.support():
                    by_state[q].append(transition)
            self._transitions_by_state = {q: tuple(ts) for q, ts in by_state.items()}
        return self._transitions_by_state.get(state, ())

    # ------------------------------------------------------------------
    # Inputs and configurations
    # ------------------------------------------------------------------

    def initial_configuration(self, input_population: Mapping[Symbol, int] | Multiset) -> Configuration:
        """Map an input ``X`` in ``Pop(Sigma)`` to the configuration ``I(X)``."""
        if not isinstance(input_population, Multiset):
            input_population = Multiset(dict(input_population))
        unknown = input_population.support() - set(self.input_alphabet)
        if unknown:
            raise ProtocolError(f"unknown input symbols {set(unknown)}")
        if input_population.size() < 2:
            raise ProtocolError("populations must contain at least two agents")
        counts: dict[State, int] = {}
        for symbol, count in input_population.items():
            state = self.input_map[symbol]
            counts[state] = counts.get(state, 0) + count
        return Multiset(counts)

    def is_initial(self, configuration: Configuration) -> bool:
        """True if the configuration is ``I(X)`` for some input ``X``."""
        return (
            configuration.size() >= 2
            and configuration.support() <= self.initial_states()
        )

    def is_configuration(self, configuration: Configuration) -> bool:
        """True if the multiset is a population over the protocol's states."""
        return configuration.size() >= 2 and configuration.support() <= self.states

    # ------------------------------------------------------------------
    # Induced protocols (P[S], Section 3)
    # ------------------------------------------------------------------

    def induced(self, transitions: Iterable[Transition], name: str | None = None) -> "PopulationProtocol":
        """The protocol ``P[S]`` induced by a subset of transitions.

        Following the paper, silent transitions for all pairs of states are
        implicitly present, so the induced protocol simply restricts the set
        of explicit (non-silent) transitions.
        """
        subset = [t for t in transitions if t in set(self.transitions) or not t.is_silent]
        return PopulationProtocol(
            states=self.states,
            transitions=subset,
            input_alphabet=self.input_alphabet,
            input_map=self.input_map,
            output_map=self.output_map,
            name=name or f"{self.name}[induced]",
            metadata=self.metadata,
        )

    def with_negated_output(self, name: str | None = None) -> "PopulationProtocol":
        """The protocol computing the negated predicate (Section 5)."""
        negated = {state: 1 - value for state, value in self.output_map.items()}
        return PopulationProtocol(
            states=self.states,
            transitions=self.transitions,
            input_alphabet=self.input_alphabet,
            input_map=self.input_map,
            output_map=negated,
            name=name or f"not({self.name})",
            partition_hint=self.partition_hint,
            metadata=self.metadata,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PopulationProtocol(name={self.name!r}, |Q|={self.num_states}, "
            f"|T|={self.num_transitions}, |Sigma|={len(self.input_alphabet)})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description of the protocol."""
        lines = [
            f"Protocol {self.name}",
            f"  states ({self.num_states}): {sorted(map(repr, self.states))}",
            f"  input alphabet: {list(self.input_alphabet)}",
            f"  input map: " + ", ".join(f"{s!r} -> {self.input_map[s]!r}" for s in self.input_alphabet),
            f"  output map: "
            + ", ".join(f"{q!r} -> {self.output_map[q]}" for q in sorted(self.states, key=repr)),
            f"  non-silent transitions ({self.num_transitions}):",
        ]
        for transition in self.transitions:
            lines.append(f"    {transition.pre.pretty()} -> {transition.post.pretty()}")
        return "\n".join(lines)
