"""Flow equations and potential reachability (Section 4 of the paper).

For a step ``C --t--> C'`` of a population protocol and every state ``q`` we
have ``C'(q) = C(q) + post(t)(q) - pre(t)(q)``.  Summed over a transition
sequence this gives the *flow equations* (Equation (1)): a necessary
condition for ``C ->* C'`` parametrised by a vector ``x : T -> N`` counting
transition occurrences.  The flow equations together with trap and siphon
constraints define the *potential reachability* relation of Definition 12,
which over-approximates reachability and is the backbone of the
StrongConsensus check.

This module provides the concrete (numeric) side of these notions: applying
a flow vector to a configuration, checking the flow equations, and checking
a full potential-reachability witness.  The symbolic (constraint) side lives
in :mod:`repro.verification.strong_consensus`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol, Transition
from repro.petri.traps_siphons import (
    maximal_trap_with_support_outside,
    maximal_siphon_with_support_outside,
    pre_transitions,
    post_transitions,
)


def transition_effect(transition: Transition) -> dict:
    """The effect ``post - pre`` of a transition on every state it mentions."""
    return transition.delta()


def apply_flow(
    configuration: Configuration, flow: Mapping[Transition, int]
) -> dict:
    """Apply a flow vector to a configuration.

    Returns a plain dictionary (values may be negative, in which case no
    configuration satisfies the flow equations with this vector).
    """
    counts: dict = {state: count for state, count in configuration.items()}
    for transition, occurrences in flow.items():
        if occurrences < 0:
            raise ValueError("flow vectors must be non-negative")
        if occurrences == 0:
            continue
        for state, change in transition.delta().items():
            counts[state] = counts.get(state, 0) + occurrences * change
    return counts


def satisfies_flow_equations(
    source: Configuration, target: Configuration, flow: Mapping[Transition, int]
) -> bool:
    """Check Equation (1) for every state."""
    predicted = apply_flow(source, flow)
    states = set(predicted) | set(target.support())
    return all(predicted.get(state, 0) == target[state] for state in states)


@dataclass
class PotentialReachabilityWitness:
    """A triple ``(C, C', x)`` claimed to satisfy ``C -x-> C'`` potentially."""

    source: Configuration
    target: Configuration
    flow: dict[Transition, int]

    def support(self) -> frozenset[Transition]:
        return frozenset(t for t, occurrences in self.flow.items() if occurrences > 0)


def check_potential_reachability(
    protocol: PopulationProtocol, witness: PotentialReachabilityWitness
) -> tuple[bool, str]:
    """Check all three conditions of Definition 12 on concrete values.

    Returns ``(True, "")`` if the witness is a genuine potential-reachability
    witness, and ``(False, reason)`` otherwise.  Because the union of traps
    (resp. siphons) is a trap (resp. siphon), it is enough to inspect the
    maximal trap avoiding the support of the target (resp. the maximal siphon
    avoiding the support of the source).
    """
    if not satisfies_flow_equations(witness.source, witness.target, witness.flow):
        return False, "flow equations violated"
    support = witness.support()

    empty_in_target = {q for q in protocol.states if witness.target[q] == 0}
    trap = maximal_trap_with_support_outside(protocol, support, empty_in_target)
    if trap and pre_transitions(protocol, trap) & support:
        return False, f"trap constraint violated by {sorted(map(repr, trap))}"

    empty_in_source = {q for q in protocol.states if witness.source[q] == 0}
    siphon = maximal_siphon_with_support_outside(protocol, support, empty_in_source)
    if siphon and post_transitions(protocol, siphon) & support:
        return False, f"siphon constraint violated by {sorted(map(repr, siphon))}"
    return True, ""


def flow_from_transition_sequence(transitions: list[Transition]) -> dict[Transition, int]:
    """The Parikh image (occurrence counts) of a transition sequence."""
    flow: dict[Transition, int] = {}
    for transition in transitions:
        flow[transition] = flow.get(transition, 0) + 1
    return flow


def configuration_from_counts(counts: Mapping) -> Configuration:
    """Build a configuration from a (possibly zero-padded) count mapping."""
    return Multiset({state: count for state, count in counts.items() if count > 0})
