"""Deterministic fault injection for the chaos test suite.

A *fault plan* is a small JSON document describing which injection sites
misbehave, how, and on which occurrence::

    {
      "seed": 1234,
      "state_dir": "/tmp/faults",
      "faults": [
        {"site": "worker.solve", "action": "kill", "at": 1},
        {"site": "backend.check", "action": "raise", "match": {"backend": "smtlite"}},
        {"site": "cache.corrupt", "action": "corrupt", "times": 1}
      ]
    }

Plans activate two ways:

* :func:`install_plan` — process-local, for in-process tests;
* the ``REPRO_FAULT_PLAN`` environment variable — either inline JSON or a
  path to a JSON file.  Worker processes inherit the environment, so a plan
  installed before the pool spawns fires inside workers too.

Sites call :func:`fire` with their context (``fire("worker.solve",
kind=..., index=...)``); the call is close to free when no plan is active
(one environment lookup).  Occurrence counting is per fault: ``"at": n``
fires exactly on the n-th matching call, ``"times": k`` on the first ``k``.
With a ``state_dir`` the counters live in files shared **across
processes** (atomic ``O_APPEND`` writes), so "kill the first worker solve"
means the first solve anywhere in the pool — and, crucially, the *retried*
subproblem does not re-trigger the fault, which is what lets the chaos
suite assert that retry actually recovers.  Without a ``state_dir``
counters are per-process.

The harness stays purely declarative: :func:`fire` only *reports* the
matching fault.  Each site applies the action itself
(:func:`apply_fault` covers the common ones), so a site can never be
broken by an action that makes no sense there.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable carrying an active plan (inline JSON or a file path).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code of a worker killed by the ``"kill"`` action (distinguishable
#: from the poison subproblem's 17 in postmortems).
KILL_EXIT_CODE = 23

#: The actions a fault may declare.  ``drop`` and ``truncate`` are
#: transport-level actions (a frame silently not sent; a frame cut short
#: with the connection torn down) applied by the network sites in
#: :mod:`repro.service.net`, like ``corrupt`` is applied by the cache sites.
ACTIONS = ("kill", "raise", "delay", "corrupt", "drop", "truncate")


class FaultInjected(RuntimeError):
    """Raised by the ``"raise"`` action (a deliberately crashed component)."""


@dataclass(frozen=True)
class Fault:
    """One declared fault: where, what, and on which occurrence."""

    site: str
    action: str
    at: int | None = None
    times: int | None = None
    match: dict = field(default_factory=dict)
    seconds: float = 0.0
    probability: float | None = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("a fault needs a site name")
        if self.action not in ACTIONS:
            raise ValueError(f"fault action must be one of {ACTIONS}, got {self.action!r}")
        if self.at is not None and self.at < 1:
            raise ValueError(f"'at' is a 1-based occurrence number, got {self.at}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"'times' must be >= 1, got {self.times}")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"'probability' must be in [0, 1], got {self.probability}")

    def matches(self, context: dict) -> bool:
        """True iff every ``match`` key equals the site's context value."""
        return all(context.get(key) == value for key, value in self.match.items())

    def should_fire(self, occurrence: int, seed: int) -> bool:
        """Decide for the ``occurrence``-th matching call (deterministic)."""
        if self.at is not None:
            if occurrence != self.at:
                return False
        elif self.times is not None:
            if occurrence > self.times:
                return False
        if self.probability is None:
            return True
        # Seeded per-occurrence coin flip: the same plan replays the same
        # fault sequence run after run, process after process.
        import random

        return random.Random(f"{seed}:{self.site}:{occurrence}").random() < self.probability

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        known = {"site", "action", "at", "times", "match", "seconds", "probability"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault fields: {sorted(unknown)}")
        return cls(
            site=data.get("site", ""),
            action=data.get("action", ""),
            at=data.get("at"),
            times=data.get("times"),
            match=dict(data.get("match", {})),
            seconds=float(data.get("seconds", 0.0)),
            probability=data.get("probability"),
        )

    def to_dict(self) -> dict:
        payload: dict = {"site": self.site, "action": self.action}
        if self.at is not None:
            payload["at"] = self.at
        if self.times is not None:
            payload["times"] = self.times
        if self.match:
            payload["match"] = dict(self.match)
        if self.seconds:
            payload["seconds"] = self.seconds
        if self.probability is not None:
            payload["probability"] = self.probability
        return payload


class FaultPlan:
    """A seeded set of faults with deterministic occurrence counters."""

    def __init__(self, faults: list[Fault], seed: int = 0, state_dir: str | None = None):
        self.faults = list(faults)
        self.seed = int(seed)
        self.state_dir = None if state_dir is None else str(state_dir)
        self._sites = {fault.site for fault in self.faults}
        self._lock = threading.Lock()
        self._local_counters: dict[str, int] = {}
        if self.state_dir is not None:
            Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {"faults", "seed", "state_dir"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {sorted(unknown)}")
        faults = [Fault.from_dict(entry) for entry in data.get("faults", [])]
        return cls(faults, seed=int(data.get("seed", 0)), state_dir=data.get("state_dir"))

    def to_dict(self) -> dict:
        payload: dict = {"faults": [fault.to_dict() for fault in self.faults]}
        if self.seed:
            payload["seed"] = self.seed
        if self.state_dir is not None:
            payload["state_dir"] = self.state_dir
        return payload

    @classmethod
    def from_text(cls, text: str) -> "FaultPlan":
        """Parse inline JSON, or read the file the text points at."""
        text = text.strip()
        if not text.startswith("{"):
            text = Path(text).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Occurrence counters
    # ------------------------------------------------------------------

    def _next_occurrence(self, counter: str) -> int:
        """The 1-based occurrence number of this matching call.

        With a ``state_dir`` the counter is one shared file per fault:
        every claim appends one byte with ``O_APPEND`` (atomic at this
        size on POSIX), and the file size after the write is this call's
        occurrence number — a cross-process atomic counter with no locks.
        """
        if self.state_dir is None:
            with self._lock:
                value = self._local_counters.get(counter, 0) + 1
                self._local_counters[counter] = value
                return value
        path = os.path.join(self.state_dir, f"{counter}.count")
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b".")
            return os.fstat(fd).st_size
        finally:
            os.close(fd)

    def fire(self, site: str, **context) -> Fault | None:
        """The fault to apply at this call of ``site``, or ``None``."""
        if site not in self._sites:
            return None
        for index, fault in enumerate(self.faults):
            if fault.site != site or not fault.matches(context):
                continue
            occurrence = self._next_occurrence(f"{site.replace('/', '_')}-{index}")
            if fault.should_fire(occurrence, self.seed):
                return fault
        return None


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------

_INSTALLED: FaultPlan | None = None
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def install_plan(plan: FaultPlan | dict | None) -> FaultPlan | None:
    """Install a process-local plan (tests); ``None`` uninstalls."""
    global _INSTALLED
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    _INSTALLED = plan
    return plan


def clear_plan() -> None:
    """Uninstall the process-local plan and drop the env-plan cache."""
    global _INSTALLED, _ENV_CACHE
    _INSTALLED = None
    _ENV_CACHE = None


def active_plan() -> FaultPlan | None:
    """The plan in effect: the installed one, else ``REPRO_FAULT_PLAN``."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != text:
        _ENV_CACHE = (text, FaultPlan.from_text(text))
    return _ENV_CACHE[1]


def fire(site: str, **context) -> Fault | None:
    """The fault to apply at this call of ``site`` (``None`` without a plan)."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(site, **context)


def apply_fault(fault: Fault | None, site: str = "") -> None:
    """Apply the common actions: ``kill``, ``raise`` and ``delay``.

    ``kill`` terminates the process like an OOM killer would (no cleanup,
    no exception) — but only inside a worker process: the coordinator is
    never collateral damage of a plan meant for its pool.  ``corrupt``,
    ``drop`` and ``truncate`` are site-specific (only cache sites know what
    to damage, only transport sites own a frame to lose) and ignored here.
    """
    if fault is None:
        return
    if fault.action == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(KILL_EXIT_CODE)
        return
    if fault.action == "raise":
        raise FaultInjected(f"fault injected at {site or fault.site}")
    if fault.action == "delay":
        time.sleep(fault.seconds)
