"""Reachability analysis for Petri nets (explicit exploration).

General Petri-net reachability is famously hard (EXPSPACE-hard, decidable
with non-primitive-recursive complexity); this module only implements what
the library needs: explicit breadth-first exploration with a budget, which
is exact for bounded nets and used to validate the Proposition 3 reduction
on small instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.petri.net import Marking, PetriNet


@dataclass
class PetriReachabilityGraph:
    """Explored portion of the reachability graph of a net."""

    root: Marking
    edges: dict[Marking, dict[str, Marking]]
    complete: bool

    @property
    def markings(self) -> frozenset[Marking]:
        return frozenset(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def deadlocks(self) -> frozenset[Marking]:
        """Markings that enable no transition."""
        return frozenset(marking for marking, successors in self.edges.items() if not successors)


def explore(net: PetriNet, initial: Marking, max_markings: int = 100_000) -> PetriReachabilityGraph:
    """Breadth-first exploration of the markings reachable from ``initial``."""
    edges: dict[Marking, dict[str, Marking]] = {}
    queue: deque[Marking] = deque([initial])
    seen: set[Marking] = {initial}
    complete = True
    while queue:
        marking = queue.popleft()
        successors: dict[str, Marking] = {}
        for transition in net.enabled_transitions(marking):
            successor = transition.fire(marking)
            successors[transition.name] = successor
            if successor not in seen:
                if len(seen) >= max_markings:
                    complete = False
                    continue
                seen.add(successor)
                queue.append(successor)
        edges[marking] = successors
    return PetriReachabilityGraph(root=initial, edges=edges, complete=complete)


def is_reachable(
    net: PetriNet, source: Marking, target: Marking, max_markings: int = 100_000
) -> bool | None:
    """Decide reachability by explicit search.

    Returns ``True``/``False`` when the search is conclusive and ``None``
    when the exploration budget was exhausted before finding the target.
    """
    graph = explore(net, source, max_markings=max_markings)
    if target in graph.markings:
        return True
    return False if graph.complete else None


def coverable(
    net: PetriNet, source: Marking, target: Marking, max_markings: int = 100_000
) -> bool | None:
    """Is some marking ``>= target`` reachable from ``source``? (explicit check)."""
    graph = explore(net, source, max_markings=max_markings)
    if any(target <= marking for marking in graph.markings):
        return True
    return False if graph.complete else None
