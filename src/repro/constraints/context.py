"""Per-protocol analysis context: shared structural artifacts, computed once.

Every property check of a WS³ verification needs some of the same
protocol-derived artifacts — the constraint builder's indices, the terminal
support patterns, the per-transition pre/post supports driving the
trap/siphon fixed points, the enabling graph and Lemma 22 witness sets of
the partition search, the underlying Petri net and its normal form.
Before this module each check re-derived what it needed; an
:class:`AnalysisContext` computes each artifact lazily, memoizes it, and is
shared across all property checks of a :class:`repro.api.Verifier` session
(and, through the engine's subproblem envelopes, with worker processes).

``computes`` counts how often each artifact was actually *computed* (not
served from the memo) — the session-sharing guarantee "at most once per
protocol" is asserted by a counting test.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.constraints.builders import (
    ConstraintBuilder,
    TerminalPattern,
    terminal_support_patterns,
)
from repro.protocols.protocol import PopulationProtocol, Transition


class AnalysisContext:
    """Lazily computed, memoized structural artifacts of one protocol."""

    def __init__(self, protocol: PopulationProtocol):
        self.protocol = protocol
        self._memo: dict[str, object] = {}
        #: artifact name -> number of times it was computed from scratch.
        self.computes: dict[str, int] = {}
        #: artifact name -> number of times it arrived pre-computed (engine).
        self.hydrated: dict[str, int] = {}

    def _get(self, name: str, compute: Callable[[], object]):
        if name not in self._memo:
            self._memo[name] = compute()
            self.computes[name] = self.computes.get(name, 0) + 1
        return self._memo[name]

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    @property
    def builder(self) -> ConstraintBuilder:
        """The shared constraint builder (state/transition indices).

        The builder consumes the context's :attr:`state_deltas` basis, so
        the flow-equation rows are derived once per protocol no matter how
        many properties a session checks.
        """
        return self._get(
            "builder", lambda: ConstraintBuilder(self.protocol, state_deltas=self.state_deltas)
        )

    @property
    def terminal_patterns(self) -> list[TerminalPattern]:
        """The terminal support patterns (maximal independent sets)."""
        return self._get("terminal_patterns", lambda: terminal_support_patterns(self.protocol))

    @property
    def transition_supports(self) -> dict[Transition, tuple[frozenset, frozenset]]:
        """The trap/siphon basis: per-transition (pre-support, post-support).

        This is what the greedy maximal-trap/siphon fixed points of the
        CEGAR refinement iterate over; precomputing the frozensets once per
        protocol removes the per-iteration support recomputation.
        """
        return self._get(
            "trap_siphon_basis",
            lambda: {
                t: (frozenset(t.pre.support()), frozenset(t.post.support()))
                for t in self.protocol.transitions
            },
        )

    @property
    def petri_net(self):
        """The conservative Petri net underlying the protocol."""

        def compute():
            from repro.petri.protocol_conversion import petri_net_from_protocol

            return petri_net_from_protocol(self.protocol)

        return self._get("petri_net", compute)

    @property
    def normal_form(self):
        """The normal form (Appendix A) of the underlying net."""

        def compute():
            from repro.petri.normal_form import to_normal_form

            return to_normal_form(self.petri_net)

        return self._get("normal_form", compute)

    @property
    def enabling_graph(self) -> dict[Transition, frozenset[Transition]]:
        """The pairwise "may enable" relation (layered-termination heuristic)."""

        def compute():
            from repro.verification.layered_termination import enabling_graph

            return enabling_graph(self.protocol)

        return self._get("enabling_graph", compute)

    @property
    def lemma22_witnesses(self) -> dict[tuple[Transition, Transition], list[Transition]]:
        """The U-sets ``U'(t, u)`` of Appendix D.1 for every transition pair."""

        def compute():
            from repro.verification.layered_termination import _lemma22_witness_sets

            return _lemma22_witness_sets(list(self.protocol.transitions))

        return self._get("lemma22_witnesses", compute)

    @property
    def state_deltas(self) -> dict:
        """The reachability over-approximation basis: per-state flow-equation rows.

        ``state -> ((transition, delta), ...)`` in the builder's deterministic
        order — exactly the sums the flow equations ``C' = C + Δ·x`` (the
        state-equation over-approximation of reachability) iterate over.
        The :class:`ConstraintBuilder` consumes this instead of re-deriving
        the rows per property check, and the engine ships it to workers.
        Derived by :func:`repro.constraints.builders.state_delta_rows`, the
        one source of the row ordering.
        """
        from repro.constraints.builders import state_delta_rows

        return self._get("state_deltas", lambda: state_delta_rows(self.protocol))

    @property
    def place_invariants(self) -> list[dict]:
        """A basis of rational place invariants of the underlying Petri net.

        Each invariant maps protocol states (= net places) to ``Fraction``
        weights with ``y^T·Δ = 0``: every invariant value is conserved by
        every transition, so ``y·C = y·C0`` along any run — the classical
        linear over-approximation companion to :attr:`state_deltas`.
        """

        def compute():
            from repro.petri.analysis import place_invariants

            return place_invariants(self.petri_net)

        return self._get("place_invariants", compute)

    @property
    def protocol_key(self) -> str:
        """The content-addressed protocol hash (engine cache key component)."""

        def compute():
            from repro.engine.cache import protocol_content_hash

            return protocol_content_hash(self.protocol)

        return self._get("protocol_key", compute)

    def seed_protocol_key(self, key: str) -> "AnalysisContext":
        """Install an already-known content hash (avoids recomputing it)."""
        self._memo.setdefault("protocol_key", key)
        return self

    # ------------------------------------------------------------------
    # Crossing process boundaries (engine subproblem envelopes)
    # ------------------------------------------------------------------

    #: Artifacts cheap to pickle and worth shipping to worker processes.
    #: (States, transitions and Fractions all cross the wire already; the
    #: trap/siphon basis is cheaper to recompute than to ship.)
    PORTABLE = ("terminal_patterns", "state_deltas", "place_invariants")

    def export_data(self) -> dict:
        """The picklable, already-computed artifacts for a subproblem envelope.

        Only artifacts that have actually been computed are shipped — the
        export never forces a computation the coordinator did not need.
        """
        return {name: self._memo[name] for name in self.PORTABLE if name in self._memo}

    def hydrate(self, data: dict | None) -> "AnalysisContext":
        """Seed the memo with artifacts computed elsewhere (returns self)."""
        for name, value in (data or {}).items():
            if name in self.PORTABLE and name not in self._memo:
                self._memo[name] = value
                self.hydrated[name] = self.hydrated.get(name, 0) + 1
        return self
