"""Integer feasibility by branch-and-bound over the exact simplex.

The theory solver needs to decide whether a conjunction of linear constraints
has a solution over the integers (the paper's constraint systems are over the
natural numbers).  This module implements the classical branch-and-bound
scheme on top of :mod:`repro.smtlite.simplex`: solve the LP relaxation
exactly, and if some integer variable takes a fractional value, branch on the
two rounded bounds.

The search is depth-first and purely a feasibility search (no objective), so
the first integral LP solution terminates it.  A node budget guards against
pathological unbounded cases; exceeding it yields ``UNKNOWN`` and callers
fall back to another backend or report the problem.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from math import ceil, floor

from repro.smtlite.simplex import LinearProgram, LPStatus


class ILPStatus(Enum):
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"


@dataclass
class ILPResult:
    status: ILPStatus
    values: dict[str, int] | None = None
    #: Indices of the constraints participating in a root-level LP
    #: infeasibility certificate (``None`` if not applicable).
    infeasible_rows: list[int] | None = None
    nodes_explored: int = 0


Constraint = tuple[Mapping[str, int], str, int]
Bounds = Mapping[str, tuple[int | None, int | None]]


def solve_integer_feasibility(
    constraints: Sequence[Constraint],
    bounds: Bounds,
    integer_variables: set[str] | None = None,
    max_nodes: int = 4000,
) -> ILPResult:
    """Find an integer solution of ``constraints`` respecting ``bounds``.

    Parameters
    ----------
    constraints:
        Sequence of ``(coefficients, sense, rhs)`` triples with ``sense`` one
        of ``"<="``, ``">="``, ``"=="``.
    bounds:
        Mapping from variable name to ``(lower, upper)``; ``None`` means
        unbounded on that side.  Variables not mentioned default to ``(0, None)``.
    integer_variables:
        Variables required to be integral; defaults to *all* variables.
    """
    names: set[str] = set(bounds)
    for coefficients, _, _ in constraints:
        names.update(coefficients)
    # Deterministic variable order: the simplex pivoting path (and hence the
    # branch-and-bound trajectory) must not depend on hash randomization.
    variable_names = sorted(names)
    if integer_variables is None:
        integer_variables = set(variable_names)

    nodes_explored = 0
    root_core: list[int] | None = None

    # Each stack entry is a dict of additional bounds tightened by branching.
    stack: list[dict[str, tuple[int | None, int | None]]] = [dict()]

    while stack:
        if nodes_explored >= max_nodes:
            return ILPResult(status=ILPStatus.UNKNOWN, nodes_explored=nodes_explored)
        extra_bounds = stack.pop()
        nodes_explored += 1

        program = LinearProgram()
        for name in variable_names:
            lower, upper = bounds.get(name, (0, None))
            extra_lower, extra_upper = extra_bounds.get(name, (None, None))
            lower = _tighter_lower(lower, extra_lower)
            upper = _tighter_upper(upper, extra_upper)
            if lower is not None and upper is not None and lower > upper:
                break
            program.add_variable(name, lower=lower, upper=upper)
        else:
            for coefficients, sense, rhs in constraints:
                program.add_constraint(coefficients, sense, rhs)
            solution = program.solve()
            if solution.status is LPStatus.INFEASIBLE:
                if nodes_explored == 1:
                    root_core = solution.infeasible_rows
                continue
            if solution.status is LPStatus.UNBOUNDED:  # pragma: no cover - zero objective
                raise RuntimeError("feasibility LP cannot be unbounded")
            fractional = _first_fractional(solution.values, integer_variables)
            if fractional is None:
                values = {
                    name: int(value)
                    for name, value in solution.values.items()
                    if name in integer_variables
                }
                for name, value in solution.values.items():
                    values.setdefault(name, int(value) if value.denominator == 1 else int(floor(value)))
                return ILPResult(
                    status=ILPStatus.FEASIBLE, values=values, nodes_explored=nodes_explored
                )
            name, value = fractional
            down = dict(extra_bounds)
            down[name] = _merge_branch(down.get(name), upper=floor(value))
            up = dict(extra_bounds)
            up[name] = _merge_branch(up.get(name), lower=ceil(value))
            stack.append(up)
            stack.append(down)
            continue
        # Bound conflict (inner loop broke): infeasible node, nothing to do.

    return ILPResult(
        status=ILPStatus.INFEASIBLE, infeasible_rows=root_core, nodes_explored=nodes_explored
    )


def _tighter_lower(first: int | None, second: int | None) -> int | None:
    if first is None:
        return second
    if second is None:
        return first
    return max(first, second)


def _tighter_upper(first: int | None, second: int | None) -> int | None:
    if first is None:
        return second
    if second is None:
        return first
    return min(first, second)


def _merge_branch(
    existing: tuple[int | None, int | None] | None,
    lower: int | None = None,
    upper: int | None = None,
) -> tuple[int | None, int | None]:
    current_lower, current_upper = existing if existing is not None else (None, None)
    return (_tighter_lower(current_lower, lower), _tighter_upper(current_upper, upper))


def _first_fractional(
    values: dict[str, Fraction], integer_variables: set[str]
) -> tuple[str, Fraction] | None:
    for name in sorted(integer_variables):
        value = values.get(name, Fraction(0))
        if value.denominator != 1:
            return name, value
    return None
