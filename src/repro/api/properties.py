"""Pluggable property checkers and the property registry.

Each verifiable property — ``"layered_termination"``, ``"strong_consensus"``,
``"ws3"``, ``"correctness"``, ``"explicit"`` — is a :class:`PropertyChecker`
registered by name.  ``Verifier.check(protocol, properties=[...])`` resolves
names through the registry, so new properties (new paper sections, new
backends) plug in with :func:`register_property` instead of growing another
top-level entry point.

The built-in checkers wrap the battle-tested decision procedures of
:mod:`repro.verification` (the same implementations the deprecated
``verify_ws3``/``check_*`` shims call, so old and new API verdicts are
identical by construction) and convert their results into the unified
:class:`~repro.api.report.PropertyResult` form.
"""

from __future__ import annotations

from repro.api.options import VerificationOptions
from repro.api.report import PropertyResult, Verdict
from repro.io.serialization import encode_multiset


class PropertyChecker:
    """Interface of a pluggable property.

    Subclasses set :attr:`name` and implement :meth:`check`.  ``engine`` is
    a running :class:`~repro.engine.scheduler.VerificationEngine` (or
    ``None`` for serial checks); ``predicate`` is only meaningful for
    properties that compare the protocol against a predicate and defaults
    to the protocol's documented ``metadata["predicate"]``.
    """

    name: str = "?"

    def check(
        self,
        protocol,
        options: VerificationOptions,
        *,
        engine=None,
        predicate=None,
        context=None,
    ) -> PropertyResult:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Conversions from the legacy result dataclasses
# ----------------------------------------------------------------------


def layered_termination_result(result) -> PropertyResult:
    """Convert a :class:`LayeredTerminationResult` to a :class:`PropertyResult`."""
    return PropertyResult(
        property="layered_termination",
        verdict=Verdict.HOLDS if result.holds else Verdict.FAILS,
        reason=result.reason,
        certificate=result.certificate,
        statistics=result.statistics,
    )


def strong_consensus_result(result) -> PropertyResult:
    """Convert a :class:`StrongConsensusResult` to a :class:`PropertyResult`."""
    return PropertyResult(
        property="strong_consensus",
        verdict=Verdict.HOLDS if result.holds else Verdict.FAILS,
        counterexample=result.counterexample,
        refinements=list(result.refinements),
        statistics=result.statistics,
    )


def correctness_result(result, predicate) -> PropertyResult:
    """Convert a :class:`CorrectnessResult` to a :class:`PropertyResult`."""
    return PropertyResult(
        property="correctness",
        verdict=Verdict.HOLDS if result.holds else Verdict.FAILS,
        counterexample=result.counterexample,
        refinements=list(result.refinements),
        details={"predicate": predicate.describe()},
        statistics=result.statistics,
    )


def ws3_result(result) -> PropertyResult:
    """Convert a :class:`WS3Result` to a composite :class:`PropertyResult`."""
    parts = [layered_termination_result(result.layered_termination)]
    if result.strong_consensus is None:
        parts.append(
            PropertyResult(
                property="strong_consensus",
                verdict=Verdict.SKIPPED,
                reason="skipped: layered termination was not established",
            )
        )
    else:
        parts.append(strong_consensus_result(result.strong_consensus))
    return PropertyResult(
        property="ws3",
        verdict=Verdict.HOLDS if result.is_ws3 else Verdict.FAILS,
        parts=parts,
        statistics=result.statistics,
    )


# ----------------------------------------------------------------------
# Built-in checkers
# ----------------------------------------------------------------------


class LayeredTerminationChecker(PropertyChecker):
    name = "layered_termination"

    def check(self, protocol, options, *, engine=None, predicate=None, context=None) -> PropertyResult:
        from repro.verification.layered_termination import check_layered_termination_impl

        result = check_layered_termination_impl(
            protocol,
            strategy=options.strategy,
            max_layers=options.max_layers,
            materialize_rankings=options.materialize_rankings,
            theory=options.theory,
            engine=engine,
            backend=options.backend,
            context=context,
            incremental=options.incremental,
        )
        return layered_termination_result(result)


class StrongConsensusChecker(PropertyChecker):
    name = "strong_consensus"

    def check(self, protocol, options, *, engine=None, predicate=None, context=None) -> PropertyResult:
        from repro.verification.strong_consensus import check_strong_consensus_impl

        result = check_strong_consensus_impl(
            protocol,
            theory=options.theory,
            strategy=options.consensus_strategy,
            max_refinements=options.max_refinements,
            max_pattern_pairs=options.max_pattern_pairs,
            engine=engine,
            backend=options.backend,
            context=context,
            incremental=options.incremental,
        )
        return strong_consensus_result(result)


class WS3Checker(PropertyChecker):
    name = "ws3"

    def check(self, protocol, options, *, engine=None, predicate=None, context=None) -> PropertyResult:
        from repro.verification.ws3 import verify_ws3_impl

        result = verify_ws3_impl(
            protocol,
            strategy=options.strategy,
            theory=options.theory,
            max_layers=options.max_layers,
            check_consensus_first=options.check_consensus_first,
            materialize_rankings=options.materialize_rankings,
            consensus_strategy=options.consensus_strategy,
            max_refinements=options.max_refinements,
            max_pattern_pairs=options.max_pattern_pairs,
            engine=engine,
            backend=options.backend,
            context=context,
            incremental=options.incremental,
        )
        return ws3_result(result)


class CorrectnessChecker(PropertyChecker):
    name = "correctness"

    def check(self, protocol, options, *, engine=None, predicate=None, context=None) -> PropertyResult:
        from repro.verification.correctness import check_correctness_impl

        if predicate is None:
            predicate = protocol.metadata.get("predicate")
        if predicate is None:
            return PropertyResult(
                property="correctness",
                verdict=Verdict.SKIPPED,
                reason="no predicate supplied and none documented in the protocol metadata",
            )
        result = check_correctness_impl(
            protocol,
            predicate,
            theory=options.theory,
            max_refinements=options.max_refinements,
            engine=engine,
            backend=options.backend,
            context=context,
            incremental=options.incremental,
        )
        return correctness_result(result, predicate)


class ExplicitChecker(PropertyChecker):
    """The explicit-state baseline: model-check every input up to a bound."""

    name = "explicit"

    def check(self, protocol, options, *, engine=None, predicate=None, context=None) -> PropertyResult:
        from repro.verification.explicit import verify_inputs_up_to

        sweep = verify_inputs_up_to(
            protocol,
            options.explicit_max_size,
            max_configurations=options.explicit_max_configurations,
        )
        failures = [result for result in sweep.results if not result.well_specified]
        reason = ""
        if failures:
            first = failures[0]
            reason = f"input {first.input_population.pretty()}: {first.reason}"
        return PropertyResult(
            property="explicit",
            verdict=Verdict.HOLDS if sweep.all_well_specified else Verdict.FAILS,
            reason=reason,
            details={
                "max_size": options.explicit_max_size,
                "inputs": [
                    {
                        "input": encode_multiset(result.input_population),
                        "well_specified": result.well_specified,
                        "output": result.output,
                        "num_configurations": result.num_configurations,
                        "reason": result.reason,
                    }
                    for result in sweep.results
                ],
            },
            statistics={
                "inputs": len(sweep.results),
                "total_configurations": sweep.total_configurations,
                "time": sweep.total_time,
            },
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, PropertyChecker] = {}


def register_property(checker: PropertyChecker, replace: bool = False) -> PropertyChecker:
    """Register a checker under its :attr:`~PropertyChecker.name`.

    Registering a name twice is an error unless ``replace=True`` — a guard
    against two plugins silently shadowing each other.  Returns the checker
    so it can be used as a decorator-style one-liner on instances.

    Registration is per-process: worker processes of the parallel engine
    import a fresh registry, so ``check_many`` runs batches that request a
    plugin property on the coordinator (protocols are still checked, just
    without across-protocol fan-out).
    """
    name = checker.name
    if not name or name == "?":
        raise ValueError(f"property checker {checker!r} must define a name")
    if not replace and name in _REGISTRY:
        raise ValueError(f"property {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = checker
    return checker


def unregister_property(name: str) -> None:
    """Remove a registered property (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def property_checker(name: str) -> PropertyChecker:
    """Look up a checker by name; unknown names raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown property {name!r}; available: {', '.join(available_properties())}"
        ) from None


def available_properties() -> tuple[str, ...]:
    """Sorted names of all registered properties."""
    return tuple(sorted(_REGISTRY))


for _checker in (
    LayeredTerminationChecker(),
    StrongConsensusChecker(),
    WS3Checker(),
    CorrectnessChecker(),
    ExplicitChecker(),
):
    register_property(_checker)
del _checker

#: Names registered at import time in every process.  Worker processes build
#: a fresh registry, so only these names are resolvable worker-side; the
#: batch layer keeps protocols with plugin properties on the coordinator's
#: serial path instead of fanning them out.
BUILTIN_PROPERTIES = frozenset(_REGISTRY)
