"""Compilation of Presburger predicates into WS³ protocols (Section 5).

The paper's expressiveness result is constructive: threshold and remainder
predicates have dedicated WS³ protocols, negation flips the output mapping,
and conjunction is an asynchronous product.  This module implements the
construction, yielding for every boolean combination of threshold/remainder
predicates a protocol that (a) belongs to WS³ and (b) computes the
predicate — both facts are checked in the test suite using the verification
engine itself.
"""

from __future__ import annotations

from repro.presburger.predicates import (
    AndPredicate,
    FalsePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    RemainderPredicate,
    ThresholdPredicate,
    TruePredicate,
)
from repro.protocols.library.combinators import (
    conjunction_protocol,
    disjunction_protocol,
    negation_protocol,
)
from repro.protocols.library.remainder import remainder_protocol
from repro.protocols.library.threshold import threshold_protocol
from repro.protocols.protocol import PopulationProtocol


def compile_predicate(predicate: Predicate, name: str | None = None) -> PopulationProtocol:
    """Compile a Presburger predicate into a population protocol in WS³.

    All leaves are first extended to the full variable set of the predicate
    (with zero coefficients) so that the product construction can be applied;
    the compiled protocol's input alphabet is the sorted list of variables.
    """
    variables = tuple(sorted(predicate.variables(), key=repr))
    if not variables:
        raise ValueError("cannot compile a predicate without variables")
    protocol = _compile(predicate, variables)
    if name is not None:
        protocol.name = name
    protocol.metadata.setdefault("predicate", predicate)
    protocol.metadata["compiled_from"] = predicate.describe()
    return protocol


def _extend(coefficients: dict, variables: tuple) -> dict:
    return {symbol: coefficients.get(symbol, 0) for symbol in variables}


def _compile(predicate: Predicate, variables: tuple) -> PopulationProtocol:
    if isinstance(predicate, ThresholdPredicate):
        return threshold_protocol(_extend(predicate.coefficients, variables), predicate.c)
    if isinstance(predicate, RemainderPredicate):
        return remainder_protocol(_extend(predicate.coefficients, variables), predicate.m, predicate.c)
    if isinstance(predicate, NotPredicate):
        return negation_protocol(_compile(predicate.operand, variables))
    if isinstance(predicate, AndPredicate):
        return conjunction_protocol(
            _compile(predicate.left, variables), _compile(predicate.right, variables)
        )
    if isinstance(predicate, OrPredicate):
        return disjunction_protocol(
            _compile(predicate.left, variables), _compile(predicate.right, variables)
        )
    if isinstance(predicate, (TruePredicate, FalsePredicate)):
        # A one-variable threshold that is constantly true (x1 >= 0 always
        # holds), negated for the constant false predicate.
        always = threshold_protocol({symbol: 0 for symbol in variables}, 1)
        if isinstance(predicate, TruePredicate):
            return always
        return negation_protocol(always)
    raise TypeError(f"cannot compile predicate of type {type(predicate).__name__}")
