"""JSON serialisation of protocols and verification artifacts.

The protocol format is deliberately simple and close to the input format of
the authors' Peregrine tool: a JSON object with the states, the non-silent
transitions, the input alphabet, the input mapping and the output mapping.
States may be arbitrary JSON-representable values; tuples (used by the
threshold protocol and by product constructions) are encoded as JSON arrays
and decoded back to tuples.

Beyond protocols, this module is the single home of the *artifact codecs*:
lossless JSON encodings of everything a verification run can produce —
multisets and transition flows, ordered partitions and layered-termination
certificates (with `Fraction`-valued ranking weights), StrongConsensus and
correctness counterexamples, and trap/siphon refinement steps.  The report
types of :mod:`repro.api.report`, the engine's subproblem envelopes and the
on-disk result cache all serialise through these functions, so an artifact
decoded from JSON compares equal to the object that was encoded.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition


def _encode_state(state: Any) -> Any:
    if isinstance(state, tuple):
        return {"__tuple__": [_encode_state(part) for part in state]}
    return state


def _decode_state(state: Any) -> Any:
    if isinstance(state, dict) and "__tuple__" in state:
        return tuple(_decode_state(part) for part in state["__tuple__"])
    return state


def _encode_multiset(multiset) -> list:
    return [_encode_state(element) for element in multiset.elements()]


def protocol_to_dict(protocol: PopulationProtocol) -> dict:
    """Serialise a protocol to a plain dictionary."""
    data = {
        "name": protocol.name,
        "states": [_encode_state(state) for state in sorted(protocol.states, key=repr)],
        "transitions": [
            {
                "name": transition.name,
                "pre": _encode_multiset(transition.pre),
                "post": _encode_multiset(transition.post),
            }
            for transition in protocol.transitions
        ],
        "input_alphabet": [_encode_state(symbol) for symbol in protocol.input_alphabet],
        "input_map": [
            {"symbol": _encode_state(symbol), "state": _encode_state(state)}
            for symbol, state in protocol.input_map.items()
        ],
        "output_map": [
            {"state": _encode_state(state), "output": output}
            for state, output in sorted(protocol.output_map.items(), key=lambda item: repr(item[0]))
        ],
    }
    if protocol.partition_hint is not None:
        data["partition_hint"] = [
            [
                {"pre": _encode_multiset(t.pre), "post": _encode_multiset(t.post)}
                for t in sorted(layer, key=repr)
            ]
            for layer in protocol.partition_hint.layers
        ]
    return data


def protocol_from_dict(data: dict) -> PopulationProtocol:
    """Reconstruct a protocol from :func:`protocol_to_dict` output."""
    transitions = [
        Transition.make(
            [_decode_state(state) for state in entry["pre"]],
            [_decode_state(state) for state in entry["post"]],
            name=entry.get("name"),
        )
        for entry in data["transitions"]
    ]
    partition_hint = None
    if "partition_hint" in data:
        layers = []
        for layer in data["partition_hint"]:
            layers.append(
                [
                    Transition.make(
                        [_decode_state(state) for state in entry["pre"]],
                        [_decode_state(state) for state in entry["post"]],
                    )
                    for entry in layer
                ]
            )
        partition_hint = OrderedPartition.of(*layers)
    return PopulationProtocol(
        states=[_decode_state(state) for state in data["states"]],
        transitions=transitions,
        input_alphabet=[_decode_state(symbol) for symbol in data["input_alphabet"]],
        input_map={
            _decode_state(entry["symbol"]): _decode_state(entry["state"]) for entry in data["input_map"]
        },
        output_map={_decode_state(entry["state"]): entry["output"] for entry in data["output_map"]},
        name=data.get("name", "protocol"),
        partition_hint=partition_hint,
    )


def protocol_to_json(protocol: PopulationProtocol, indent: int = 2) -> str:
    """Serialise a protocol to a JSON string."""
    return json.dumps(protocol_to_dict(protocol), indent=indent, sort_keys=True)


def protocol_from_json(text: str) -> PopulationProtocol:
    """Parse a protocol from a JSON string."""
    return protocol_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Artifact codecs: multisets, flows, partitions
# ----------------------------------------------------------------------


def encode_multiset(multiset: Multiset) -> list:
    """Encode a multiset as sorted ``[element, count]`` pairs."""
    return [[_encode_state(element), count] for element, count in multiset.items_sorted()]


def decode_multiset(payload) -> Multiset:
    return Multiset({_decode_state(element): count for element, count in payload})


def encode_transition(transition: Transition) -> list:
    """Encode a transition as a ``[pre, post]`` pair of encoded multisets."""
    return [encode_multiset(transition.pre), encode_multiset(transition.post)]


def decode_transition(payload) -> Transition:
    pre, post = payload
    return Transition(decode_multiset(pre), decode_multiset(post))


def encode_flow(flow: dict[Transition, int]) -> list:
    """Encode a transition flow as sorted ``[pre, post, count]`` triples."""
    entries = [
        [encode_multiset(t.pre), encode_multiset(t.post), count] for t, count in flow.items()
    ]
    entries.sort(key=repr)
    return entries


def decode_flow(payload) -> dict[Transition, int]:
    return {
        Transition(decode_multiset(pre), decode_multiset(post)): count
        for pre, post, count in payload
    }


def encode_partition(partition: OrderedPartition) -> list:
    """Encode an ordered partition as layers of ``[pre, post]`` transition pairs."""
    return [sorted((encode_transition(t) for t in layer), key=repr) for layer in partition]


def decode_partition(payload) -> OrderedPartition:
    layers = [[decode_transition(entry) for entry in layer] for layer in payload]
    return OrderedPartition.of(*layers)


# ----------------------------------------------------------------------
# Artifact codecs: certificates
# ----------------------------------------------------------------------


def encode_fraction(value) -> str:
    """Exact string form of a rational weight (``"3/4"``, ``"2"``)."""
    return str(Fraction(value))


def decode_fraction(text: str) -> Fraction:
    return Fraction(text)


def encode_ranking(ranking: dict | None) -> list | None:
    """Encode a ranking function as sorted ``[state, weight]`` pairs.

    Weights are serialised as exact fraction strings, so rational ranking
    functions (the usual output of the LP certificate search) survive the
    round trip without precision loss.
    """
    if ranking is None:
        return None
    return sorted(
        ([_encode_state(state), encode_fraction(weight)] for state, weight in ranking.items()),
        key=repr,
    )


def decode_ranking(payload) -> dict | None:
    if payload is None:
        return None
    return {_decode_state(state): decode_fraction(weight) for state, weight in payload}


def certificate_to_dict(certificate) -> dict:
    """Losslessly encode a :class:`LayeredTerminationCertificate`."""
    return {
        "type": "layered_termination",
        "strategy": certificate.strategy,
        "partition": encode_partition(certificate.partition),
        "layers": [
            {
                "layer_index": layer.layer_index,
                "transitions": sorted(
                    (encode_transition(t) for t in layer.transitions), key=repr
                ),
                "ranking": encode_ranking(layer.ranking),
            }
            for layer in certificate.layers
        ],
    }


def certificate_from_dict(data: dict):
    from repro.verification.results import LayerCertificate, LayeredTerminationCertificate

    if data.get("type") != "layered_termination":
        raise ValueError(f"unknown certificate type {data.get('type')!r}")
    layers = [
        LayerCertificate(
            layer_index=entry["layer_index"],
            transitions=frozenset(decode_transition(t) for t in entry["transitions"]),
            ranking=decode_ranking(entry.get("ranking")),
        )
        for entry in data["layers"]
    ]
    return LayeredTerminationCertificate(
        partition=decode_partition(data["partition"]),
        layers=layers,
        strategy=data.get("strategy", "unknown"),
    )


# ----------------------------------------------------------------------
# Artifact codecs: counterexamples and refinement steps
# ----------------------------------------------------------------------


def counterexample_to_dict(counterexample) -> dict:
    """Losslessly encode a StrongConsensus or correctness counterexample."""
    from repro.verification.results import (
        CorrectnessCounterexample,
        StrongConsensusCounterexample,
    )

    if isinstance(counterexample, StrongConsensusCounterexample):
        return {
            "type": "strong_consensus",
            "initial": encode_multiset(counterexample.initial),
            "terminal_true": encode_multiset(counterexample.terminal_true),
            "terminal_false": encode_multiset(counterexample.terminal_false),
            "flow_true": encode_flow(counterexample.flow_true),
            "flow_false": encode_flow(counterexample.flow_false),
        }
    if isinstance(counterexample, CorrectnessCounterexample):
        return {
            "type": "correctness",
            "input_population": encode_multiset(counterexample.input_population),
            "initial": encode_multiset(counterexample.initial),
            "terminal": encode_multiset(counterexample.terminal),
            "flow": encode_flow(counterexample.flow),
            "expected_output": counterexample.expected_output,
        }
    raise TypeError(f"cannot encode counterexample of type {type(counterexample).__name__}")


def counterexample_from_dict(data: dict):
    from repro.verification.results import (
        CorrectnessCounterexample,
        StrongConsensusCounterexample,
    )

    kind = data.get("type")
    if kind == "strong_consensus":
        return StrongConsensusCounterexample(
            initial=decode_multiset(data["initial"]),
            terminal_true=decode_multiset(data["terminal_true"]),
            terminal_false=decode_multiset(data["terminal_false"]),
            flow_true=decode_flow(data["flow_true"]),
            flow_false=decode_flow(data["flow_false"]),
        )
    if kind == "correctness":
        return CorrectnessCounterexample(
            input_population=decode_multiset(data["input_population"]),
            initial=decode_multiset(data["initial"]),
            terminal=decode_multiset(data["terminal"]),
            flow=decode_flow(data["flow"]),
            expected_output=data["expected_output"],
        )
    raise ValueError(f"unknown counterexample type {kind!r}")


def refinement_step_to_dict(step) -> dict:
    """Losslessly encode a trap/siphon :class:`RefinementStep`."""
    return {
        "kind": step.kind,
        "states": sorted((_encode_state(state) for state in step.states), key=repr),
        "iteration": step.iteration,
    }


def refinement_step_from_dict(data: dict):
    from repro.verification.results import RefinementStep

    return RefinementStep(
        kind=data["kind"],
        states=frozenset(_decode_state(state) for state in data["states"]),
        iteration=data["iteration"],
    )


def predicate_to_dict(predicate) -> dict:
    """Losslessly encode a Presburger predicate tree.

    The journal needs this: a submitted correctness job carries its
    predicate, and a recovered service must rebuild an *equivalent* one
    (same ``describe()``, same formulas) to re-run — or cache-key — the
    job exactly as the original submission would have.
    """
    from repro.presburger.predicates import (
        AndPredicate,
        FalsePredicate,
        NotPredicate,
        OrPredicate,
        RemainderPredicate,
        ThresholdPredicate,
        TruePredicate,
    )

    def coefficients(predicate) -> list:
        return sorted(
            ([_encode_state(symbol), value] for symbol, value in predicate.coefficients.items()),
            key=repr,
        )

    if isinstance(predicate, ThresholdPredicate):
        return {"kind": "threshold", "coefficients": coefficients(predicate), "c": predicate.c}
    if isinstance(predicate, RemainderPredicate):
        return {
            "kind": "remainder",
            "coefficients": coefficients(predicate),
            "m": predicate.m,
            "c": predicate.c,
        }
    if isinstance(predicate, NotPredicate):
        return {"kind": "not", "operand": predicate_to_dict(predicate.operand)}
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        return {
            "kind": "and" if isinstance(predicate, AndPredicate) else "or",
            "left": predicate_to_dict(predicate.left),
            "right": predicate_to_dict(predicate.right),
        }
    if isinstance(predicate, (TruePredicate, FalsePredicate)):
        return {
            "kind": "true" if isinstance(predicate, TruePredicate) else "false",
            "variables": sorted(
                (_encode_state(symbol) for symbol in predicate.variables()), key=repr
            ),
        }
    raise ValueError(f"unknown predicate type {type(predicate).__name__!r}")


def predicate_from_dict(data: dict):
    """Inverse of :func:`predicate_to_dict`."""
    from repro.presburger.predicates import (
        AndPredicate,
        FalsePredicate,
        NotPredicate,
        OrPredicate,
        RemainderPredicate,
        ThresholdPredicate,
        TruePredicate,
    )

    kind = data.get("kind")
    if kind == "threshold":
        return ThresholdPredicate(
            {_decode_state(symbol): value for symbol, value in data["coefficients"]},
            data["c"],
        )
    if kind == "remainder":
        return RemainderPredicate(
            {_decode_state(symbol): value for symbol, value in data["coefficients"]},
            data["m"],
            data["c"],
        )
    if kind == "not":
        return NotPredicate(predicate_from_dict(data["operand"]))
    if kind in ("and", "or"):
        variant = AndPredicate if kind == "and" else OrPredicate
        return variant(predicate_from_dict(data["left"]), predicate_from_dict(data["right"]))
    if kind in ("true", "false"):
        variant = TruePredicate if kind == "true" else FalsePredicate
        return variant(_decode_state(symbol) for symbol in data["variables"])
    raise ValueError(f"unknown predicate kind {kind!r}")
