"""Unit tests of the deterministic fault-injection harness."""

from __future__ import annotations

import json
import os

import pytest

from repro.testing import (
    ENV_VAR,
    Fault,
    FaultInjected,
    FaultPlan,
    active_plan,
    clear_plan,
    fire,
    install_plan,
)
from repro.testing.faults import apply_fault


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    clear_plan()


class TestFaultValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            Fault(site="worker.solve", action="explode")

    def test_site_required(self):
        with pytest.raises(ValueError, match="site"):
            Fault(site="", action="kill")

    def test_at_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            Fault(site="s", action="kill", at=0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            Fault(site="s", action="kill", probability=1.5)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault fields"):
            Fault.from_dict({"site": "s", "action": "kill", "when": 3})
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_dict({"faults": [], "sites": []})

    def test_round_trip(self):
        fault = Fault(site="backend.check", action="raise", at=2, match={"backend": "z3"})
        assert Fault.from_dict(fault.to_dict()) == fault
        plan = FaultPlan([fault], seed=11)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.seed == 11
        assert rebuilt.faults == [fault]


class TestOccurrenceSemantics:
    def test_at_fires_exactly_once(self):
        plan = FaultPlan([Fault(site="s", action="raise", at=2)])
        assert [plan.fire("s") is not None for _ in range(4)] == [False, True, False, False]

    def test_times_fires_first_k(self):
        plan = FaultPlan([Fault(site="s", action="raise", times=2)])
        assert [plan.fire("s") is not None for _ in range(4)] == [True, True, False, False]

    def test_match_filters_context(self):
        plan = FaultPlan([Fault(site="s", action="raise", match={"backend": "z3"})])
        assert plan.fire("s", backend="smtlite") is None
        assert plan.fire("s", backend="z3") is not None

    def test_non_matching_calls_do_not_consume_occurrences(self):
        plan = FaultPlan([Fault(site="s", action="raise", at=1, match={"key": "x"})])
        assert plan.fire("s", key="other") is None
        assert plan.fire("s", key="x") is not None

    def test_probability_is_deterministic_per_seed(self):
        fault = Fault(site="s", action="raise", probability=0.5)
        decisions_a = [fault.should_fire(n, seed=42) for n in range(1, 50)]
        decisions_b = [fault.should_fire(n, seed=42) for n in range(1, 50)]
        assert decisions_a == decisions_b
        assert True in decisions_a and False in decisions_a

    def test_state_dir_counters_are_shared(self, tmp_path):
        """Two plan instances (stand-ins for two processes) share counters."""
        spec = {"faults": [{"site": "s", "action": "raise", "at": 2}], "state_dir": str(tmp_path)}
        first = FaultPlan.from_dict(spec)
        second = FaultPlan.from_dict(spec)
        assert first.fire("s") is None  # occurrence 1
        assert second.fire("s") is not None  # occurrence 2, counted across instances
        assert first.fire("s") is None  # occurrence 3


class TestActivation:
    def test_no_plan_is_free(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        clear_plan()
        assert fire("anything") is None

    def test_install_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps({"faults": []}))
        installed = install_plan({"faults": [{"site": "s", "action": "raise", "times": 1}]})
        assert active_plan() is installed
        assert fire("s") is not None

    def test_env_plan_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"faults": [{"site": "s", "action": "raise", "times": 1}]})
        )
        clear_plan()
        assert fire("s") is not None

    def test_env_plan_from_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps({"faults": [{"site": "s", "action": "delay", "seconds": 0.0}]}),
            encoding="utf-8",
        )
        monkeypatch.setenv(ENV_VAR, str(path))
        clear_plan()
        plan = active_plan()
        assert plan is not None and plan.faults[0].action == "delay"


class TestApplyFault:
    def test_raise_action(self):
        with pytest.raises(FaultInjected, match="worker.solve"):
            apply_fault(Fault(site="worker.solve", action="raise"))

    def test_none_is_a_no_op(self):
        apply_fault(None)

    def test_kill_is_inert_in_the_coordinator(self):
        # The coordinator (this test process) must never be collateral
        # damage of a plan meant for worker processes.
        apply_fault(Fault(site="s", action="kill"))
        assert os.getpid() > 0  # still alive

    def test_delay_action_sleeps(self):
        apply_fault(Fault(site="s", action="delay", seconds=0.0))
