"""Tests for the theory solvers and the DPLL(T) solver."""

from __future__ import annotations

import pytest

from repro.smtlite.formula import BoolVar, Iff, Implies, Not, Or
from repro.smtlite.scipy_backend import ScipyTheorySolver
from repro.smtlite.solver import Model, Solver, SolverStatus
from repro.smtlite.terms import IntVar, LinearExpr
from repro.smtlite.theory import (
    ExactTheorySolver,
    TheoryConstraint,
    default_theory_solver,
    verify_model,
)

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")

BACKENDS = [ExactTheorySolver(), ScipyTheorySolver()]


def constraint(coefficients, constant):
    return TheoryConstraint.from_expr(coefficients, constant)


class TestTheorySolvers:
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda backend: backend.name)
    def test_satisfiable_conjunction(self, backend):
        constraints = [
            constraint({"x": 1, "y": 1}, -4),   # x + y <= 4
            constraint({"x": -1}, 2),           # x >= 2
        ]
        result = backend.check(constraints, {"x": (0, None), "y": (0, None)})
        assert result.satisfiable
        assert verify_model(constraints, {"x": (0, None), "y": (0, None)}, result.model)

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda backend: backend.name)
    def test_unsatisfiable_conjunction_has_core(self, backend):
        constraints = [
            constraint({"x": 1}, -2),    # x <= 2
            constraint({"x": -1}, 5),    # x >= 5
            constraint({"y": 1}, -100),  # y <= 100 (irrelevant)
        ]
        result = backend.check(constraints, {"x": (0, None), "y": (0, None)})
        assert not result.satisfiable
        assert result.core
        core_constraints = [constraints[index] for index in result.core]
        core_result = backend.check(core_constraints, {"x": (0, None), "y": (0, None)})
        assert not core_result.satisfiable

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda backend: backend.name)
    def test_integrality_matters(self, backend):
        # 2x = 3 is LP-feasible but has no integer solution.
        constraints = [
            constraint({"x": 2}, -3),
            constraint({"x": -2}, 3),
        ]
        result = backend.check(constraints, {"x": (0, None)})
        assert not result.satisfiable

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda backend: backend.name)
    def test_empty_constraint_set(self, backend):
        result = backend.check([], {"x": (0, None)})
        assert result.satisfiable

    def test_default_backend_selection(self):
        assert default_theory_solver("exact").name == "exact"
        assert default_theory_solver("auto").name in ("scipy", "exact")

    def test_verify_model_checks_bounds(self):
        constraints = [constraint({"x": 1}, -10)]
        assert verify_model(constraints, {"x": (0, 5)}, {"x": 3})
        assert not verify_model(constraints, {"x": (0, 5)}, {"x": 7})
        assert not verify_model(constraints, {"x": (4, None)}, {"x": 3})


@pytest.fixture(params=["exact", "scipy"])
def solver(request):
    return Solver(theory=request.param)


class TestDPLLT:
    def test_simple_sat(self, solver):
        solver.add(x + y <= 5, x >= 2, y >= 1)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        model = result.model
        assert model.value(x) >= 2
        assert model.value(y) >= 1
        assert model.value(x + y) <= 5

    def test_simple_unsat(self, solver):
        solver.add(x >= 5, x <= 2)
        assert solver.check().status is SolverStatus.UNSAT

    def test_disjunction_forces_theory_reasoning(self, solver):
        solver.add(Or(x >= 5, y >= 5))
        solver.add(x <= 3)
        solver.add(y <= 6)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(y) >= 5

    def test_unsat_disjunction(self, solver):
        solver.add(Or(x >= 5, y >= 5))
        solver.add(x <= 3, y <= 3)
        assert solver.check().status is SolverStatus.UNSAT

    def test_equalities_and_implications(self, solver):
        solver.add((x + y).eq(10))
        solver.add(Implies(x >= 6, y >= 6))
        result = solver.check()
        assert result.status is SolverStatus.SAT
        model = result.model
        assert model.value(x) + model.value(y) == 10
        assert not (model.value(x) >= 6) or model.value(y) >= 6

    def test_boolean_variables_mix(self, solver):
        flag = BoolVar("flag")
        solver.add(Iff(flag, x >= 3))
        solver.add(Or(Not(flag), y.eq(x)))
        solver.add(x >= 3)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.bool_value("flag") is True
        assert result.model.value(y) == result.model.value(x)

    def test_natural_number_default_domain(self, solver):
        solver.add(x <= -1)
        assert solver.check().status is SolverStatus.UNSAT

    def test_free_variable_declaration(self, solver):
        free = solver.int_var("free", lower=None)
        solver.add(free <= -5)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(free) <= -5

    def test_bounded_variable_declaration(self, solver):
        bounded = solver.int_var("bounded", lower=2, upper=4)
        solver.add(bounded >= 0)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert 2 <= result.model.value(bounded) <= 4

    def test_integrality_unsat(self, solver):
        solver.add((2 * x).eq(7))
        assert solver.check().status is SolverStatus.UNSAT

    def test_incremental_additions(self, solver):
        solver.add(x + y <= 10)
        assert solver.check().status is SolverStatus.SAT
        solver.add(x >= 8)
        assert solver.check().status is SolverStatus.SAT
        solver.add(y >= 8)
        assert solver.check().status is SolverStatus.UNSAT

    def test_trivially_false_formula(self, solver):
        solver.add(LinearExpr.constant_expr(1) <= 0)
        assert solver.check().status is SolverStatus.UNSAT

    def test_model_evaluates_expressions(self, solver):
        solver.add(x.eq(3), y.eq(4))
        model = solver.check().model
        assert model.value(2 * x + y) == 10
        assert model.value("x") == 3

    def test_nontrivial_combination(self, solver):
        # A small scheduling-style problem mixing disjunctions and equalities.
        a, b, c = IntVar("a"), IntVar("b"), IntVar("c")
        solver.add((a + b + c).eq(6))
        solver.add(Or(a >= 4, b >= 4, c >= 4))
        solver.add(a <= 3, Or(b <= 1, c <= 1))
        result = solver.check()
        assert result.status is SolverStatus.SAT
        model = result.model
        values = [model.value(a), model.value(b), model.value(c)]
        assert sum(values) == 6
        assert max(values[1], values[2]) >= 4
        assert values[0] <= 3
        assert min(values[1], values[2]) <= 1

    def test_statistics_populated(self, solver):
        solver.add(Or(x >= 5, y >= 5), x <= 3, y <= 6)
        result = solver.check()
        assert result.statistics["theory_checks"] >= 1


class TestModel:
    def test_missing_values_default_to_zero(self):
        model = Model({"x": 2}, {})
        assert model.value("y") == 0
        assert model.value(IntVar("x") + IntVar("y")) == 2
        assert model.bool_value("missing") is False
