"""Presburger predicates and their compilation to WS³ protocols (Section 5)."""

from repro.presburger.compiler import compile_predicate
from repro.presburger.predicates import (
    AndPredicate,
    FalsePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    RemainderPredicate,
    ThresholdPredicate,
    TruePredicate,
)

__all__ = [
    "Predicate",
    "ThresholdPredicate",
    "RemainderPredicate",
    "NotPredicate",
    "AndPredicate",
    "OrPredicate",
    "TruePredicate",
    "FalsePredicate",
    "compile_predicate",
]
