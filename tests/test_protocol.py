"""Tests for protocol syntax: transitions, protocols, ordered partitions."""

from __future__ import annotations

import pytest

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import (
    OrderedPartition,
    PopulationProtocol,
    ProtocolError,
    Transition,
)


class TestTransition:
    def test_make_and_repr(self):
        t = Transition.make(("A", "B"), ("a", "b"), name="tAB")
        assert t.pre == Multiset({"A": 1, "B": 1})
        assert t.post == Multiset({"a": 1, "b": 1})
        assert "tAB" in repr(t)

    def test_silent_detection(self):
        assert Transition.make(("A", "B"), ("B", "A")).is_silent
        assert not Transition.make(("A", "B"), ("A", "A")).is_silent

    def test_wrong_arity_rejected(self):
        with pytest.raises(ProtocolError):
            Transition.make(("A",), ("A", "B"))
        with pytest.raises(ProtocolError):
            Transition.make(("A", "B", "C"), ("A", "B"))

    def test_delta(self):
        t = Transition.make(("A", "b"), ("A", "a"))
        assert t.delta() == {"b": -1, "a": 1}

    def test_fire(self):
        t = Transition.make(("A", "B"), ("a", "b"))
        assert t.fire(Multiset({"A": 2, "B": 1})) == Multiset({"A": 1, "a": 1, "b": 1})

    def test_fire_requires_enabled(self):
        t = Transition.make(("A", "B"), ("a", "b"))
        with pytest.raises(ProtocolError):
            t.fire(Multiset({"A": 2}))

    def test_self_pair_transition(self):
        t = Transition.make(("x", "x"), ("x", "y"))
        assert t.enabled_at(Multiset({"x": 2}))
        assert not t.enabled_at(Multiset({"x": 1, "y": 5}))

    def test_equality_ignores_name(self):
        t1 = Transition.make(("A", "B"), ("a", "b"), name="one")
        t2 = Transition.make(("A", "B"), ("a", "b"), name="two")
        assert t1 == t2
        assert hash(t1) == hash(t2)


class TestProtocolConstruction:
    def test_basic_properties(self, majority_protocol):
        assert majority_protocol.num_states == 4
        assert majority_protocol.num_transitions == 4
        assert majority_protocol.initial_states() == frozenset({"A", "B"})
        assert majority_protocol.true_states() == frozenset({"B", "b"})
        assert majority_protocol.false_states() == frozenset({"A", "a"})

    def test_silent_transitions_dropped(self):
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "q"), ("q", "p")),
                Transition.make(("p", "p"), ("q", "q")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 0, "q": 1},
        )
        assert protocol.num_transitions == 1

    def test_duplicate_transitions_merged(self):
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("p", "p"), ("q", "q"), name="again"),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 0, "q": 1},
        )
        assert protocol.num_transitions == 1

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(ProtocolError):
            PopulationProtocol(
                states=["p"],
                transitions=[Transition.make(("p", "p"), ("p", "zzz"))],
                input_alphabet=["p"],
                input_map={"p": "p"},
                output_map={"p": 0},
            )

    def test_missing_output_rejected(self):
        with pytest.raises(ProtocolError):
            PopulationProtocol(
                states=["p", "q"],
                transitions=[],
                input_alphabet=["p"],
                input_map={"p": "p"},
                output_map={"p": 0},
            )

    def test_missing_input_map_rejected(self):
        with pytest.raises(ProtocolError):
            PopulationProtocol(
                states=["p"],
                transitions=[],
                input_alphabet=["p", "q"],
                input_map={"p": "p"},
                output_map={"p": 1},
            )

    def test_non_boolean_output_rejected(self):
        with pytest.raises(ProtocolError):
            PopulationProtocol(
                states=["p"],
                transitions=[],
                input_alphabet=["p"],
                input_map={"p": "p"},
                output_map={"p": 2},
            )

    def test_describe_mentions_transitions(self, majority_protocol):
        text = majority_protocol.describe()
        assert "states (4)" in text
        assert "non-silent transitions (4)" in text


class TestInitialConfigurations:
    def test_initial_configuration_from_dict(self, majority_protocol):
        config = majority_protocol.initial_configuration({"A": 2, "B": 3})
        assert config == Multiset({"A": 2, "B": 3})

    def test_initial_configuration_rejects_small_population(self, majority_protocol):
        with pytest.raises(ProtocolError):
            majority_protocol.initial_configuration({"A": 1})

    def test_initial_configuration_rejects_unknown_symbol(self, majority_protocol):
        with pytest.raises(ProtocolError):
            majority_protocol.initial_configuration({"zzz": 2})

    def test_is_initial(self, majority_protocol):
        assert majority_protocol.is_initial(Multiset({"A": 1, "B": 1}))
        assert not majority_protocol.is_initial(Multiset({"A": 1, "b": 1}))
        assert not majority_protocol.is_initial(Multiset({"A": 1}))

    def test_input_map_collapsing_symbols(self):
        protocol = PopulationProtocol(
            states=["s", "t"],
            transitions=[Transition.make(("s", "s"), ("s", "t"))],
            input_alphabet=["x", "y"],
            input_map={"x": "s", "y": "s"},
            output_map={"s": 0, "t": 1},
        )
        config = protocol.initial_configuration({"x": 1, "y": 2})
        assert config == Multiset({"s": 3})


class TestInducedAndNegated:
    def test_induced_protocol_restricts_transitions(self, majority_protocol):
        subset = [t for t in majority_protocol.transitions if t.name in {"tAB", "tAb"}]
        induced = majority_protocol.induced(subset)
        assert induced.num_transitions == 2
        assert induced.states == majority_protocol.states

    def test_negated_output(self, majority_protocol):
        negated = majority_protocol.with_negated_output()
        assert negated.true_states() == majority_protocol.false_states()
        assert negated.false_states() == majority_protocol.true_states()
        assert negated.num_transitions == majority_protocol.num_transitions


class TestOrderedPartition:
    def test_layers_and_lookup(self, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        partition = OrderedPartition.of(
            [by_name["tAB"], by_name["tAb"]],
            [by_name["tBa"], by_name["tba"]],
        )
        assert len(partition) == 2
        assert partition.covers(majority_protocol.transitions)
        assert partition.layer_of(by_name["tAB"]) == 1
        assert partition.layer_of(by_name["tba"]) == 2

    def test_empty_layer_rejected(self, majority_protocol):
        with pytest.raises(ProtocolError):
            OrderedPartition.of(majority_protocol.transitions, [])

    def test_overlapping_layers_rejected(self, majority_protocol):
        t = majority_protocol.transitions[0]
        with pytest.raises(ProtocolError):
            OrderedPartition.of([t], [t])

    def test_partition_hint_must_cover(self, majority_protocol):
        partial = OrderedPartition.of([majority_protocol.transitions[0]])
        with pytest.raises(ProtocolError):
            PopulationProtocol(
                states=majority_protocol.states,
                transitions=majority_protocol.transitions,
                input_alphabet=majority_protocol.input_alphabet,
                input_map=majority_protocol.input_map,
                output_map=majority_protocol.output_map,
                partition_hint=partial,
            )
