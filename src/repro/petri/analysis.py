"""Structural analysis of Petri nets: incidence matrices, invariants, state equation.

These are the classical linear-algebraic over-approximations of reachability
that the paper lifts to population protocols (flow equations, Section 4.1):

* the *state equation* ``M' = M + C·x`` is a necessary condition for
  reachability, where ``C`` is the incidence matrix;
* *place invariants* (rational left kernels of ``C``) yield quantities
  conserved by every firing — for protocol nets the all-ones vector is always
  an invariant because interactions preserve the number of agents.
"""

from __future__ import annotations

from fractions import Fraction

from repro.petri.net import Marking, PetriNet, PetriTransition


def incidence_matrix(net: PetriNet) -> tuple[list, list[str], list[list[int]]]:
    """The incidence matrix ``C[place][transition] = post - pre``.

    Returns ``(places, transition_names, matrix)`` with deterministic
    orderings (places sorted by ``repr``).
    """
    places = sorted(net.places, key=repr)
    names = [transition.name for transition in net.transitions]
    matrix = []
    for place in places:
        row = [transition.post[place] - transition.pre[place] for transition in net.transitions]
        matrix.append(row)
    return places, names, matrix


def state_equation_holds(
    net: PetriNet, source: Marking, target: Marking, firing_counts: dict[str, int]
) -> bool:
    """Check the state equation ``target = source + C·x`` for a firing-count vector."""
    counts = {transition.name: 0 for transition in net.transitions}
    counts.update(firing_counts)
    for place in net.places:
        total = source[place]
        for transition in net.transitions:
            total += counts[transition.name] * (transition.post[place] - transition.pre[place])
        if total != target[place]:
            return False
    return True


def _rational_left_kernel(matrix: list[list[int]]) -> list[list[Fraction]]:
    """A basis of the left kernel ``{y : y^T M = 0}`` over the rationals."""
    if not matrix:
        return []
    num_rows = len(matrix)
    num_columns = len(matrix[0]) if matrix[0] else 0
    # Solve M^T y = 0: build the transpose and run Gauss-Jordan elimination.
    transposed = [
        [Fraction(matrix[row][column]) for row in range(num_rows)] for column in range(num_columns)
    ]
    pivots: list[tuple[int, int]] = []
    current_row = 0
    for column in range(num_rows):
        pivot_row = None
        for row in range(current_row, len(transposed)):
            if transposed[row][column] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            continue
        transposed[current_row], transposed[pivot_row] = transposed[pivot_row], transposed[current_row]
        pivot_value = transposed[current_row][column]
        transposed[current_row] = [value / pivot_value for value in transposed[current_row]]
        for row in range(len(transposed)):
            if row != current_row and transposed[row][column] != 0:
                factor = transposed[row][column]
                transposed[row] = [
                    value - factor * pivot for value, pivot in zip(transposed[row], transposed[current_row])
                ]
        pivots.append((current_row, column))
        current_row += 1

    pivot_columns = {column for _, column in pivots}
    free_columns = [column for column in range(num_rows) if column not in pivot_columns]
    basis = []
    for free in free_columns:
        vector = [Fraction(0)] * num_rows
        vector[free] = Fraction(1)
        for row, column in pivots:
            vector[column] = -transposed[row][free]
        basis.append(vector)
    return basis


def place_invariants(net: PetriNet) -> list[dict]:
    """A basis of rational place invariants (vectors ``y`` with ``y^T C = 0``).

    Every invariant ``y`` satisfies ``y·M = y·M0`` for every marking ``M``
    reachable from ``M0``.
    """
    places, _, matrix = incidence_matrix(net)
    basis = _rational_left_kernel(matrix)
    return [
        {place: value for place, value in zip(places, vector) if value != 0}
        for vector in basis
    ]


def invariant_value(invariant: dict, marking: Marking) -> Fraction:
    """Evaluate an invariant (weight vector) on a marking."""
    return sum((Fraction(weight) * marking[place] for place, weight in invariant.items()), Fraction(0))


def agent_count_invariant(net: PetriNet) -> dict | None:
    """The all-ones invariant, if the net is conservative (protocol-like)."""
    if not net.is_conservative:
        return None
    return {place: Fraction(1) for place in net.places}


def transition_is_dead(net: PetriNet, transition: PetriTransition, marking: Marking) -> bool:
    """Trivial structural check: a transition is dead if some input place can never be marked.

    This is only the weakest static check (used in examples); exact deadness
    requires reachability analysis.
    """
    if transition.enabled_at(marking):
        return False
    producers = {
        place
        for candidate in net.transitions
        for place in candidate.post.support()
    }
    for place, needed in transition.pre.items():
        if marking[place] < needed and place not in producers:
            return True
    return False
