"""StrongConsensus (Definition 14, Section 4.2) via the CEGAR loop of Section 6.

A protocol satisfies *StrongConsensus* if no initial configuration can
*potentially* reach (Definition 12: flow equations + trap/siphon constraints)
two terminal configurations whose outputs disagree.  Following the paper's
implementation we do not eagerly enumerate traps and siphons (there can be
exponentially many); instead we run a counterexample-guided refinement loop:

1. assert the flow equations, the initial/terminal/True/False constraints of
   Appendix D.2 and the trap/siphon constraints collected so far;
2. if unsatisfiable, StrongConsensus holds;
3. otherwise take the model ``(C0, C1, C2, x1, x2)``, compute (greedily, in
   polynomial time) the maximal ``U_j``-trap unpopulated in ``C_j`` and the
   maximal ``U_j``-siphon unpopulated in ``C0`` for ``j = 1, 2``;
4. if one of them witnesses a violated trap/siphon condition, add the
   corresponding constraint and repeat; otherwise the model is a genuine
   counterexample and StrongConsensus fails.

Solving strategies
------------------

The paper hands the whole constraint system — whose only hard boolean
structure is the big conjunction-of-disjunctions ``Terminal(c)`` — to Z3.
Our from-scratch solver is far weaker than Z3 at pruning that boolean
structure, so the default strategy factors it out combinatorially:
``Terminal(c)`` only constrains the *support* of ``c`` (it must be an
independent set of the "interaction conflict graph", with agents of a state
that reacts with itself capped at one), so we enumerate the maximal
independent sets once and solve one small, almost purely conjunctive system
per pair of candidate supports.  For all protocol families from the paper
the number of maximal independent sets is linear in the number of states.
The paper's monolithic encoding is kept as an alternative strategy (used by
the ablation benchmark and for small protocols).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

import networkx as nx

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol, Transition
from repro.smtlite.formula import Formula, Implies, conjunction, disjunction
from repro.smtlite.solver import Model, Solver, SolverStatus
from repro.smtlite.terms import LinearExpr
from repro.verification.results import RefinementStep, StrongConsensusCounterexample
from repro.verification.traps_siphons import (
    maximal_siphon_with_support_outside,
    maximal_trap_with_support_outside,
)


@dataclass
class StrongConsensusResult:
    """Outcome of the StrongConsensus check."""

    holds: bool
    counterexample: StrongConsensusCounterexample | None = None
    refinements: list[RefinementStep] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


# ----------------------------------------------------------------------
# Terminal support patterns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TerminalPattern:
    """A candidate shape for a terminal configuration.

    ``allowed`` is a maximal independent set of the interaction conflict
    graph: only these states may be populated.  ``capped`` are the allowed
    states that react with themselves, so they can hold at most one agent.
    Every terminal configuration matches at least one pattern, and every
    configuration matching a pattern is terminal.
    """

    allowed: frozenset
    capped: frozenset

    def admits_output(self, protocol: PopulationProtocol, output: int) -> bool:
        return any(protocol.output_map[state] == output for state in self.allowed)


def terminal_support_patterns(protocol: PopulationProtocol) -> list[TerminalPattern]:
    """Enumerate the terminal support patterns of a protocol.

    The *conflict graph* has the protocol's states as vertices and an edge
    between two distinct states that appear together in the pre of some
    non-silent transition.  A configuration is terminal iff its support is an
    independent set of this graph and every state with a non-silent
    self-interaction holds at most one agent.  Patterns are the maximal
    independent sets (computed via maximal cliques of the complement graph).
    """
    graph = nx.Graph()
    graph.add_nodes_from(protocol.states)
    self_forbidden: set = set()
    for transition in protocol.transitions:
        support = sorted(transition.pre.support(), key=repr)
        if len(support) == 1:
            self_forbidden.add(support[0])
        else:
            graph.add_edge(support[0], support[1])
    complement = nx.complement(graph)
    patterns = []
    for clique in nx.find_cliques(complement):
        allowed = frozenset(clique)
        patterns.append(TerminalPattern(allowed=allowed, capped=frozenset(allowed & self_forbidden)))
    patterns.sort(key=lambda pattern: sorted(map(repr, pattern.allowed)))
    return patterns


# ----------------------------------------------------------------------
# Constraint builder (Appendix D.2)
# ----------------------------------------------------------------------


class _ConstraintBuilder:
    """Shared naming scheme and constraint templates from Appendix D.2."""

    def __init__(self, protocol: PopulationProtocol):
        self.protocol = protocol
        self.states = sorted(protocol.states, key=repr)
        self.state_index = {state: index for index, state in enumerate(self.states)}
        self.transitions = list(protocol.transitions)
        self.transition_index = {t: index for index, t in enumerate(self.transitions)}

    # -- variable families -------------------------------------------------

    def config_vars(self, prefix: str) -> dict:
        return {state: LinearExpr.variable(f"{prefix}_{self.state_index[state]}") for state in self.states}

    def flow_vars(self, prefix: str) -> dict[Transition, LinearExpr]:
        return {
            transition: LinearExpr.variable(f"{prefix}_{self.transition_index[transition]}")
            for transition in self.transitions
        }

    def derived_config(self, source: dict, flow: dict[Transition, LinearExpr]) -> dict:
        """The configuration reached from ``source`` via ``flow``, as expressions.

        Substituting the flow equations away (instead of introducing fresh
        variables per target state plus equality constraints) keeps the
        constraint systems handed to the theory solver small.
        """
        derived = {}
        for state in self.states:
            change = LinearExpr.sum_of(
                transition.delta_map[state] * flow[transition]
                for transition in self.transitions
                if state in transition.delta_map
            )
            derived[state] = source[state] + change
        return derived

    def non_negative(self, config: dict) -> Formula:
        """Every (derived) state count is non-negative."""
        return conjunction([config[state] >= 0 for state in self.states])

    # -- constraint templates ----------------------------------------------

    def initial(self, config: dict) -> Formula:
        """``Initial(c)``: population of size >= 2 located on initial states only."""
        initial_states = self.protocol.initial_states()
        on_initial = LinearExpr.sum_of(config[state] for state in self.states if state in initial_states)
        off_initial = [config[state] <= 0 for state in self.states if state not in initial_states]
        return conjunction([on_initial >= 2] + off_initial)

    def terminal(self, config: dict) -> Formula:
        """``Terminal(c)``: every non-silent transition is disabled (monolithic form)."""
        clauses = []
        for transition in self.transitions:
            options = [
                config[state] <= transition.pre[state] - 1
                for state in transition.pre.support()
            ]
            clauses.append(disjunction(options))
        return conjunction(clauses)

    def pattern(self, config: dict, pattern: TerminalPattern) -> Formula:
        """Terminal-ness restricted to one support pattern (conjunctive form)."""
        constraints = []
        for state in self.states:
            if state not in pattern.allowed:
                constraints.append(config[state] <= 0)
            elif state in pattern.capped:
                constraints.append(config[state] <= 1)
        return conjunction(constraints)

    def has_output(self, config: dict, output: int) -> Formula:
        """``True(c)`` / ``False(c)``: some populated state has the given output."""
        states = [state for state in self.states if self.protocol.output_map[state] == output]
        if not states:
            from repro.smtlite.formula import FALSE

            return FALSE
        return LinearExpr.sum_of(config[state] for state in states) >= 1

    def flow_equation(self, source: dict, target: dict, flow: dict[Transition, LinearExpr]) -> Formula:
        """``FlowEquation(c, c', x)`` for every state (monolithic form)."""
        constraints = []
        for state in self.states:
            change = LinearExpr.sum_of(
                transition.delta_map[state] * flow[transition]
                for transition in self.transitions
                if state in transition.delta_map
            )
            constraints.append(target[state].eq(source[state] + change))
        return conjunction(constraints)

    def trap_constraint(
        self,
        states: Iterable,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        target_support: Iterable | None = None,
    ) -> Formula:
        """``UTrap(R, c, c', x)``: if the flow uses •R and R is a trap of its support, R stays marked.

        ``target_support`` may restrict the states that can possibly be
        populated in the target configuration (e.g. the allowed set of a
        terminal support pattern); states outside it contribute nothing to
        the "stays marked" sum, which often turns the consequent into FALSE
        and the whole constraint into a two-literal clause.
        """
        states = set(states)
        into = [t for t in self.transitions if set(t.post.support()) & states]
        out_only = [
            t
            for t in self.transitions
            if set(t.pre.support()) & states and not (set(t.post.support()) & states)
        ]
        marked_states = states if target_support is None else states & set(target_support)
        uses_into = LinearExpr.sum_of(flow[t] for t in into) >= 1 if into else None
        no_escape = LinearExpr.sum_of(flow[t] for t in out_only) <= 0 if out_only else None
        if marked_states:
            marked: Formula = LinearExpr.sum_of(target[state] for state in marked_states) >= 1
        else:
            from repro.smtlite.formula import FALSE

            marked = FALSE
        if uses_into is None:
            return marked if no_escape is None else Implies(no_escape, marked)
        antecedent = uses_into if no_escape is None else conjunction([uses_into, no_escape])
        return Implies(antecedent, marked)

    def siphon_constraint(
        self,
        states: Iterable,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        source_support: Iterable | None = None,
    ) -> Formula:
        """``USiphon(S, c, c', x)``: if the flow uses S• and S is a siphon of its support, S was marked.

        ``source_support`` restricts the states that can be populated in the
        source configuration; by default it is the set of initial states
        (``Initial(c0)`` forces every other state of ``c0`` to zero).
        """
        states = set(states)
        out = [t for t in self.transitions if set(t.pre.support()) & states]
        in_only = [
            t
            for t in self.transitions
            if set(t.post.support()) & states and not (set(t.pre.support()) & states)
        ]
        if source_support is None:
            source_support = self.protocol.initial_states()
        marked_states = states & set(source_support)
        uses_out = LinearExpr.sum_of(flow[t] for t in out) >= 1 if out else None
        no_refill = LinearExpr.sum_of(flow[t] for t in in_only) <= 0 if in_only else None
        if marked_states:
            marked: Formula = LinearExpr.sum_of(source[state] for state in marked_states) >= 1
        else:
            from repro.smtlite.formula import FALSE

            marked = FALSE
        if uses_out is None:
            return marked if no_refill is None else Implies(no_refill, marked)
        antecedent = uses_out if no_refill is None else conjunction([uses_out, no_refill])
        return Implies(antecedent, marked)

    def refinement_constraint(
        self,
        step: RefinementStep,
        source: dict,
        target: dict,
        flow: dict[Transition, LinearExpr],
        target_support: Iterable | None = None,
    ) -> Formula:
        if step.kind == "trap":
            return self.trap_constraint(step.states, source, target, flow, target_support=target_support)
        return self.siphon_constraint(step.states, source, target, flow)

    # -- model extraction ----------------------------------------------------

    def configuration_from_model(self, model: Model, config: dict) -> Configuration:
        return Multiset(
            {state: model.value(config[state]) for state in self.states if model.value(config[state]) > 0}
        )

    def flow_from_model(self, model: Model, flow: dict[Transition, LinearExpr]) -> dict[Transition, int]:
        return {
            transition: model.value(expression)
            for transition, expression in flow.items()
            if model.value(expression) > 0
        }


# ----------------------------------------------------------------------
# Trap/siphon refinement
# ----------------------------------------------------------------------


def find_refinement(
    protocol: PopulationProtocol,
    source: Configuration,
    target: Configuration,
    flow: dict[Transition, int],
) -> RefinementStep | None:
    """Find a trap/siphon constraint of Definition 12 violated by a model.

    Because traps (siphons) are closed under union it suffices to inspect the
    maximal trap unpopulated in the target (the maximal siphon unpopulated in
    the source).
    """
    support = [t for t, occurrences in flow.items() if occurrences > 0]
    if not support:
        return None
    empty_target = {state for state in protocol.states if target[state] == 0}
    trap = maximal_trap_with_support_outside(protocol, support, empty_target)
    if trap:
        feeds_trap = any(set(t.post.support()) & trap for t in support)
        if feeds_trap:
            return RefinementStep(kind="trap", states=frozenset(trap), iteration=-1)
    empty_source = {state for state in protocol.states if source[state] == 0}
    siphon = maximal_siphon_with_support_outside(protocol, support, empty_source)
    if siphon:
        drains_siphon = any(set(t.pre.support()) & siphon for t in support)
        if drains_siphon:
            return RefinementStep(kind="siphon", states=frozenset(siphon), iteration=-1)
    return None


# ----------------------------------------------------------------------
# Main entry point
# ----------------------------------------------------------------------


def check_strong_consensus_impl(
    protocol: PopulationProtocol,
    theory: str = "auto",
    strategy: str = "auto",
    max_refinements: int = 10_000,
    max_pattern_pairs: int = 250_000,
    jobs: int = 1,
    engine=None,
) -> StrongConsensusResult:
    """Decide StrongConsensus with the trap/siphon refinement loop of Section 6.

    ``strategy`` is one of ``"auto"``, ``"patterns"`` (enumerate terminal
    support patterns, the default for anything non-trivial) or
    ``"monolithic"`` (the paper's single constraint system with the
    ``Terminal`` disjunctions left to the solver).

    With ``jobs > 1`` (or a parallel ``engine``, a
    :class:`repro.engine.scheduler.VerificationEngine`), the independent
    pattern pairs of the ``"patterns"`` strategy are fanned out over worker
    processes; ``jobs=1`` runs the single-process persistent-solver path
    unchanged.  Verdicts and counterexamples are identical either way.
    """
    start = time.perf_counter()
    if strategy not in ("auto", "patterns", "monolithic"):
        raise ValueError(f"unknown StrongConsensus strategy {strategy!r}")
    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    owned_engine = False
    if engine is None and jobs > 1:
        from repro.engine.scheduler import VerificationEngine

        engine = VerificationEngine(jobs=jobs)
        owned_engine = True
    chosen = strategy
    patterns: list[TerminalPattern] | None = None
    if strategy in ("auto", "patterns"):
        patterns = terminal_support_patterns(protocol)
        true_patterns = [p for p in patterns if p.admits_output(protocol, 1)]
        false_patterns = [p for p in patterns if p.admits_output(protocol, 0)]
        num_pairs = len(true_patterns) * len(false_patterns)
        if strategy == "auto":
            chosen = "patterns" if num_pairs <= max_pattern_pairs else "monolithic"
        else:
            chosen = "patterns"

    try:
        if chosen == "patterns":
            if engine is not None and engine.parallel:
                result = _check_with_patterns_engine(
                    protocol, true_patterns, false_patterns, theory, max_refinements, engine
                )
            else:
                result = _check_with_patterns(
                    protocol, true_patterns, false_patterns, theory, max_refinements
                )
        else:
            result = _check_monolithic(protocol, theory, max_refinements)
    finally:
        if owned_engine:
            engine.shutdown()
    result.statistics["strategy"] = chosen
    result.statistics["time"] = time.perf_counter() - start
    if patterns is not None:
        result.statistics["patterns"] = len(patterns)
    return result


def check_strong_consensus(
    protocol: PopulationProtocol,
    theory: str = "auto",
    strategy: str = "auto",
    max_refinements: int = 10_000,
    max_pattern_pairs: int = 250_000,
    jobs: int = 1,
    engine=None,
) -> StrongConsensusResult:
    """Deprecated: use :class:`repro.api.Verifier` instead.

    ``Verifier().check(protocol, properties=["strong_consensus"])`` returns
    the same verdict and counterexample in report form; this shim delegates
    to the same implementation, so verdicts are identical.
    """
    import warnings

    warnings.warn(
        "check_strong_consensus() is deprecated; use repro.api.Verifier"
        " (Verifier().check(protocol, properties=['strong_consensus']))",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_strong_consensus_impl(
        protocol,
        theory=theory,
        strategy=strategy,
        max_refinements=max_refinements,
        max_pattern_pairs=max_pattern_pairs,
        jobs=jobs,
        engine=engine,
    )


# ----------------------------------------------------------------------
# Strategy 1: terminal-support-pattern enumeration
# ----------------------------------------------------------------------


def _consensus_variables(builder: _ConstraintBuilder) -> tuple:
    """The shared variable families ``(c0, c1, c2, x1, x2)`` of Appendix D.2."""
    c0 = builder.config_vars("c0")
    x1 = builder.flow_vars("x1")
    x2 = builder.flow_vars("x2")
    c1 = builder.derived_config(c0, x1)
    c2 = builder.derived_config(c0, x2)
    return c0, c1, c2, x1, x2


def _assert_consensus_base(builder: _ConstraintBuilder, solver: Solver, variables: tuple) -> None:
    """Assert the pair-independent constraints (initial population, non-negativity)."""
    c0, c1, c2, _x1, _x2 = variables
    solver.add(builder.initial(c0))
    solver.add(builder.non_negative(c1))
    solver.add(builder.non_negative(c2))


def _check_with_patterns(
    protocol: PopulationProtocol,
    true_patterns: list[TerminalPattern],
    false_patterns: list[TerminalPattern],
    theory: str,
    max_refinements: int,
) -> StrongConsensusResult:
    builder = _ConstraintBuilder(protocol)
    refinements: list[RefinementStep] = []
    statistics = {"iterations": 0, "traps": 0, "siphons": 0, "pattern_pairs": 0, "solver_instances": 1}

    # One persistent solver for all pattern pairs.  The pair-independent
    # constraints (initial configuration, flow non-negativity) are asserted
    # once; the per-pair constraints live in a push/pop scope.  Learned
    # lemmas — blocking clauses and memoized theory checks over the shared
    # atoms — survive across pairs, so later pairs start warm.
    solver = Solver(theory=theory)
    variables = _consensus_variables(builder)
    c0, c1, c2, x1, x2 = variables
    _assert_consensus_base(builder, solver, variables)

    def side_feasible(flow_config, pattern, output) -> bool:
        """Cheap theory-only pre-check of one side of a pattern pair.

        The conjunction (initial population, derived non-negativity, support
        pattern, output presence) is a subset of the pair's full constraint
        system, so infeasibility here soundly rules out every pair using this
        side.  The same false-pattern side recurs across pairs, so the
        underlying theory query is answered from the solver's memo cache
        after the first time.
        """
        result = solver.check_conjunction(
            [
                builder.initial(c0),
                builder.non_negative(flow_config),
                builder.pattern(flow_config, pattern),
                builder.has_output(flow_config, output),
            ]
        )
        return result.status is not SolverStatus.UNSAT

    for pattern_true in true_patterns:
        true_side_ok = side_feasible(c1, pattern_true, 1)
        for pattern_false in false_patterns:
            statistics["pattern_pairs"] += 1
            if not true_side_ok or not side_feasible(c2, pattern_false, 0):
                statistics["pruned_pairs"] = statistics.get("pruned_pairs", 0) + 1
                continue
            solver.push()
            try:
                outcome = _solve_pattern_pair(
                    protocol,
                    builder,
                    solver,
                    (c0, c1, c2, x1, x2),
                    pattern_true,
                    pattern_false,
                    max_refinements,
                    refinements,
                    statistics,
                )
            finally:
                solver.pop()
            if outcome is not None:
                statistics["solver"] = dict(solver.statistics)
                return StrongConsensusResult(
                    holds=False,
                    counterexample=outcome,
                    refinements=refinements,
                    statistics=statistics,
                )
    statistics["solver"] = dict(solver.statistics)
    return StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)


def _solve_pattern_pair(
    protocol: PopulationProtocol,
    builder: _ConstraintBuilder,
    solver: Solver,
    variables: tuple,
    pattern_true: TerminalPattern,
    pattern_false: TerminalPattern,
    max_refinements: int,
    refinements: list[RefinementStep],
    statistics: dict,
) -> StrongConsensusCounterexample | None:
    """Run the refinement loop for one pattern pair inside an open scope."""
    c0, c1, c2, x1, x2 = variables
    solver.add(builder.pattern(c1, pattern_true))
    solver.add(builder.pattern(c2, pattern_false))
    solver.add(builder.has_output(c1, 1))
    solver.add(builder.has_output(c2, 0))
    # Re-assert the trap/siphon constraints discovered while solving earlier
    # pairs: they are valid refinements of Definition 12 for any pair and
    # often cut the counterexample space immediately.
    for step in refinements:
        solver.add(builder.refinement_constraint(step, c0, c1, x1, target_support=pattern_true.allowed))
        solver.add(builder.refinement_constraint(step, c0, c2, x2, target_support=pattern_false.allowed))

    for _ in range(max_refinements):
        statistics["iterations"] += 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            return None
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the StrongConsensus query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal_true = builder.configuration_from_model(model, c1)
        terminal_false = builder.configuration_from_model(model, c2)
        flow_true = builder.flow_from_model(model, x1)
        flow_false = builder.flow_from_model(model, x2)

        step = find_refinement(protocol, initial, terminal_true, flow_true)
        if step is None:
            step = find_refinement(protocol, initial, terminal_false, flow_false)
        if step is None:
            return StrongConsensusCounterexample(
                initial=initial,
                terminal_true=terminal_true,
                terminal_false=terminal_false,
                flow_true=flow_true,
                flow_false=flow_false,
            )
        step = RefinementStep(kind=step.kind, states=step.states, iteration=statistics["iterations"])
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        solver.add(builder.refinement_constraint(step, c0, c1, x1, target_support=pattern_true.allowed))
        solver.add(builder.refinement_constraint(step, c0, c2, x2, target_support=pattern_false.allowed))
    raise RuntimeError(
        f"StrongConsensus refinement did not converge within {max_refinements} iterations"
    )


# ----------------------------------------------------------------------
# Pattern pairs as engine subproblems
# ----------------------------------------------------------------------


@dataclass
class PairOutcome:
    """Worker-side outcome of one pattern-pair subproblem.

    ``verdict`` is ``"unsat"`` (the pair admits no counterexample),
    ``"sat"`` (a genuine counterexample exists) or ``"pruned"`` (one side of
    the pair is infeasible on its own, so the pair was never solved).
    ``new_refinements`` are the trap/siphon steps discovered beyond the
    seeded ones — the coordinator merges them and seeds later waves.
    """

    verdict: str
    new_refinements: list[RefinementStep]
    statistics: dict
    counterexample: StrongConsensusCounterexample | None = None


#: Per-process memo of side-feasibility answers, keyed by protocol content
#: hash.  The same (pattern, output) side recurs across the pairs a worker
#: solves; feasibility is a mathematical property of the side alone, so the
#: cached answer is exactly what a fresh solver would compute.  Bounded
#: (FIFO) so a long-lived worker pool cannot grow without limit.
_SIDE_FEASIBILITY_CACHE: dict[tuple, bool] = {}
_MAX_SIDE_FEASIBILITY_CACHE = 4096


def _side_is_feasible(
    builder: _ConstraintBuilder,
    solver: Solver,
    c0: dict,
    flow_config: dict,
    pattern: TerminalPattern,
    output: int,
    cache_key: tuple | None,
) -> bool:
    if cache_key is not None:
        cached = _SIDE_FEASIBILITY_CACHE.get(cache_key)
        if cached is not None:
            return cached
    result = solver.check_conjunction(
        [
            builder.initial(c0),
            builder.non_negative(flow_config),
            builder.pattern(flow_config, pattern),
            builder.has_output(flow_config, output),
        ]
    )
    feasible = result.status is not SolverStatus.UNSAT
    if cache_key is not None:
        if len(_SIDE_FEASIBILITY_CACHE) >= _MAX_SIDE_FEASIBILITY_CACHE:
            _SIDE_FEASIBILITY_CACHE.pop(next(iter(_SIDE_FEASIBILITY_CACHE)))
        _SIDE_FEASIBILITY_CACHE[cache_key] = feasible
    return feasible


def solve_pattern_pair_subproblem(
    protocol: PopulationProtocol,
    pattern_true: TerminalPattern,
    pattern_false: TerminalPattern,
    seed_refinements: Iterable[RefinementStep],
    theory: str = "auto",
    max_refinements: int = 10_000,
    protocol_key: str | None = None,
) -> PairOutcome:
    """Solve one pattern pair in isolation (the worker-process entry point).

    A fresh solver is built per pair, so the outcome — verdict, discovered
    refinements, counterexample model — depends only on the arguments, never
    on which other subproblems the hosting process solved before.  That is
    what makes parallel runs reproducible: the coordinator's wave plan fixes
    every seed, so scheduling timing cannot leak into the results.
    """
    builder = _ConstraintBuilder(protocol)
    solver = Solver(theory=theory)
    variables = _consensus_variables(builder)
    c0, c1, c2, _x1, _x2 = variables
    statistics = {"iterations": 0, "traps": 0, "siphons": 0}

    true_key = (protocol_key, theory, "true", pattern_true) if protocol_key else None
    false_key = (protocol_key, theory, "false", pattern_false) if protocol_key else None
    if not _side_is_feasible(builder, solver, c0, c1, pattern_true, 1, true_key) or not (
        _side_is_feasible(builder, solver, c0, c2, pattern_false, 0, false_key)
    ):
        return PairOutcome(verdict="pruned", new_refinements=[], statistics=statistics)

    _assert_consensus_base(builder, solver, variables)
    refinements = list(seed_refinements)
    seeded = len(refinements)
    counterexample = _solve_pattern_pair(
        protocol,
        builder,
        solver,
        variables,
        pattern_true,
        pattern_false,
        max_refinements,
        refinements,
        statistics,
    )
    statistics["solver"] = dict(solver.statistics)
    new_refinements = refinements[seeded:]
    if counterexample is not None:
        return PairOutcome(
            verdict="sat",
            new_refinements=new_refinements,
            statistics=statistics,
            counterexample=counterexample,
        )
    return PairOutcome(verdict="unsat", new_refinements=new_refinements, statistics=statistics)


def consensus_pair_subproblems(
    protocol: PopulationProtocol,
    pairs: list[tuple[TerminalPattern, TerminalPattern]],
    seed_refinements: list[RefinementStep],
    theory: str,
    max_refinements: int,
    first_index: int,
    protocol_data: dict,
    protocol_key: str,
) -> list:
    """Package a slice of the pattern-pair enumeration as engine subproblems."""
    from repro.engine.subproblem import Subproblem

    return [
        Subproblem(
            kind="consensus-pair",
            index=first_index + offset,
            protocol_key=protocol_key,
            protocol_data=protocol_data,
            params={
                "pattern_true": pattern_true,
                "pattern_false": pattern_false,
                "refinements": tuple(seed_refinements),
                "theory": theory,
                "max_refinements": max_refinements,
            },
        )
        for offset, (pattern_true, pattern_false) in enumerate(pairs)
    ]


def _check_with_patterns_engine(
    protocol: PopulationProtocol,
    true_patterns: list[TerminalPattern],
    false_patterns: list[TerminalPattern],
    theory: str,
    max_refinements: int,
    engine,
) -> StrongConsensusResult:
    """Fan the pattern pairs over the engine's worker pool, wave by wave.

    Each wave dispatches ``jobs`` pairs seeded with every trap/siphon
    refinement merged so far (cross-worker sharing through the
    coordinator); new discoveries are merged back in deterministic pair
    order, so the wave plan — and hence the result — is independent of
    worker timing.  The first SAT pair stops dispatch and cancels queued
    siblings; the counterexample itself is then re-derived by the serial
    path, which both pins the reported model to the ``jobs=1`` one and
    keeps falsification answers canonical across worker counts.  (The
    serial re-run stops at its own first SAT pair, so it re-solves only the
    pair prefix up to the counterexample — cheap, since falsified protocols
    fail on an early pair.)
    """
    from repro.engine.cache import protocol_content_hash
    from repro.engine.scheduler import run_refinement_sweep
    from repro.io.serialization import protocol_to_dict

    pairs = [(t, f) for t in true_patterns for f in false_patterns]
    protocol_data = protocol_to_dict(protocol)
    protocol_key = protocol_content_hash(protocol)
    statistics = {
        "iterations": 0,
        "traps": 0,
        "siphons": 0,
        "pattern_pairs": 0,
        "jobs": engine.jobs,
        "waves": 0,
        "solver_instances": 0,
    }
    sat_seen, refinements = run_refinement_sweep(
        engine,
        len(pairs),
        lambda start, end, seed: consensus_pair_subproblems(
            protocol,
            pairs[start:end],
            seed,
            theory,
            max_refinements,
            start,
            protocol_data,
            protocol_key,
        ),
        statistics,
    )

    if sat_seen:
        serial = _check_with_patterns(
            protocol, true_patterns, false_patterns, theory, max_refinements
        )
        serial.statistics["parallel"] = {
            "jobs": engine.jobs,
            "waves": statistics["waves"],
            "fallback": "serial-rerun",
        }
        return serial
    return StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)


# ----------------------------------------------------------------------
# Strategy 2: the paper's monolithic encoding
# ----------------------------------------------------------------------


def _check_monolithic(
    protocol: PopulationProtocol,
    theory: str,
    max_refinements: int,
) -> StrongConsensusResult:
    builder = _ConstraintBuilder(protocol)
    solver = Solver(theory=theory)

    c0 = builder.config_vars("c0")
    x1 = builder.flow_vars("x1")
    x2 = builder.flow_vars("x2")
    # The flow equations are substituted away: c1 and c2 are expressions over
    # c0 and the flow vectors rather than fresh variables.
    c1 = builder.derived_config(c0, x1)
    c2 = builder.derived_config(c0, x2)

    solver.add(builder.initial(c0))
    solver.add(builder.non_negative(c1))
    solver.add(builder.non_negative(c2))
    solver.add(builder.terminal(c1))
    solver.add(builder.terminal(c2))
    solver.add(builder.has_output(c1, 1))
    solver.add(builder.has_output(c2, 0))

    refinements: list[RefinementStep] = []
    statistics = {"iterations": 0, "traps": 0, "siphons": 0}

    for iteration in range(max_refinements):
        statistics["iterations"] = iteration + 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            statistics["solver"] = dict(solver.statistics)
            return StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the StrongConsensus query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal_true = builder.configuration_from_model(model, c1)
        terminal_false = builder.configuration_from_model(model, c2)
        flow_true = builder.flow_from_model(model, x1)
        flow_false = builder.flow_from_model(model, x2)

        step = find_refinement(protocol, initial, terminal_true, flow_true)
        if step is None:
            step = find_refinement(protocol, initial, terminal_false, flow_false)
        if step is None:
            counterexample = StrongConsensusCounterexample(
                initial=initial,
                terminal_true=terminal_true,
                terminal_false=terminal_false,
                flow_true=flow_true,
                flow_false=flow_false,
            )
            statistics["solver"] = dict(solver.statistics)
            return StrongConsensusResult(
                holds=False,
                counterexample=counterexample,
                refinements=refinements,
                statistics=statistics,
            )

        step = RefinementStep(kind=step.kind, states=step.states, iteration=iteration)
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        solver.add(builder.refinement_constraint(step, c0, c1, x1))
        solver.add(builder.refinement_constraint(step, c0, c2, x2))

    raise RuntimeError(
        f"StrongConsensus refinement did not converge within {max_refinements} iterations"
    )
