"""Protocol combinators: negation, conjunction and disjunction (Section 5).

The paper proves that WS³ is closed under negation (flip the output mapping)
and conjunction (an asynchronous product where each factor steps
independently, Definition 27 / Appendix C.3).  Together with the threshold
and remainder protocols this shows WS³ computes every Presburger predicate.

The product construction also lifts the factors' LayeredTermination
partitions (Proposition 33), so compiled protocols keep fast-to-check
certificates.

Implementation note: transitions are stored as (pre, post) *multisets*, so
the lift fixes an arbitrary but consistent pairing between the two agents of
a factor transition.  A different pairing only swaps the passive components
of the two interacting agents, which leaves both projections (and therefore
all the properties proved in Appendix C.3 — WS³ membership and the computed
predicate) unchanged.
"""

from __future__ import annotations

from repro.protocols.protocol import (
    OrderedPartition,
    PopulationProtocol,
    ProtocolError,
    Transition,
)


def negation_protocol(protocol: PopulationProtocol, name: str | None = None) -> PopulationProtocol:
    """The protocol computing the negated predicate (outputs flipped)."""
    negated = protocol.with_negated_output(name=name)
    predicate = protocol.metadata.get("predicate")
    if predicate is not None:
        negated.metadata = {**protocol.metadata, "predicate": ~predicate}
    return negated


def _lift_first(transition: Transition, context: tuple) -> Transition:
    """Lift a transition of the first factor over a pair of second-factor states."""
    (p, p_prime), (q, q_prime) = _ordered_pairs(transition)
    r, r_prime = context
    return Transition.make(((p, r), (p_prime, r_prime)), ((q, r), (q_prime, r_prime)))


def _lift_second(transition: Transition, context: tuple) -> Transition:
    """Lift a transition of the second factor over a pair of first-factor states."""
    (p, p_prime), (q, q_prime) = _ordered_pairs(transition)
    r, r_prime = context
    return Transition.make(((r, p), (r_prime, p_prime)), ((r, q), (r_prime, q_prime)))


def _ordered_pairs(transition: Transition) -> tuple[tuple, tuple]:
    """Fix an (arbitrary but consistent) ordering of the pre and post pairs."""
    pre = list(transition.pre.elements())
    post = list(transition.post.elements())
    return (pre[0], pre[1]), (post[0], post[1])


def conjunction_protocol(
    first: PopulationProtocol,
    second: PopulationProtocol,
    name: str | None = None,
    combine_outputs=lambda a, b: a and b,
    combinator_name: str = "and",
) -> PopulationProtocol:
    """The asynchronous product of two protocols (Definition 27).

    Both protocols must share the same input alphabet.  The product's output
    of a pair state is ``combine_outputs`` of the factors' outputs, which
    defaults to conjunction.
    """
    if set(first.input_alphabet) != set(second.input_alphabet):
        raise ProtocolError(
            "the conjunction construction requires identical input alphabets; "
            "extend the predicates with zero coefficients first"
        )

    states = [(p, q) for p in first.states for q in second.states]
    transitions: list[Transition] = []
    second_states = sorted(second.states, key=repr)
    first_states = sorted(first.states, key=repr)
    for transition in first.transitions:
        for r in second_states:
            for r_prime in second_states:
                transitions.append(_lift_first(transition, (r, r_prime)))
    for transition in second.transitions:
        for r in first_states:
            for r_prime in first_states:
                transitions.append(_lift_second(transition, (r, r_prime)))

    input_map = {
        symbol: (first.input_map[symbol], second.input_map[symbol]) for symbol in first.input_alphabet
    }
    output_map = {
        (p, q): int(combine_outputs(bool(first.output_map[p]), bool(second.output_map[q])))
        for (p, q) in states
    }

    product = PopulationProtocol(
        states=states,
        transitions=transitions,
        input_alphabet=first.input_alphabet,
        input_map=input_map,
        output_map=output_map,
        name=name or f"{combinator_name}({first.name}, {second.name})",
        metadata={"construction": combinator_name, "factors": (first.name, second.name)},
    )

    first_predicate = first.metadata.get("predicate")
    second_predicate = second.metadata.get("predicate")
    if first_predicate is not None and second_predicate is not None:
        if combinator_name == "and":
            product.metadata["predicate"] = first_predicate & second_predicate
        elif combinator_name == "or":
            product.metadata["predicate"] = first_predicate | second_predicate

    hint = _lift_partitions(first, second, product)
    if hint is not None and hint.covers(product.transitions):
        product.partition_hint = hint
    return product


def disjunction_protocol(
    first: PopulationProtocol, second: PopulationProtocol, name: str | None = None
) -> PopulationProtocol:
    """The asynchronous product computing the disjunction of the factors."""
    return conjunction_protocol(
        first,
        second,
        name=name,
        combine_outputs=lambda a, b: a or b,
        combinator_name="or",
    )


def _lift_partitions(
    first: PopulationProtocol, second: PopulationProtocol, product: PopulationProtocol
) -> OrderedPartition | None:
    """Lift the factors' partition hints to the product (Proposition 33)."""
    if first.partition_hint is None or second.partition_hint is None:
        return None
    first_layers = list(first.partition_hint.layers)
    second_layers = list(second.partition_hint.layers)
    depth = max(len(first_layers), len(second_layers))
    second_states = sorted(second.states, key=repr)
    first_states = sorted(first.states, key=repr)
    product_transitions = set(product.transitions)

    layers = []
    for index in range(depth):
        layer: set[Transition] = set()
        if index < len(first_layers):
            for transition in first_layers[index]:
                for r in second_states:
                    for r_prime in second_states:
                        lifted = _lift_first(transition, (r, r_prime))
                        if lifted in product_transitions:
                            layer.add(lifted)
        if index < len(second_layers):
            for transition in second_layers[index]:
                for r in first_states:
                    for r_prime in first_states:
                        lifted = _lift_second(transition, (r, r_prime))
                        if lifted in product_transitions:
                            layer.add(lifted)
        if layer:
            layers.append(frozenset(layer))
    if not layers:
        return None
    return OrderedPartition(tuple(layers))
