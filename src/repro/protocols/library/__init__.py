"""A library of population protocols from the literature.

These are the protocol families used in the paper's experimental evaluation
(Table 1) plus the combinators of Section 5 and a few deliberately broken
protocols used for negative testing and diagnosis examples.
"""

from repro.protocols.library.broadcast import broadcast_protocol
from repro.protocols.library.combinators import (
    conjunction_protocol,
    disjunction_protocol,
    negation_protocol,
)
from repro.protocols.library.faulty import (
    coin_flip_protocol,
    exclusive_majority_protocol,
    oscillating_majority_protocol,
)
from repro.protocols.library.flock_of_birds import (
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
)
from repro.protocols.library.majority import majority_protocol
from repro.protocols.library.remainder import remainder_protocol
from repro.protocols.library.threshold import threshold_protocol, threshold_table_protocol

#: Registry of the parametrised protocol families of Table 1, keyed by the
#: name used in the paper.  Each entry maps a primary-parameter value to a
#: freshly built protocol.
PROTOCOL_FAMILIES = {
    "majority": lambda _=None: majority_protocol(),
    "broadcast": lambda _=None: broadcast_protocol(),
    "threshold": threshold_table_protocol,
    "remainder": lambda m: remainder_protocol([value for value in range(m)], m, 1),
    "flock-of-birds": flock_of_birds_protocol,
    "flock-of-birds-threshold-n": flock_of_birds_threshold_n_protocol,
}

__all__ = [
    "majority_protocol",
    "broadcast_protocol",
    "flock_of_birds_protocol",
    "flock_of_birds_threshold_n_protocol",
    "threshold_protocol",
    "threshold_table_protocol",
    "remainder_protocol",
    "negation_protocol",
    "conjunction_protocol",
    "disjunction_protocol",
    "coin_flip_protocol",
    "oscillating_majority_protocol",
    "exclusive_majority_protocol",
    "PROTOCOL_FAMILIES",
]
