"""Picklable subproblem envelopes exchanged between coordinator and workers.

A :class:`Subproblem` is a self-contained description of one independent
piece of a verification run: which check to perform (``kind``), the protocol
it concerns, and the kind-specific parameters (a terminal-pattern pair and
the trap/siphon refinements to seed the CEGAR loop with, a partition-search
strategy, ...).  Everything in the envelope is picklable, so a subproblem
can cross a process boundary; the protocol travels as the serialisation
dictionary of :mod:`repro.io.serialization` together with its content hash,
which lets worker processes cache the decoded protocol across subproblems.

Small objects with stable equality semantics (patterns, refinement steps)
travel as plain pickled values; the portable encodings below (multisets,
counterexamples, layered partitions) are JSON-compatible structures used
where payloads also land on disk — the result cache stores counterexamples
through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.multiset import Multiset
from repro.io.serialization import _decode_state, _encode_state
from repro.protocols.protocol import Transition
from repro.verification.results import StrongConsensusCounterexample

#: Subproblem kinds understood by :func:`repro.engine.worker.solve_subproblem`.
KINDS = (
    "consensus-pair",
    "correctness-pattern",
    "termination-strategy",
    "verify-ws3",
    "poison",
)


@dataclass(frozen=True)
class Subproblem:
    """One independent unit of verification work.

    ``index`` is the subproblem's position in the deterministic enumeration
    order of its producer; the coordinator uses it to merge results (and
    pick winners) independently of completion timing.
    """

    kind: str
    index: int
    protocol_key: str
    protocol_data: dict
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown subproblem kind {self.kind!r}")

    @property
    def label(self) -> str:
        return f"{self.kind}[{self.index}]"


@dataclass
class SubproblemResult:
    """What a worker sends back: a verdict plus kind-specific payload.

    ``verdict`` is kind-dependent ("unsat"/"sat" for CEGAR subproblems,
    "holds"/"fails" for strategy and whole-protocol subproblems); ``data``
    carries portable payloads (new refinements, encoded partitions, result
    summaries) and ``statistics`` the worker-side counters.
    """

    kind: str
    index: int
    verdict: str
    data: dict = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Portable encodings
# ----------------------------------------------------------------------


def encode_multiset(multiset: Multiset) -> list:
    """Encode a multiset as sorted ``[element, count]`` pairs."""
    return [[_encode_state(element), count] for element, count in multiset.items_sorted()]


def decode_multiset(payload) -> Multiset:
    return Multiset({_decode_state(element): count for element, count in payload})


def encode_flow(flow: dict[Transition, int]) -> list:
    entries = [
        [encode_multiset(t.pre), encode_multiset(t.post), count] for t, count in flow.items()
    ]
    entries.sort(key=repr)
    return entries


def decode_flow(payload) -> dict[Transition, int]:
    return {
        Transition(decode_multiset(pre), decode_multiset(post)): count
        for pre, post, count in payload
    }


def encode_consensus_counterexample(ce: StrongConsensusCounterexample) -> dict:
    return {
        "initial": encode_multiset(ce.initial),
        "terminal_true": encode_multiset(ce.terminal_true),
        "terminal_false": encode_multiset(ce.terminal_false),
        "flow_true": encode_flow(ce.flow_true),
        "flow_false": encode_flow(ce.flow_false),
    }


def decode_consensus_counterexample(payload: dict) -> StrongConsensusCounterexample:
    return StrongConsensusCounterexample(
        initial=decode_multiset(payload["initial"]),
        terminal_true=decode_multiset(payload["terminal_true"]),
        terminal_false=decode_multiset(payload["terminal_false"]),
        flow_true=decode_flow(payload["flow_true"]),
        flow_false=decode_flow(payload["flow_false"]),
    )


def encode_partition(partition) -> list:
    """Encode an ordered partition as layers of ``(pre, post)`` transition pairs."""
    return [
        sorted(
            ([encode_multiset(t.pre), encode_multiset(t.post)] for t in layer),
            key=repr,
        )
        for layer in partition
    ]


def decode_partition(payload):
    from repro.protocols.protocol import OrderedPartition

    layers = [
        [Transition(decode_multiset(pre), decode_multiset(post)) for pre, post in layer]
        for layer in payload
    ]
    return OrderedPartition.of(*layers)

