"""Tests for the LayeredTermination checker and its partition-search strategies."""

from __future__ import annotations

import pytest

from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition
from repro.verification.layered_termination import (
    check_layered_termination,
    check_partition,
    enabling_graph,
    find_ranking_function,
    layer_is_dead_for,
    layer_is_silent,
    scc_heuristic_partition,
    single_layer_partition,
    smt_partition_search,
)


@pytest.fixture
def majority_by_name(majority_protocol):
    return {t.name: t for t in majority_protocol.transitions}


def paper_partition(by_name):
    """The ordered partition from Example 5 of the paper."""
    return OrderedPartition.of(
        [by_name["tAB"], by_name["tAb"]],
        [by_name["tBa"], by_name["tba"]],
    )


class TestLayerSilence:
    def test_majority_full_set_is_not_silent(self, majority_protocol):
        assert not layer_is_silent(majority_protocol, majority_protocol.transitions)

    def test_majority_paper_layers_are_silent(self, majority_protocol, majority_by_name):
        assert layer_is_silent(majority_protocol, [majority_by_name["tAB"], majority_by_name["tAb"]])
        assert layer_is_silent(majority_protocol, [majority_by_name["tBa"], majority_by_name["tba"]])

    def test_empty_layer_is_silent(self, majority_protocol):
        assert layer_is_silent(majority_protocol, [])

    def test_broadcast_single_layer_is_silent(self, broadcast_protocol):
        assert layer_is_silent(broadcast_protocol, broadcast_protocol.transitions)

    def test_two_transition_cycle_is_not_silent(self):
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("q", "q"), ("p", "p")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1, "q": 1},
        )
        assert not layer_is_silent(protocol, protocol.transitions)
        assert layer_is_silent(protocol, protocol.transitions[:1])

    def test_ranking_function_certificate(self, majority_protocol, majority_by_name):
        layer = [majority_by_name["tAB"], majority_by_name["tAb"]]
        ranking = find_ranking_function(majority_protocol, layer)
        assert ranking is not None
        for transition in layer:
            drop = sum(
                ranking.get(state, 0) * (transition.post[state] - transition.pre[state])
                for state in transition.states()
            )
            assert drop < 0

    def test_no_ranking_function_for_cyclic_layer(self, majority_protocol):
        assert find_ranking_function(majority_protocol, majority_protocol.transitions) is None


class TestDeadness:
    def test_paper_partition_second_layer_is_dead_for_first(self, majority_protocol, majority_by_name):
        dead, witness = layer_is_dead_for(
            majority_protocol,
            [majority_by_name["tBa"], majority_by_name["tba"]],
            [majority_by_name["tAB"], majority_by_name["tAb"]],
        )
        assert dead and witness is None

    def test_reversed_partition_is_not_dead(self, majority_protocol, majority_by_name):
        dead, witness = layer_is_dead_for(
            majority_protocol,
            [majority_by_name["tAB"], majority_by_name["tAb"]],
            [majority_by_name["tBa"], majority_by_name["tba"]],
        )
        assert not dead
        assert witness is not None

    def test_empty_earlier_set_is_trivially_dead(self, majority_protocol):
        dead, _ = layer_is_dead_for(majority_protocol, majority_protocol.transitions, [])
        assert dead


class TestCheckPartition:
    def test_paper_partition_is_accepted(self, majority_protocol, majority_by_name):
        result = check_partition(majority_protocol, paper_partition(majority_by_name))
        assert result.holds
        assert result.certificate.num_layers == 2

    def test_partition_with_rankings(self, majority_protocol, majority_by_name):
        result = check_partition(
            majority_protocol, paper_partition(majority_by_name), materialize_rankings=True
        )
        assert result.holds
        assert all(layer.ranking is not None for layer in result.certificate.layers)

    def test_single_layer_partition_rejected_for_majority(self, majority_protocol):
        partition = OrderedPartition.of(majority_protocol.transitions)
        result = check_partition(majority_protocol, partition)
        assert not result.holds
        assert "condition (a)" in result.reason

    def test_reversed_partition_rejected(self, majority_protocol, majority_by_name):
        partition = OrderedPartition.of(
            [majority_by_name["tBa"], majority_by_name["tba"]],
            [majority_by_name["tAB"], majority_by_name["tAb"]],
        )
        result = check_partition(majority_protocol, partition)
        assert not result.holds
        assert "condition (b)" in result.reason

    def test_partition_must_cover_transitions(self, majority_protocol, majority_by_name):
        partition = OrderedPartition.of([majority_by_name["tAB"]])
        result = check_partition(majority_protocol, partition)
        assert not result.holds
        assert "cover" in result.reason


class TestSearchStrategies:
    def test_single_layer_strategy_for_broadcast(self, broadcast_protocol):
        partition = single_layer_partition(broadcast_protocol)
        assert partition is not None
        assert check_partition(broadcast_protocol, partition).holds

    def test_single_layer_strategy_fails_for_majority(self, majority_protocol):
        assert single_layer_partition(majority_protocol) is None

    def test_enabling_graph_edges(self, majority_protocol, majority_by_name):
        edges = enabling_graph(majority_protocol)
        # tAB produces a and b, which (together with a remaining A or B) can
        # newly enable tAb and tBa.
        assert majority_by_name["tAb"] in edges[majority_by_name["tAB"]]
        assert majority_by_name["tBa"] in edges[majority_by_name["tAB"]]

    def test_scc_heuristic_on_broadcast(self, broadcast_protocol):
        partition = scc_heuristic_partition(broadcast_protocol)
        assert partition is not None
        assert check_partition(broadcast_protocol, partition).holds

    def test_smt_search_finds_two_layers_for_majority(self, majority_protocol):
        partition = smt_partition_search(majority_protocol, max_layers=2)
        assert partition is not None
        result = check_partition(majority_protocol, partition)
        assert result.holds

    def test_smt_search_respects_layer_bound(self, majority_protocol):
        assert smt_partition_search(majority_protocol, max_layers=1) is None


class TestTopLevel:
    def test_auto_strategy_majority(self, majority_protocol):
        result = check_layered_termination(majority_protocol)
        assert result.holds
        assert result.statistics["strategy"] in ("scc", "smt")

    def test_auto_strategy_broadcast(self, broadcast_protocol):
        result = check_layered_termination(broadcast_protocol)
        assert result.holds
        assert result.certificate.num_layers <= 1

    def test_hint_strategy(self, majority_protocol, majority_by_name):
        protocol = PopulationProtocol(
            states=majority_protocol.states,
            transitions=majority_protocol.transitions,
            input_alphabet=majority_protocol.input_alphabet,
            input_map=majority_protocol.input_map,
            output_map=majority_protocol.output_map,
            name="majority(with hint)",
            partition_hint=paper_partition(majority_by_name),
        )
        result = check_layered_termination(protocol, strategy="hint")
        assert result.holds
        assert result.statistics["strategy"] == "hint"

    def test_non_layered_protocol_rejected(self):
        # Two agents bouncing between p and q forever: not silent, so no
        # ordered partition can exist.
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("q", "q"), ("p", "p")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1, "q": 1},
        )
        result = check_layered_termination(protocol)
        assert not result.holds

    def test_protocol_without_transitions(self):
        protocol = PopulationProtocol(
            states=["p"],
            transitions=[],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1},
        )
        result = check_layered_termination(protocol)
        assert result.holds
        assert result.certificate.num_layers == 0
