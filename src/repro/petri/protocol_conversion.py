"""Conversions between population protocols and Petri nets.

Two directions are provided:

* :func:`petri_net_from_protocol` — the straightforward embedding: every
  protocol transition becomes a conservative net transition, every state a
  place, every configuration a marking.  This makes the Petri-net analysis
  toolbox (invariants, traps, siphons, reachability graphs) available for
  protocols.

* :func:`protocol_from_reachability_instance` — the reduction behind
  Proposition 3: from a Petri-net single-place-zero-reachability instance it
  builds a population protocol that is in WS² iff the instance is negative.
  Together with Hack's reduction from reachability this shows that deciding
  membership in WS² is as hard as Petri-net reachability, which is the
  paper's motivation for introducing the cheaper class WS³.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.multiset import Multiset
from repro.petri.net import Marking, PetriNet, PetriNetError, PetriTransition
from repro.petri.normal_form import NormalFormResult, to_normal_form
from repro.protocols.protocol import PopulationProtocol, Transition

FRESH = "Fresh"
USED = "Used"
COLLECT = "Collect"


def petri_net_from_protocol(protocol: PopulationProtocol) -> PetriNet:
    """The conservative Petri net underlying a population protocol."""
    transitions = []
    for index, transition in enumerate(protocol.transitions):
        name = transition.name or f"t{index}"
        transitions.append(PetriTransition(name, transition.pre, transition.post))
    return PetriNet(protocol.states, transitions, name=f"net({protocol.name})")


def marking_from_configuration(configuration: Multiset) -> Marking:
    """Configurations are markings already; provided for symmetry/readability."""
    return configuration


@dataclass
class ReductionResult:
    """Outcome of the Proposition 3 reduction."""

    protocol: PopulationProtocol
    normal_form: NormalFormResult
    reversed_net: PetriNet
    target_place: object
    source_place: object = "__p0__"

    def initial_configuration_for(self, marking: Marking, fresh_agents: int) -> Multiset:
        """The protocol configuration encoding a marking of the reversed net."""
        counts = {place: count for place, count in marking.items()}
        if fresh_agents > 0:
            counts[FRESH] = fresh_agents
        return Multiset(counts)


def protocol_from_reachability_instance(
    net: PetriNet,
    initial_marking: Marking,
    target_place,
) -> ReductionResult:
    """Proposition 3: reduce single-place-zero-reachability to WS² membership.

    Given a net ``N0``, an initial marking ``M0`` and a place ``p̂``, the
    construction (following Appendix A):

    1. normalises the net (lock widgets), obtaining ``N1``;
    2. adds a fresh place ``p0`` and a widget for a transition consuming
       ``p0`` and producing ``M0`` plus the lock, obtaining ``N2``;
    3. reverses all arcs, obtaining ``N3``;
    4. turns ``N3`` into a population protocol with auxiliary states
       ``Fresh``, ``Used`` and ``Collect`` whose fair executions fail to
       reach a consensus exactly when some marking ``M`` with
       ``M(p̂) = M(p0) = M(P_aux) = 0`` can reach ``p0`` in ``N3``.

    The resulting protocol is in WS² (and, being silent, a candidate for
    WS³) iff the original zero-reachability instance is negative.
    """
    if target_place not in net.places:
        raise PetriNetError(f"unknown target place {target_place!r}")
    if not net.is_marking(initial_marking):
        raise PetriNetError("the initial marking uses unknown places")

    # Step 1: normal form.
    normal = to_normal_form(net)

    # Step 2: add p0 and a widget producing M0 + lock from p0.
    source_place = "__p0__"
    places = set(normal.net.places) | {source_place}
    transitions = list(normal.net.transitions)
    bootstrap = PetriTransition.make(
        "bootstrap",
        {source_place: 1},
        initial_marking + Multiset({normal.lock_place: 1}),
    )
    with_source = PetriNet(places, transitions + [bootstrap], name=f"{net.name}(+p0)")
    normalised_again = to_normal_form(with_source)

    # Step 3: reverse the net.
    reversed_net = normalised_again.net.reversed()

    # Step 4: build the population protocol.
    auxiliary_places = set(normal.auxiliary_places) | set(normalised_again.auxiliary_places) | {
        normalised_again.lock_place
    }
    auxiliary_places.discard(source_place)
    states = set(reversed_net.places) | {FRESH, USED, COLLECT}

    protocol_transitions: list[Transition] = []
    for transition in reversed_net.transitions:
        pre_tokens = list(transition.pre.elements())
        post_tokens = list(transition.post.elements())
        if len(pre_tokens) == 2 and len(post_tokens) == 2:
            pre, post = pre_tokens, post_tokens
        elif len(pre_tokens) == 1 and len(post_tokens) == 2:
            pre, post = pre_tokens + [FRESH], post_tokens
        elif len(pre_tokens) == 2 and len(post_tokens) == 1:
            pre, post = pre_tokens, post_tokens + [USED]
        elif len(pre_tokens) == 1 and len(post_tokens) == 1:
            pre, post = pre_tokens + [FRESH], post_tokens + [USED]
        else:  # pragma: no cover - excluded by the normal form
            raise PetriNetError(f"transition {transition.name} is not in normal form")
        protocol_transitions.append(Transition.make(pre, post, name=f"sim_{transition.name}"))

    # The Collect transitions: any token anywhere (except a single token on
    # p0) can start collecting, and Collect absorbs everything.
    for place in reversed_net.places:
        if place == source_place:
            continue
        for other in states:
            protocol_transitions.append(
                Transition.make((place, other), (COLLECT, COLLECT), name=f"collect_{place}_{other}")
            )
    protocol_transitions.append(
        Transition.make((source_place, source_place), (COLLECT, COLLECT), name="collect_two_p0")
    )
    for state in states:
        protocol_transitions.append(
            Transition.make((state, COLLECT), (COLLECT, COLLECT), name=f"absorb_{state}")
        )

    input_states = states - ({target_place, source_place} | auxiliary_places)
    protocol = PopulationProtocol(
        states=states,
        transitions=protocol_transitions,
        input_alphabet=sorted(input_states, key=repr),
        input_map={state: state for state in input_states},
        output_map={state: 1 if state == source_place else 0 for state in states},
        name=f"ws2-hardness({net.name})",
        metadata={
            "construction": "Proposition 3 reduction",
            "target_place": target_place,
            "source_place": source_place,
        },
    )
    return ReductionResult(
        protocol=protocol,
        normal_form=normal,
        reversed_net=reversed_net,
        target_place=target_place,
        source_place=source_place,
    )
