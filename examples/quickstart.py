"""Quickstart: define a protocol, prove it well-specified, and run it.

This example follows the paper's running example (Example 1): the majority
protocol of Angluin et al.  We

1. build the protocol from scratch with the public API,
2. prove that it belongs to WS³ — and is therefore well-specified for every
   one of its infinitely many inputs — and that it computes the documented
   predicate ``#B >= #A``, in a single :class:`repro.api.Verifier` session,
3. serialise the verification report to JSON and back, losslessly,
4. simulate a few populations and compare with the predicate.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PopulationProtocol, Simulator, Transition
from repro.api import VerificationReport, Verifier
from repro.presburger.predicates import ThresholdPredicate


def build_majority() -> PopulationProtocol:
    """The majority protocol, written out explicitly."""
    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=[
            Transition.make(("A", "B"), ("a", "b"), name="cancel"),
            Transition.make(("A", "b"), ("A", "a"), name="convert-to-a"),
            Transition.make(("B", "a"), ("B", "b"), name="convert-to-b"),
            Transition.make(("b", "a"), ("b", "b"), name="tie-break"),
        ],
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="majority (quickstart)",
    )


def main() -> None:
    protocol = build_majority()
    print(protocol.describe())
    print()

    # --- 1. One Verifier session checks WS3 membership (well-specification
    # for ALL inputs) and correctness of "#B >= #A" in a single call.
    predicate = ThresholdPredicate({"A": 1, "B": -1}, 1)
    with Verifier() as verifier:
        report = verifier.check(protocol, properties=["ws3", "correctness"], predicate=predicate)
    print(report.summary())
    verdict = "computes" if report.holds("correctness") else "does NOT compute"
    print(f"The protocol {verdict} the predicate {predicate.describe()}.")
    print()

    # --- 2. The report round-trips losslessly through JSON: certificates,
    # counterexamples and refinement trails survive serialisation.
    payload = report.to_json()
    clone = VerificationReport.from_json(payload)
    assert clone == report
    certificate = clone.result_for("layered_termination").certificate
    print(
        f"report JSON: {len(payload)} bytes; decoded certificate has "
        f"{certificate.num_layers} layer(s) (strategy {certificate.strategy})"
    )
    print()

    # --- 3. Simulate a few populations.
    simulator = Simulator(protocol, seed=42)
    for population in [{"A": 4, "B": 7}, {"A": 7, "B": 4}, {"A": 5, "B": 5}]:
        run = simulator.run(input_population=population)
        expected = int(predicate.evaluate(population))
        print(
            f"population {population}: consensus output {run.output} after {run.steps} interactions "
            f"(predicate says {expected})"
        )


if __name__ == "__main__":
    main()
