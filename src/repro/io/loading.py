"""Resolve protocol specifications into protocol objects.

A *spec* is what the command line and the batch front end accept: a built-in
family name (``"majority"``), a parameterised family (``"flock-of-birds:6"``)
or a path to a protocol JSON file.  Resolution failures raise
:class:`ProtocolLoadError` — a :class:`~repro.protocols.protocol.ProtocolError`
subclass — so the loaders are usable from library code; only
:func:`repro.cli.main` translates the error into a process exit code.
"""

from __future__ import annotations

import inspect
import os

from repro.protocols.protocol import PopulationProtocol, ProtocolError


class ProtocolLoadError(ProtocolError):
    """A protocol spec or file could not be resolved into a protocol."""


def load_protocol_file(path: str | os.PathLike) -> PopulationProtocol:
    """Load a protocol from a JSON file, raising :class:`ProtocolLoadError` on failure."""
    from repro.io.serialization import protocol_from_json

    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ProtocolLoadError(f"cannot read protocol file {str(path)!r}: {error}") from error
    try:
        return protocol_from_json(text)
    except (ValueError, KeyError, TypeError) as error:
        # json.JSONDecodeError is a ValueError; missing/odd protocol fields
        # surface as KeyError/TypeError/ProtocolError(ValueError).
        raise ProtocolLoadError(
            f"{str(path)!r} is not a valid protocol JSON file: {error!r}"
        ) from error


def resolve_protocol_spec(spec: str) -> PopulationProtocol:
    """Resolve one spec: ``'family'``, ``'family:parameter'`` or a JSON path.

    Family names take precedence, so a stray file or directory in the
    working directory that happens to share a family's name cannot shadow
    the library protocol.
    """
    from repro.protocols.library import PROTOCOL_FAMILIES

    name, _, parameter = spec.partition(":")
    is_family = name in PROTOCOL_FAMILIES
    if not is_family and (spec.endswith(".json") or os.path.exists(spec)):
        return load_protocol_file(spec)
    if not is_family:
        raise ProtocolLoadError(
            f"unknown protocol family or file {spec!r}; "
            f"families: {', '.join(sorted(PROTOCOL_FAMILIES))}"
        )
    factory = PROTOCOL_FAMILIES[name]
    if not parameter:
        try:
            return factory()
        except TypeError as error:
            raise ProtocolLoadError(
                f"family {name!r} needs a parameter: use {name}:<n>"
            ) from error
    if not _takes_parameter(factory):
        raise ProtocolLoadError(
            f"family {name!r} takes no parameter, but {spec!r} supplies one"
        )
    try:
        value = int(parameter)
    except ValueError as error:
        raise ProtocolLoadError(
            f"parameter of {spec!r} must be an integer, got {parameter!r}"
        ) from error
    try:
        return factory(value)
    except (TypeError, ValueError) as error:
        # Out-of-range parameters (e.g. flock-of-birds:-3) surface as
        # ValueError/ProtocolError inside the factory; keep them library
        # exceptions rather than raw tracebacks.
        raise ProtocolLoadError(f"cannot build {spec!r}: {error}") from error


def _takes_parameter(factory) -> bool:
    """Does the family factory accept a real size parameter?

    Parameter-less families are registered with a throwaway ``_`` argument
    (so the registry has a uniform calling convention); a spec that supplies
    a parameter to one of those would be silently discarded otherwise.
    """
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins without signatures
        return True
    return any(name != "_" for name in parameters)
