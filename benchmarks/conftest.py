"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one sub-table of Table 1 of the paper (or
one of the prose-reported experiments of Section 6).  A benchmark entry
corresponds to one row of the table: it builds the protocol for the row's
parameter, asserts that |Q| and |T| match the paper exactly (these columns
are hardware-independent), runs the verification task once, and lets
pytest-benchmark record the wall-clock time (the paper's "Time" column).

The parameter ranges are smaller than the paper's: the paper drives Z3 on a
workstation with a one-hour timeout, while this reproduction runs a
pure-Python constraint solver; EXPERIMENTS.md records the mapping and the
observed trends.  Larger sweeps can be enabled by setting the environment
variable ``REPRO_BENCH_LARGE=1``.
"""

from __future__ import annotations

import os

import pytest

try:
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover - exercised without the plugin
    HAVE_PYTEST_BENCHMARK = False


def large_benchmarks_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_LARGE", "0") not in ("", "0", "false", "no")


def requires_large(reason: str = "set REPRO_BENCH_LARGE=1 to run the larger sweep"):
    return pytest.mark.skipif(not large_benchmarks_enabled(), reason=reason)


def run_once(benchmark, function, *args, **kwargs):
    """Run a verification task exactly once under pytest-benchmark.

    The verification procedures are deterministic and far too slow for
    statistical repetition, mirroring how the paper reports a single time per
    instance.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


class _PlainTimer:
    """Drop-in for the ``benchmark`` fixture when pytest-benchmark is absent.

    Runs the function once so the correctness assertions of the benchmark
    modules still execute; no timing statistics are recorded.
    """

    def __call__(self, function, *args, **kwargs):
        return function(*args, **kwargs)

    def pedantic(self, function, args=(), kwargs=None, **_options):
        return function(*args, **(kwargs or {}))


if not HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark():
        return _PlainTimer()
