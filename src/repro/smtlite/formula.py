"""Boolean combinations of linear integer constraints.

All comparison atoms are normalised to the single canonical shape
``expression <= 0`` with integer coefficients.  Over the integers this is
enough to express every comparison:

* ``a <  b``  becomes  ``a - b + 1 <= 0``
* ``a == b``  becomes  ``(a - b <= 0) and (b - a <= 0)``
* ``a != b``  becomes  ``(a - b + 1 <= 0) or (b - a + 1 <= 0)``

and, crucially, the *negation* of an atom is again an atom
(``not (e <= 0)`` is ``1 - e <= 0``), so negation normal form never needs
disequalities.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.smtlite.terms import LinearExpr


class Formula:
    """Base class of all formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    # Subclasses override:
    def evaluate(self, ints: Mapping[str, int], bools: Mapping[str, bool] | None = None) -> bool:
        raise NotImplementedError

    def atoms(self) -> set["Atom"]:
        """All arithmetic atoms occurring in the formula."""
        result: set[Atom] = set()
        self._collect_atoms(result)
        return result

    def bool_vars(self) -> set[str]:
        """All propositional variables occurring in the formula."""
        result: set[str] = set()
        self._collect_bool_vars(result)
        return result

    def int_variables(self) -> set[str]:
        """All integer variables occurring in the formula."""
        return {name for atom in self.atoms() for name in atom.expr.variables()}

    def _collect_atoms(self, into: set["Atom"]) -> None:
        raise NotImplementedError

    def _collect_bool_vars(self, into: set[str]) -> None:
        raise NotImplementedError


class BoolConst(Formula):
    """The constants true and false."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def evaluate(self, ints, bools=None) -> bool:
        return self.value

    def _collect_atoms(self, into) -> None:
        pass

    def _collect_bool_vars(self, into) -> None:
        pass

    def __eq__(self, other):
        return isinstance(other, BoolConst) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Atom(Formula):
    """The linear constraint ``expr <= 0``."""

    __slots__ = ("expr",)

    def __init__(self, expr: LinearExpr):
        if not isinstance(expr, LinearExpr):
            raise TypeError(f"Atom expects a LinearExpr, got {expr!r}")
        self.expr = expr

    def negated(self) -> "Atom":
        """The atom equivalent to ``not (expr <= 0)``, namely ``1 - expr <= 0``."""
        return Atom(-self.expr + 1)

    def evaluate(self, ints, bools=None) -> bool:
        return self.expr.evaluate(ints) <= 0

    def _collect_atoms(self, into) -> None:
        into.add(self)

    def _collect_bool_vars(self, into) -> None:
        pass

    def __eq__(self, other):
        return isinstance(other, Atom) and self.expr == other.expr

    def __hash__(self):
        return hash(("atom", self.expr))

    def __repr__(self):
        return f"Atom({self.expr!r} <= 0)"


class BoolVar(Formula):
    """A propositional variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("boolean variable names must be non-empty strings")
        self.name = name

    def evaluate(self, ints, bools=None) -> bool:
        if bools is None or self.name not in bools:
            raise KeyError(f"no value for boolean variable {self.name!r}")
        return bool(bools[self.name])

    def _collect_atoms(self, into) -> None:
        pass

    def _collect_bool_vars(self, into) -> None:
        into.add(self.name)

    def __eq__(self, other):
        return isinstance(other, BoolVar) and self.name == other.name

    def __hash__(self):
        return hash(("bvar", self.name))

    def __repr__(self):
        return f"BoolVar({self.name!r})"


class Not(Formula):
    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        self.operand = operand

    def evaluate(self, ints, bools=None) -> bool:
        return not self.operand.evaluate(ints, bools)

    def _collect_atoms(self, into) -> None:
        self.operand._collect_atoms(into)

    def _collect_bool_vars(self, into) -> None:
        self.operand._collect_bool_vars(into)

    def __eq__(self, other):
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self):
        return hash(("not", self.operand))

    def __repr__(self):
        return f"Not({self.operand!r})"


class _NaryFormula(Formula):
    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, *operands: Formula):
        flattened: list[Formula] = []
        for operand in operands:
            if isinstance(operand, self.__class__):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        for operand in flattened:
            if not isinstance(operand, Formula):
                raise TypeError(f"{self._symbol} expects formulas, got {operand!r}")
        self.operands = tuple(flattened)

    def _collect_atoms(self, into) -> None:
        for operand in self.operands:
            operand._collect_atoms(into)

    def _collect_bool_vars(self, into) -> None:
        for operand in self.operands:
            operand._collect_bool_vars(into)

    def __eq__(self, other):
        return isinstance(other, self.__class__) and self.operands == other.operands

    def __hash__(self):
        return hash((self._symbol, self.operands))

    def __repr__(self):
        inner = ", ".join(repr(op) for op in self.operands)
        return f"{self.__class__.__name__}({inner})"


class And(_NaryFormula):
    _symbol = "and"

    def evaluate(self, ints, bools=None) -> bool:
        return all(operand.evaluate(ints, bools) for operand in self.operands)


class Or(_NaryFormula):
    _symbol = "or"

    def evaluate(self, ints, bools=None) -> bool:
        return any(operand.evaluate(ints, bools) for operand in self.operands)


class Implies(Formula):
    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        self.antecedent = antecedent
        self.consequent = consequent

    def evaluate(self, ints, bools=None) -> bool:
        return (not self.antecedent.evaluate(ints, bools)) or self.consequent.evaluate(ints, bools)

    def _collect_atoms(self, into) -> None:
        self.antecedent._collect_atoms(into)
        self.consequent._collect_atoms(into)

    def _collect_bool_vars(self, into) -> None:
        self.antecedent._collect_bool_vars(into)
        self.consequent._collect_bool_vars(into)

    def __eq__(self, other):
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self):
        return hash(("implies", self.antecedent, self.consequent))

    def __repr__(self):
        return f"Implies({self.antecedent!r}, {self.consequent!r})"


class Iff(Formula):
    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right

    def evaluate(self, ints, bools=None) -> bool:
        return self.left.evaluate(ints, bools) == self.right.evaluate(ints, bools)

    def _collect_atoms(self, into) -> None:
        self.left._collect_atoms(into)
        self.right._collect_atoms(into)

    def _collect_bool_vars(self, into) -> None:
        self.left._collect_bool_vars(into)
        self.right._collect_bool_vars(into)

    def __eq__(self, other):
        return isinstance(other, Iff) and self.left == other.left and self.right == other.right

    def __hash__(self):
        return hash(("iff", self.left, self.right))

    def __repr__(self):
        return f"Iff({self.left!r}, {self.right!r})"


# ----------------------------------------------------------------------
# Comparison normalisation (used by LinearExpr's rich comparisons)
# ----------------------------------------------------------------------


def compare(left: LinearExpr, right: LinearExpr, kind: str) -> Formula:
    """Normalise a comparison between two linear expressions to formulas over ``<= 0`` atoms."""
    difference = left - right
    if kind == "<=":
        return _atom_or_const(difference)
    if kind == ">=":
        return _atom_or_const(-difference)
    if kind == "<":
        return _atom_or_const(difference + 1)
    if kind == ">":
        return _atom_or_const(-difference + 1)
    if kind == "==":
        return conjunction([_atom_or_const(difference), _atom_or_const(-difference)])
    if kind == "!=":
        return disjunction([_atom_or_const(difference + 1), _atom_or_const(-difference + 1)])
    raise ValueError(f"unknown comparison {kind!r}")


def _atom_or_const(expr: LinearExpr) -> Formula:
    if expr.is_constant():
        return TRUE if expr.constant <= 0 else FALSE
    return Atom(expr)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """``And`` over an iterable, simplifying constants; empty conjunction is TRUE."""
    operands = []
    for formula in formulas:
        if formula == FALSE:
            return FALSE
        if formula == TRUE:
            continue
        operands.append(formula)
    if not operands:
        return TRUE
    if len(operands) == 1:
        return operands[0]
    return And(*operands)


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """``Or`` over an iterable, simplifying constants; empty disjunction is FALSE."""
    operands = []
    for formula in formulas:
        if formula == TRUE:
            return TRUE
        if formula == FALSE:
            continue
        operands.append(formula)
    if not operands:
        return FALSE
    if len(operands) == 1:
        return operands[0]
    return Or(*operands)


# ----------------------------------------------------------------------
# Negation normal form
# ----------------------------------------------------------------------


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form.

    The result contains only ``And``, ``Or``, ``Atom``, ``BoolVar``,
    ``Not(BoolVar)`` and boolean constants: arithmetic negation is absorbed
    into the atoms themselves.
    """
    if isinstance(formula, BoolConst):
        return BoolConst(formula.value != negate)
    if isinstance(formula, Atom):
        return formula.negated() if negate else formula
    if isinstance(formula, BoolVar):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return to_nnf(formula.operand, not negate)
    if isinstance(formula, And):
        children = [to_nnf(op, negate) for op in formula.operands]
        return disjunction(children) if negate else conjunction(children)
    if isinstance(formula, Or):
        children = [to_nnf(op, negate) for op in formula.operands]
        return conjunction(children) if negate else disjunction(children)
    if isinstance(formula, Implies):
        return to_nnf(Or(Not(formula.antecedent), formula.consequent), negate)
    if isinstance(formula, Iff):
        expanded = And(
            Or(Not(formula.left), formula.right),
            Or(Not(formula.right), formula.left),
        )
        return to_nnf(expanded, negate)
    raise TypeError(f"unknown formula {formula!r}")
