"""Table 1, sub-table "Remainder".

The paper sweeps the modulus m from 10 to 80 (|Q| = m + 2,
|T| = m(m+1)/2 + m, times from 0.4 s to a one-hour timeout at m = 80) with
the secondary parameter c fixed to 1 and all coefficient values present.
"""

from __future__ import annotations

import pytest

from repro.protocols.library import remainder_protocol
from repro.verification.ws3 import verify_ws3

from .conftest import requires_large, run_once

SMALL_MODULI = [3, 5]
LARGE_MODULI = [8, 10, 20]


def _table_protocol(m: int):
    return remainder_protocol(list(range(m)), m, 1)


@pytest.mark.parametrize("m", SMALL_MODULI)
def test_remainder_ws3(benchmark, m):
    protocol = _table_protocol(m)
    assert protocol.num_states == m + 2
    assert protocol.num_transitions == m * (m + 1) // 2 + m
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


@requires_large()
@pytest.mark.parametrize("m", LARGE_MODULI)
def test_remainder_ws3_paper_sizes(benchmark, m):
    protocol = _table_protocol(m)
    assert protocol.num_transitions == m * (m + 1) // 2 + m
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3
