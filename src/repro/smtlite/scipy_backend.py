"""Theory backend based on scipy's HiGHS solvers.

This backend decides conjunctions of linear integer constraints with
``scipy.optimize.milp`` (branch-and-cut in HiGHS) and extracts conflict cores
from the dual multipliers of an *elastic* LP relaxation.  It is considerably
faster than the pure-Python exact backend on the larger constraint systems
produced by the threshold/remainder/flock-of-birds benchmarks.

Incrementality: the DPLL(T) loop and the CEGAR refinement of the
verification layer pose long sequences of closely related conjunctions, so
the backend keeps a grow-only variable→column index and caches the sparse
row of every constraint it has ever seen; each call assembles its matrix by
stacking cached rows instead of rebuilding the MILP from scratch.  Columns
belonging to variables of earlier calls are harmless: their coefficients are
zero and their bounds default to the natural numbers.

Soundness: HiGHS works in floating point, so

* every model is rounded to integers and re-verified exactly
  (:func:`repro.smtlite.theory.verify_model`); if verification fails the
  query is re-run on the exact backend;
* every conflict core is re-verified by a dedicated infeasibility check
  before being returned; if the check fails the full constraint set is
  returned as the (always valid) core.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np
from scipy import optimize, sparse

from repro.smtlite.theory import (
    Bounds,
    ExactTheorySolver,
    TheoryConstraint,
    TheoryResult,
    TheorySolverBase,
    verify_model,
)

_MARGINAL_TOLERANCE = 1e-7
_FEASIBILITY_TOLERANCE = 1e-6


class ScipyTheorySolver(TheorySolverBase):
    """Linear integer arithmetic backend using scipy/HiGHS."""

    name = "scipy"

    def __init__(
        self,
        minimize_cores: bool = True,
        core_minimization_budget: int = 16,
        core_shrink_budget: int = 96,
        core_shrink_time_limit: float = 5.0,
    ):
        super().__init__()
        self.minimize_cores = minimize_cores
        self.core_minimization_budget = core_minimization_budget
        self.core_shrink_budget = core_shrink_budget
        self.core_shrink_time_limit = core_shrink_time_limit
        self._exact_fallback = ExactTheorySolver()
        # Grow-only variable -> column index shared by all calls.
        self._var_index: dict[str, int] = {}
        # Cached sparse row (data, column indices) per constraint.
        self._row_cache: dict[TheoryConstraint, tuple[list[float], list[int]]] = {}
        self.statistics = {
            "milp_calls": 0,
            "lp_calls": 0,
            "exact_fallbacks": 0,
            "row_cache_hits": 0,
            "row_cache_misses": 0,
        }

    # ------------------------------------------------------------------

    def is_satisfiable(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> bool:
        """Single MILP feasibility call (no model verification, no core work)."""
        constraints = list(constraints)
        if not constraints:
            return True
        if not any(constraint.coefficients for constraint in constraints):
            return all(constraint.constant <= 0 for constraint in constraints)
        self._register_variables(bounds)
        matrix, rhs = self._constraint_matrix(constraints)
        lower, upper = self._bound_arrays(bounds)
        feasible, _ = self._solve_milp(matrix, rhs, lower, upper)
        return feasible

    def check(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> TheoryResult:
        constraints = list(constraints)
        variables = sorted(
            {name for constraint in constraints for name in constraint.variables()} | set(bounds)
        )
        if not constraints:
            model = {name: self._default_value(bounds.get(name, (0, None))) for name in variables}
            return TheoryResult(True, model=model)
        if not variables:
            # Constant constraints only.
            if all(constraint.constant <= 0 for constraint in constraints):
                return TheoryResult(True, model={})
            core = [i for i, c in enumerate(constraints) if c.constant > 0]
            return TheoryResult(False, core=core)

        self._register_variables(bounds)
        matrix, rhs = self._constraint_matrix(constraints)
        lower, upper = self._bound_arrays(bounds)

        feasible, values = self._solve_milp(matrix, rhs, lower, upper)
        if feasible:
            model = {name: values[self._var_index[name]] for name in variables}
            if verify_model(constraints, bounds, model):
                return TheoryResult(True, model=model)
            self.statistics["exact_fallbacks"] += 1
            return self._exact_fallback.check(constraints, bounds)

        core = self._extract_core(constraints, bounds, matrix, rhs, lower, upper)
        return TheoryResult(False, core=core)

    # ------------------------------------------------------------------
    # MILP / LP building blocks
    # ------------------------------------------------------------------

    @staticmethod
    def _default_value(bound: tuple[int | None, int | None]) -> int:
        lower, upper = bound
        if lower is not None:
            return int(lower)
        if upper is not None:
            return int(upper)
        return 0

    def _register_variables(self, bounds: Bounds) -> None:
        index = self._var_index
        for name in bounds:
            if name not in index:
                index[name] = len(index)

    def _constraint_matrix(
        self, constraints: Sequence[TheoryConstraint]
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        index = self._var_index
        row_cache = self._row_cache
        data: list[float] = []
        row_indices: list[int] = []
        column_indices: list[int] = []
        rhs = np.empty(len(constraints))
        for row, constraint in enumerate(constraints):
            rhs[row] = -constraint.constant
            cached = row_cache.get(constraint)
            if cached is None:
                self.statistics["row_cache_misses"] += 1
                row_data: list[float] = []
                row_columns: list[int] = []
                for name, coefficient in constraint.coefficients:
                    column = index.get(name)
                    if column is None:
                        column = len(index)
                        index[name] = column
                    row_data.append(float(coefficient))
                    row_columns.append(column)
                cached = (row_data, row_columns)
                row_cache[constraint] = cached
            else:
                self.statistics["row_cache_hits"] += 1
            data.extend(cached[0])
            column_indices.extend(cached[1])
            row_indices.extend([row] * len(cached[0]))
        matrix = sparse.csr_matrix(
            (data, (row_indices, column_indices)), shape=(len(constraints), len(index))
        )
        return matrix, rhs

    def _bound_arrays(self, bounds: Bounds) -> tuple[np.ndarray, np.ndarray]:
        num_columns = len(self._var_index)
        lower = np.zeros(num_columns)
        upper = np.full(num_columns, np.inf)
        for name, (low, high) in bounds.items():
            position = self._var_index[name]
            lower[position] = -np.inf if low is None else float(low)
            upper[position] = np.inf if high is None else float(high)
        return lower, upper

    def _solve_milp(
        self,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> tuple[bool, list[int] | None]:
        self.statistics["milp_calls"] += 1
        num_variables = matrix.shape[1]
        constraint = optimize.LinearConstraint(matrix, -np.inf, rhs)
        result = optimize.milp(
            c=np.zeros(num_variables),
            constraints=[constraint],
            integrality=np.ones(num_variables),
            bounds=optimize.Bounds(lower, upper),
        )
        if result.success and result.x is not None:
            return True, [int(round(value)) for value in result.x]
        return False, None

    # ------------------------------------------------------------------
    # Conflict cores
    # ------------------------------------------------------------------

    def _extract_core(
        self,
        constraints: Sequence[TheoryConstraint],
        bounds: Bounds,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> list[int]:
        all_indices = list(range(len(constraints)))
        candidate = self._elastic_lp_core(matrix, rhs, lower, upper)
        core = None
        if candidate and len(candidate) < len(constraints):
            # Re-verify the candidate with a dedicated MILP call on the subset.
            if self._subset_proven_infeasible(constraints, bounds, candidate):
                core = candidate
        if core is None:
            # No LP certificate (typically integrality-driven infeasibility).
            core = all_indices
        if self.minimize_cores and len(core) > 4:
            # Large cores make weak blocking clauses and the DPLL(T) loop
            # degenerates into near-enumeration of boolean assignments, so
            # spend a bounded number of subset MILP calls shrinking them.
            core = self._dichotomic_shrink(constraints, bounds, core)
        if self.minimize_cores and 4 < len(core) <= self.core_minimization_budget:
            core = self.minimize_core(constraints, bounds, core, max_checks=self.core_minimization_budget)
        return core

    def _subset_proven_infeasible(
        self,
        constraints: Sequence[TheoryConstraint],
        bounds: Bounds,
        indices: Sequence[int],
        time_limit: float | None = None,
    ) -> bool:
        """True only when HiGHS *proves* the subset infeasible.

        Removing constraints can make the branch-and-bound much harder than
        the full system, so subset probes carry a time limit; an undecided
        probe counts as "not proven", which is always sound (the caller just
        keeps a larger core).
        """
        subset = [constraints[index] for index in indices]
        sub_matrix, sub_rhs = self._constraint_matrix(subset)
        sub_lower, sub_upper = self._bound_arrays(bounds)
        self.statistics["milp_calls"] += 1
        constraint = optimize.LinearConstraint(sub_matrix, -np.inf, sub_rhs)
        num_variables = sub_matrix.shape[1]
        result = optimize.milp(
            c=np.zeros(num_variables),
            constraints=[constraint],
            integrality=np.ones(num_variables),
            bounds=optimize.Bounds(sub_lower, sub_upper),
            options=None if time_limit is None else {"time_limit": time_limit},
        )
        return result.status == 2  # 2 = proven infeasible

    def _dichotomic_shrink(
        self, constraints: Sequence[TheoryConstraint], bounds: Bounds, core: list[int]
    ) -> list[int]:
        """Shrink an unsatisfiable index set by dropping halving chunks.

        ddmin-style: try to remove chunks of decreasing size while the
        remainder stays infeasible.  Costs O(budget) time-limited subset MILP
        calls and typically reduces a full-assignment core to a handful of
        rows, which turns the learned blocking clause from a
        single-assignment exclusion into a real pruning lemma.
        """
        budget = self.core_shrink_budget
        if budget <= 0 or len(core) <= 4:
            return core
        deadline = time.perf_counter() + self.core_shrink_time_limit
        per_probe = max(self.core_shrink_time_limit / 8.0, 0.25)
        chunk = len(core) // 2
        while chunk >= 1 and budget > 0:
            position = 0
            while position < len(core) and budget > 0:
                if time.perf_counter() > deadline:
                    return core
                trial = core[:position] + core[position + chunk :]
                if not trial:
                    break
                budget -= 1
                if self._subset_proven_infeasible(constraints, bounds, trial, time_limit=per_probe):
                    core = trial
                else:
                    position += chunk
            chunk //= 2
        return core

    def _elastic_lp_core(
        self,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> list[int] | None:
        """Dual-based core from the elastic LP ``min sum(s) s.t. Ax - s <= b``.

        If the minimal total violation is positive, the LP relaxation itself
        is infeasible and the rows with non-zero dual multipliers form a
        Farkas-style certificate.
        """
        self.statistics["lp_calls"] += 1
        num_constraints, num_variables = matrix.shape
        elastic = sparse.hstack([matrix, -sparse.identity(num_constraints, format="csr")], format="csr")
        objective = np.concatenate([np.zeros(num_variables), np.ones(num_constraints)])
        variable_bounds = [
            (None if np.isneginf(low) else low, None if np.isposinf(high) else high)
            for low, high in zip(lower, upper)
        ] + [(0, None)] * num_constraints
        result = optimize.linprog(
            objective,
            A_ub=elastic,
            b_ub=rhs,
            bounds=variable_bounds,
            method="highs",
        )
        if not result.success:
            return None
        if result.fun <= _FEASIBILITY_TOLERANCE:
            # LP relaxation is feasible: infeasibility is integrality-driven,
            # no cheap certificate available.
            return None
        marginals = getattr(result.ineqlin, "marginals", None)
        if marginals is None:
            return None
        return [index for index, value in enumerate(marginals) if abs(value) > _MARGINAL_TOLERANCE]
