"""Table 1, sub-table "Threshold".

The paper sweeps vmax from 3 to 10 (|Q| = 4(2·vmax+1), |T| growing to 2626,
times from 8 s to a one-hour timeout at vmax = 10), with c = 1 and one input
variable per coefficient value in [-vmax, vmax] (the worst case, making every
leader state initial).
"""

from __future__ import annotations

import pytest

from repro.protocols.library import threshold_table_protocol
from repro.verification.ws3 import verify_ws3

from .conftest import requires_large, run_once

#: (vmax, expected |T|) — the |T| values for vmax = 3, 4 appear in Table 1.
EXPECTED_TRANSITIONS = {3: 288, 4: 478}

SMALL_VMAX = [2]
LARGE_VMAX = [3, 4]


@pytest.mark.parametrize("vmax", SMALL_VMAX)
def test_threshold_ws3(benchmark, vmax):
    protocol = threshold_table_protocol(vmax)
    assert protocol.num_states == 4 * (2 * vmax + 1)
    if vmax in EXPECTED_TRANSITIONS:
        assert protocol.num_transitions == EXPECTED_TRANSITIONS[vmax]
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


@requires_large()
@pytest.mark.parametrize("vmax", LARGE_VMAX)
def test_threshold_ws3_paper_sizes(benchmark, vmax):
    protocol = threshold_table_protocol(vmax)
    assert protocol.num_transitions == EXPECTED_TRANSITIONS[vmax]
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3
