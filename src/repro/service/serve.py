"""``repro-verify serve``: a stdin/stdout JSON-lines verification daemon.

The serve session speaks a line protocol: every request is one JSON object
on stdin, every output line is one JSON object on stdout.  Output lines are
tagged ``"type": "response"`` (the answer to a request, echoing its optional
``"id"``) or ``"type": "event"`` (a streamed progress event of a job
submitted with ``"stream": true``); the two may interleave, but each line is
self-contained, so clients dispatch on the tag.

Requests
--------

``{"op": "submit", "spec": "majority", "properties": ["ws3"],
"priority": 0, "stream": true}``
    Submit one protocol.  The protocol is named by a ``spec`` (a family
    name, ``family:parameter`` or a JSON file path) or supplied inline as a
    ``protocol`` dictionary (the ``repro.io.serialization`` wire format).
    Responds with the job id immediately; with ``"stream": true`` every
    progress event of the job is pushed as an event line.

``{"op": "submit", "specs": ["majority", "flock-of-birds:6"]}``
    Submit a whole batch as one job (the ``check_many`` semantics: dedup,
    result cache, across-protocol fan-out).

``{"op": "status", "job": "job-1"}``
    Non-blocking status plus the number of events recorded so far.

``{"op": "events", "job": "job-1", "since": 0}``
    Drain the job's event log from sequence number ``since`` (polling
    alternative to ``stream``); responds with the events and the next
    sequence number.  Add ``"wait": true`` (and an optional ``"timeout"``
    in seconds) to long-poll: the response is deferred until at least one
    event past ``since`` exists or the job finishes — this is what makes
    client-side event streams resumable without busy-polling.

``{"op": "cancel", "job": "job-1"}``
    Request cooperative cancellation.

``{"op": "wait", "job": "job-1", "timeout": 5.0}``
    Block until the job finishes (or the timeout elapses).

``{"op": "result", "job": "job-1", "wait": true}``
    The job's lossless result: ``"report"``
    (:meth:`~repro.api.report.VerificationReport.to_dict`) for single
    checks, ``"batch"`` for batch jobs.  Cancelled and failed jobs produce
    an error response instead.

``{"op": "jobs"}`` / ``{"op": "shutdown"}``
    List every job of the session; end the session.

``{"op": "stats"}``
    A snapshot of the serving tier's counters: service statistics (jobs
    submitted/completed/failed/cancelled/recovered), the pending-queue
    depth, result-cache traffic, journal statistics, and — over the
    network tier — the per-server connection/frame/shedding counters
    (mirrored by ``GET /statsz`` on the HTTP adapter).  This is what the
    sharded router scatter-gathers to aggregate fleet health.

``{"op": "metrics"}``
    The process-global observability-registry snapshot (counters, gauges,
    latency histograms) in mergeable form — the machine-readable twin of
    ``GET /metricsz``, which renders it as Prometheus text.  The router
    scatter-gathers this op and sums the per-shard snapshots with
    ``shard`` labels.

EOF on stdin ends the session too; like ``shutdown``, it cancels every job
that has not finished (nobody is left to read the results) — *unless* the
service runs on a durable journal (``repro-verify serve --journal-dir``), in
which case unfinished jobs are deliberately left queued: they are already
journalled, and the next daemon started on the same journal re-enqueues and
finishes them (see :mod:`repro.service.journal`).  Malformed lines and
unknown ops yield ``{"type": "response", "ok": false, "error": ...}`` — the
daemon never dies on bad input.

The same line protocol is served over TCP (and a sibling HTTP adapter) by
:mod:`repro.service.net`, which runs one non-owning :class:`ServeSession`
per connection over a shared service.
"""

from __future__ import annotations

import json
import logging
import threading
import time

from repro.engine.monitor import JobCancelledError
from repro.io.loading import ProtocolLoadError, resolve_protocol_spec
from repro.io.serialization import protocol_from_dict
from repro.obs.metrics import REGISTRY
from repro.service.jobs import JobHandle, JobNotFinished
from repro.service.service import VerificationService

logger = logging.getLogger(__name__)

#: Per-op request service time, across every transport that feeds
#: :meth:`ServeSession.handle_line` (stdio pipe, TCP line protocol, the
#: HTTP adapter).  Blocking ops (``wait``, long-polling ``events``) include
#: their wait time — this measures what the *client* experienced.
_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_net_request_seconds",
    "Request service time per serve-protocol op",
)


class ServeError(ValueError):
    """A request that cannot be served (bad op, unknown job, bad protocol)."""


class OverloadedError(ServeError):
    """The server is at capacity; the request was shed and may be retried.

    Raised by admission control (see :meth:`ServeSession._admit_job` and the
    network tier in :mod:`repro.service.net`); rendered as an error response
    carrying ``"overloaded": true``, ``"retryable": true`` and a
    ``"retry_after"`` hint, so clients back off instead of hammering.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


def batch_to_payload(batch) -> dict:
    """The lossless JSON payload of a :class:`~repro.engine.batch.BatchResult`."""
    return {
        "items": [
            {
                "protocol": item.protocol_name,
                "hash": item.protocol_hash,
                "ok": item.ok,
                "from_cache": item.from_cache,
                "time_seconds": item.time_seconds,
                "report": item.report.to_dict(),
            }
            for item in batch
        ],
        "statistics": batch.statistics,
    }


class ServeSession:
    """One JSON-lines session over a verification service.

    The request loop runs on the calling thread; streamed events arrive from
    dispatcher threads, so every output line goes through one lock and is
    flushed immediately (clients block on complete lines).

    ``owns_service=True`` (the stdio daemon) means the session's end is the
    daemon's end: the service is closed and — without a journal — every
    unfinished job is cancelled.  With ``owns_service=False`` (one network
    connection of a shared daemon, see :mod:`repro.service.net`) the service
    keeps running; only the jobs *this* session submitted are cancelled when
    the connection goes away (journalled services keep even those: they are
    durable and pollable from other connections).
    """

    def __init__(
        self,
        service: VerificationService,
        input_stream,
        output_stream,
        *,
        owns_service: bool = True,
    ):
        self.service = service
        self.owns_service = owns_service
        self._input = input_stream
        self._output = output_stream
        self._output_lock = threading.Lock()
        self._session_jobs: list[str] = []
        self._session_closed = False

    # ------------------------------------------------------------------
    # Output framing
    # ------------------------------------------------------------------

    def _write(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._output_lock:
            self._output.write(line + "\n")
            self._output.flush()

    def _respond(self, request_id, **payload) -> None:
        response = {"type": "response", "ok": True, **payload}
        if request_id is not None:
            response["id"] = request_id
        self._write(response)

    def _fail(self, request_id, error: str, **extra) -> None:
        response = {"type": "response", "ok": False, "error": error, **extra}
        if request_id is not None:
            response["id"] = request_id
        self._write(response)

    def _stream_event(self, event) -> None:
        self._write({"type": "event", "job": event.job_id, "event": event.to_dict()})

    # ------------------------------------------------------------------
    # The request loop
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Serve until EOF or a ``shutdown`` request; returns an exit code."""
        try:
            for line in self._input:
                if self.handle_line(line):
                    break
        finally:
            self.close_session()
        return 0

    def handle_line(self, line: str) -> bool:
        """Serve one raw request line; True when the session should end.

        This is the transport-agnostic core of the session: the stdio loop
        in :meth:`run` and each network connection of
        :class:`~repro.service.net.NetworkServer` both feed it complete
        lines.  It never raises on bad input — every failure becomes an
        error response.
        """
        line = line.strip()
        if not line:
            return False
        request_id = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServeError("each request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            handler = self._HANDLERS.get(op)
            if handler is None:
                known = ", ".join(sorted(self._HANDLERS))
                raise ServeError(f"unknown op {op!r}; known ops: {known}")
            started = time.perf_counter()
            try:
                return bool(handler(self, request, request_id))
            finally:
                _REQUEST_SECONDS.observe(time.perf_counter() - started, op=str(op))
        except OverloadedError as error:
            # Load shedding is explicit and retryable: the client learns it
            # was turned away (not that its request was malformed) and when
            # to come back.
            self._fail(
                request_id,
                str(error),
                overloaded=True,
                retryable=True,
                retry_after=error.retry_after,
            )
        # TypeError covers wrongly-typed request fields (e.g. a
        # number where a property list belongs): bad input of any
        # shape yields an error response, never a dead daemon.
        except (
            ServeError,
            ProtocolLoadError,
            json.JSONDecodeError,
            ValueError,
            TypeError,
        ) as error:
            self._fail(request_id, str(error))
        return False

    def close_session(self) -> None:
        """End the session exactly once (idempotent).

        Owning sessions close the service; shared-service sessions only
        withdraw their own jobs.  Either way a journalled backlog survives —
        durability beats cancellation.
        """
        if self._session_closed:
            return
        self._session_closed = True
        if not self.owns_service:
            # One connection of a shared daemon went away.  Without a
            # journal its unread jobs are garbage (nobody can fetch the
            # results; other sessions never learned the ids) — cancel them.
            # Other sessions' jobs are untouched.
            if self.service.journal is None:
                for job_id in self._session_jobs:
                    try:
                        handle = self.service.job(job_id)
                    except KeyError:
                        continue
                    if not handle.status().finished:
                        handle.cancel()
            return
        if self.service.journal is not None:
            # Durable mode: the backlog is journalled, so ending the
            # session must not throw it away — leave unfinished jobs
            # queued (close without draining) and let the next daemon on
            # this journal resume them.
            resumable = self.service.pending_count()
            self.service.close(drain=False)
            if resumable:
                logger.info(
                    "serve session ended with %d job(s) left journalled and resumable",
                    resumable,
                )
        else:
            # However the session ends (EOF, shutdown op, a crashed
            # client), nobody is reading results any more: cancel
            # whatever has not started rather than verifying a dead
            # client's backlog.
            self._cancel_pending()
            self.service.close()

    def _cancel_pending(self) -> None:
        for handle in self.service.jobs():
            if not handle.status().finished:
                handle.cancel()

    # ------------------------------------------------------------------
    # Handlers (returning True ends the session)
    # ------------------------------------------------------------------

    def _admit_job(self, request: dict) -> None:
        """Admission-control hook, called before a submit touches the service.

        The base session admits everything (a pipe has exactly one client);
        network sessions raise :class:`OverloadedError` here when the job
        queue is at capacity, shedding load instead of growing without
        bound.
        """

    def _handle_submit(self, request: dict, request_id) -> bool:
        self._admit_job(request)
        properties = request.get("properties")
        priority = int(request.get("priority", 0))
        subscriber = self._stream_event if request.get("stream") else None
        if "specs" in request:
            protocols = [resolve_protocol_spec(spec) for spec in request["specs"]]
            handle = self.service.submit_batch(
                protocols, properties=properties, priority=priority, subscriber=subscriber
            )
        else:
            handle = self.service.submit(
                self._load_protocol(request),
                properties=properties,
                priority=priority,
                subscriber=subscriber,
            )
        self._session_jobs.append(handle.job_id)
        self._respond(request_id, op="submit", job=handle.job_id, kind=handle.kind)
        return False

    def _load_protocol(self, request: dict):
        if "protocol" in request:
            try:
                return protocol_from_dict(request["protocol"])
            except Exception as error:
                raise ServeError(f"bad inline protocol: {error}") from error
        spec = request.get("spec")
        if not spec:
            raise ServeError("submit needs a 'spec', 'specs' or an inline 'protocol'")
        return resolve_protocol_spec(spec)

    def _handle(self, request: dict) -> JobHandle:
        job_id = request.get("job")
        if not job_id:
            raise ServeError("this op needs a 'job' id")
        try:
            return self.service.job(job_id)
        except KeyError:
            raise ServeError(f"unknown job {job_id!r}") from None

    def _handle_status(self, request: dict, request_id) -> bool:
        handle = self._handle(request)
        self._respond(
            request_id,
            op="status",
            job=handle.job_id,
            kind=handle.kind,
            status=handle.status().value,
            events=len(handle.events_so_far()),
        )
        return False

    def _handle_events(self, request: dict, request_id) -> bool:
        handle = self._handle(request)
        since = int(request.get("since", 0))
        if request.get("wait"):
            # Long poll: block until something past `since` exists (or the
            # job finished, or the timeout ran out) instead of making the
            # client busy-poll an unchanged log.
            timeout = request.get("timeout")
            handle.wait_for_events(since, timeout=None if timeout is None else float(timeout))
        events = [event.to_dict() for event in handle.events_so_far()[since:]]
        self._respond(
            request_id,
            op="events",
            job=handle.job_id,
            events=events,
            next=since + len(events),
            status=handle.status().value,
        )
        return False

    def _handle_cancel(self, request: dict, request_id) -> bool:
        handle = self._handle(request)
        cancelled = handle.cancel()
        self._respond(request_id, op="cancel", job=handle.job_id, cancelled=cancelled)
        return False

    def _handle_wait(self, request: dict, request_id) -> bool:
        handle = self._handle(request)
        timeout = request.get("timeout")
        finished = handle.wait(timeout=None if timeout is None else float(timeout))
        self._respond(
            request_id, op="wait", job=handle.job_id, finished=finished, status=handle.status().value
        )
        return False

    def _handle_result(self, request: dict, request_id) -> bool:
        handle = self._handle(request)
        if request.get("wait", True):
            timeout = request.get("timeout")
            handle.wait(timeout=None if timeout is None else float(timeout))
        try:
            result = handle.result()
        except JobNotFinished:
            self._fail(request_id, f"job {handle.job_id!r} is still {handle.status().value}")
            return False
        except JobCancelledError:
            self._fail(request_id, f"job {handle.job_id!r} was cancelled")
            return False
        except Exception as error:
            self._fail(request_id, f"job {handle.job_id!r} failed: {error}")
            return False
        payload = {"op": "result", "job": handle.job_id, "status": handle.status().value}
        if handle.kind == "batch":
            payload["batch"] = batch_to_payload(result)
        else:
            payload["report"] = result.to_dict()
        self._respond(request_id, **payload)
        return False

    def _handle_jobs(self, request: dict, request_id) -> bool:
        self._respond(
            request_id,
            op="jobs",
            jobs=[
                {
                    "job": handle.job_id,
                    "kind": handle.kind,
                    "status": handle.status().value,
                    "priority": handle.priority,
                }
                for handle in self.service.jobs()
            ],
        )
        return False

    def _stats_payload(self) -> dict:
        """The serving tier's counters; network sessions add server stats."""
        from repro.constraints.incremental import incremental_statistics

        service = self.service
        payload = {
            "service": dict(service.statistics),
            "pending_jobs": service.pending_count(),
            "cache": service.cache_statistics(),
            "journal": dict(service.journal.statistics) if service.journal is not None else None,
            # Process-wide incremental-IR counters (scopes, delta savings,
            # core retention) — the router's scatter-gather aggregates the
            # per-shard retention rates from this block.
            "incremental": incremental_statistics(),
        }
        engine = service.engine
        if engine is not None:
            payload["engine"] = dict(getattr(engine, "statistics", {}) or {})
        return payload

    def _handle_stats(self, request: dict, request_id) -> bool:
        self._respond(request_id, op="stats", stats=self._stats_payload())
        return False

    def _metrics_payload(self) -> dict:
        """The process metrics-registry snapshot (mergeable form).

        The router session overrides this with the fleet aggregation:
        per-shard snapshots scatter-gathered over this very op, stamped
        with ``shard`` labels and summed (see
        :class:`repro.service.router.RouterSession`).  ``GET /metricsz``
        renders the payload as Prometheus text.
        """
        return REGISTRY.snapshot()

    def _handle_metrics(self, request: dict, request_id) -> bool:
        self._respond(request_id, op="metrics", metrics=self._metrics_payload())
        return False

    def _handle_shutdown(self, request: dict, request_id) -> bool:
        # Cancel whatever is still pending: a shutdown must not hang on a
        # long queue (running jobs stop at their next checkpoint).  With a
        # journal the queue is durable instead — close_session() leaves it
        # for the next daemon rather than cancelling.  Shared-service
        # sessions only end their own connection (close_session withdraws
        # their jobs); daemon shutdown is the drain path's job.
        if self.owns_service and self.service.journal is None:
            self._cancel_pending()
        self._respond(request_id, op="shutdown")
        return True

    _HANDLERS = {
        "submit": _handle_submit,
        "status": _handle_status,
        "events": _handle_events,
        "cancel": _handle_cancel,
        "wait": _handle_wait,
        "result": _handle_result,
        "jobs": _handle_jobs,
        "stats": _handle_stats,
        "metrics": _handle_metrics,
        "shutdown": _handle_shutdown,
    }
