"""Quickstart: define a protocol, prove it well-specified, and run it.

This example follows the paper's running example (Example 1): the majority
protocol of Angluin et al.  We

1. build the protocol from scratch with the public API,
2. prove that it belongs to WS³ — and is therefore well-specified for every
   one of its infinitely many inputs — with the constraint-based verifier,
3. check that it computes the documented predicate ``#B >= #A``,
4. simulate a few populations and compare with the predicate.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PopulationProtocol, Simulator, Transition
from repro.presburger.predicates import ThresholdPredicate
from repro.verification.correctness import check_correctness
from repro.verification.ws3 import verify_ws3


def build_majority() -> PopulationProtocol:
    """The majority protocol, written out explicitly."""
    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=[
            Transition.make(("A", "B"), ("a", "b"), name="cancel"),
            Transition.make(("A", "b"), ("A", "a"), name="convert-to-a"),
            Transition.make(("B", "a"), ("B", "b"), name="convert-to-b"),
            Transition.make(("b", "a"), ("b", "b"), name="tie-break"),
        ],
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="majority (quickstart)",
    )


def main() -> None:
    protocol = build_majority()
    print(protocol.describe())
    print()

    # --- 1. Prove well-specification for ALL inputs (WS3 membership).
    result = verify_ws3(protocol)
    print(result.summary())
    print()

    # --- 2. Check the protocol computes "#B >= #A" (equivalently #A - #B < 1).
    predicate = ThresholdPredicate({"A": 1, "B": -1}, 1)
    correctness = check_correctness(protocol, predicate)
    verdict = "computes" if correctness.holds else "does NOT compute"
    print(f"The protocol {verdict} the predicate {predicate.describe()}.")
    print()

    # --- 3. Simulate a few populations.
    simulator = Simulator(protocol, seed=42)
    for population in [{"A": 4, "B": 7}, {"A": 7, "B": 4}, {"A": 5, "B": 5}]:
        run = simulator.run(input_population=population)
        expected = int(predicate.evaluate(population))
        print(
            f"population {population}: consensus output {run.output} after {run.steps} interactions "
            f"(predicate says {expected})"
        )


if __name__ == "__main__":
    main()
