"""Diagnosis of protocols that are *not* in WS³.

The paper's conclusion lists the diagnosis problem — explaining *why* a
protocol fails verification — as future work.  The verifier already produces
useful diagnostic artefacts: a counterexample to StrongConsensus is a pair of
potentially-reachable terminal configurations with contradicting outputs, and
a LayeredTermination failure names the non-terminating layer.  This example
runs one :class:`repro.api.Verifier` session over three deliberately broken
protocols and prints what the reports say (including the explicit-state
baseline, which is just another pluggable property of the session API).

Run with::

    python examples/diagnose_faulty_protocols.py
"""

from __future__ import annotations

from repro.api import Verifier
from repro.protocols.library import (
    coin_flip_protocol,
    exclusive_majority_protocol,
    majority_protocol,
    oscillating_majority_protocol,
)


def main() -> None:
    with Verifier(check_consensus_first=True, explicit_max_size=3) as verifier:
        print("=== coin-flip: not well-specified ===")
        report = verifier.check(coin_flip_protocol(), properties=["ws3", "explicit"])
        print(report.summary())
        counterexample = report.result_for("strong_consensus").counterexample
        print(f"diagnosis: {counterexample.describe()}")
        explicit = report.result_for("explicit")
        broken_input = next(
            entry for entry in explicit.details["inputs"] if not entry["well_specified"]
        )
        print(f"confirmed by explicit model checking: {broken_input['reason']}")
        print()

        print("=== oscillating majority: well-specified but not silent ===")
        report = verifier.check(oscillating_majority_protocol(), properties=["ws3", "explicit"])
        print(report.summary())
        print(
            "diagnosis: no ordered partition exists because two agents can swap between "
            "b and b' forever; the protocol is outside WS2/WS3 even though each input stabilises."
        )
        explicit = report.result_for("explicit")
        print(
            "explicit check of small inputs: all well specified = "
            f"{all(entry['well_specified'] for entry in explicit.details['inputs'])}"
        )
        print()

        print("=== strict majority: in WS3 but computes a different predicate ===")
        strict = exclusive_majority_protocol()
        wrong_predicate = majority_protocol().metadata["predicate"]  # "#B >= #A"
        report = verifier.check(strict, properties=["ws3", "correctness"], predicate=wrong_predicate)
        print(report.summary())
        correctness = report.result_for("correctness")
        print(f"does it compute {wrong_predicate.describe()}?  {correctness.holds}")
        if correctness.counterexample is not None:
            print(f"diagnosis: {correctness.counterexample.describe()}")
        report = verifier.check(strict, properties=["correctness"])  # documented predicate
        right_predicate = strict.metadata["predicate"]
        print(f"does it compute {right_predicate.describe()}?  {report.holds('correctness')}")


if __name__ == "__main__":
    main()
