"""Tests for linear expressions, formulas, NNF and CNF conversion."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smtlite.cnf import CNFConverter
from repro.smtlite.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolVar,
    Iff,
    Implies,
    Not,
    Or,
    conjunction,
    disjunction,
    to_nnf,
)
from repro.smtlite.terms import IntVar, LinearExpr, linear_sum

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")


class TestLinearExpr:
    def test_arithmetic(self):
        expr = 2 * x + y - 3
        assert expr.coefficient("x") == 2
        assert expr.coefficient("y") == 1
        assert expr.constant == -3
        assert expr.variables() == {"x", "y"}

    def test_zero_coefficients_dropped(self):
        assert (x - x).is_constant()
        assert (x + y - y).variables() == {"x"}

    def test_evaluate(self):
        assert (2 * x + 3 * y + 1).evaluate({"x": 2, "y": 1}) == 8
        with pytest.raises(KeyError):
            (x + y).evaluate({"x": 1})

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            LinearExpr({"x": 0.5})
        with pytest.raises(TypeError):
            x * 0.5  # type: ignore[operator]

    def test_sum_of_and_linear_sum(self):
        total = LinearExpr.sum_of([x, y, 3])
        assert total.evaluate({"x": 1, "y": 2}) == 6
        combo = linear_sum([(2, "x"), (1, y + 1)])
        assert combo.evaluate({"x": 3, "y": 4}) == 11

    def test_rsub_and_neg(self):
        assert (5 - x).evaluate({"x": 2}) == 3
        assert (-x).evaluate({"x": 2}) == -2

    @given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
    def test_evaluation_is_linear(self, a, b, vx, vy):
        expr = a * x + b * y
        assert expr.evaluate({"x": vx, "y": vy}) == a * vx + b * vy


class TestComparisons:
    def test_le_atom(self):
        atom = x <= 3
        assert isinstance(atom, Atom)
        assert atom.evaluate({"x": 3})
        assert not atom.evaluate({"x": 4})

    def test_strict_and_reverse(self):
        assert (x < 3).evaluate({"x": 2})
        assert not (x < 3).evaluate({"x": 3})
        assert (x > y).evaluate({"x": 4, "y": 1})
        assert (x >= 2).evaluate({"x": 2})

    def test_eq_and_ne(self):
        eq = (x + y).eq(4)
        assert eq.evaluate({"x": 1, "y": 3})
        assert not eq.evaluate({"x": 1, "y": 4})
        ne = x.ne(y)
        assert ne.evaluate({"x": 1, "y": 2})
        assert not ne.evaluate({"x": 2, "y": 2})

    def test_constant_comparisons_fold(self):
        assert (LinearExpr.constant_expr(1) <= 2) == TRUE
        assert (LinearExpr.constant_expr(3) <= 2) == FALSE

    def test_atom_negation(self):
        atom = x <= 3
        negated = atom.negated()
        for value in range(0, 8):
            assert atom.evaluate({"x": value}) != negated.evaluate({"x": value})


class TestFormulaEvaluation:
    def test_connectives(self):
        formula = Implies(x >= 1, Or(y >= 2, BoolVar("flag")))
        assert formula.evaluate({"x": 0, "y": 0}, {"flag": False})
        assert formula.evaluate({"x": 1, "y": 2}, {"flag": False})
        assert formula.evaluate({"x": 1, "y": 0}, {"flag": True})
        assert not formula.evaluate({"x": 1, "y": 0}, {"flag": False})

    def test_iff(self):
        formula = Iff(x >= 1, y >= 1)
        assert formula.evaluate({"x": 1, "y": 5})
        assert formula.evaluate({"x": 0, "y": 0})
        assert not formula.evaluate({"x": 1, "y": 0})

    def test_atom_collection(self):
        formula = And(x <= 1, Or(y >= 2, Not(BoolVar("b"))))
        assert len(formula.atoms()) == 2
        assert formula.bool_vars() == {"b"}
        assert formula.int_variables() == {"x", "y"}

    def test_conjunction_disjunction_helpers(self):
        assert conjunction([]) == TRUE
        assert disjunction([]) == FALSE
        assert conjunction([TRUE, x <= 1]) == (x <= 1)
        assert disjunction([FALSE, x <= 1]) == (x <= 1)
        assert conjunction([FALSE, x <= 1]) == FALSE
        assert disjunction([TRUE, x <= 1]) == TRUE

    def test_operator_sugar(self):
        formula = (x <= 1) & (y <= 2) | ~BoolVar("b")
        assert formula.evaluate({"x": 0, "y": 0}, {"b": True})
        assert formula.evaluate({"x": 5, "y": 5}, {"b": False})


ASSIGNMENTS = [
    {"x": vx, "y": vy} for vx in range(0, 3) for vy in range(0, 3)
]
BOOLS = [{"b": value} for value in (True, False)]


def formulas_for_nnf_tests():
    return [
        Implies(x >= 1, y >= 2),
        Not(Implies(x >= 1, y >= 2)),
        Iff(x >= 1, Not(BoolVar("b"))),
        Not(And(Or(x <= 0, y >= 1), BoolVar("b"))),
        Not(Not(x.eq(y))),
        Or(And(x >= 1, y >= 1), Not(BoolVar("b")), x.eq(2)),
        Not(x.ne(y)),
    ]


class TestNNF:
    @pytest.mark.parametrize("formula", formulas_for_nnf_tests())
    def test_nnf_preserves_semantics(self, formula):
        nnf = to_nnf(formula)
        for ints in ASSIGNMENTS:
            for bools in BOOLS:
                assert formula.evaluate(ints, bools) == nnf.evaluate(ints, bools)

    def test_nnf_shape(self):
        nnf = to_nnf(Not(And(x <= 1, BoolVar("b"))))
        assert isinstance(nnf, Or)
        kinds = {type(op) for op in nnf.operands}
        assert Not not in kinds or all(
            isinstance(op.operand, BoolVar) for op in nnf.operands if isinstance(op, Not)
        )


class TestCNFConverter:
    def test_atom_variables_are_shared(self):
        converter = CNFConverter()
        clauses1, _ = converter.convert(x <= 1)
        clauses2, _ = converter.convert(Or(x <= 1, y <= 2))
        assert clauses1 == [[1]]
        # The shared atom keeps propositional variable 1.
        assert any(1 in clause for clause in clauses2)

    def test_true_false(self):
        converter = CNFConverter()
        assert converter.convert(TRUE) == ([], False)
        clauses, trivially_false = converter.convert(FALSE)
        assert trivially_false

    def test_clause_structure_of_conjunction(self):
        converter = CNFConverter()
        clauses, _ = converter.convert(And(x <= 1, Or(y <= 2, BoolVar("b"))))
        # One unit clause for the first conjunct, one clause for the disjunction.
        assert sorted(len(clause) for clause in clauses) == [1, 2]

    def test_nested_formula_produces_aux_vars(self):
        converter = CNFConverter()
        clauses, _ = converter.convert(Or(And(x <= 1, y <= 2), BoolVar("b")))
        assert converter.variable_count > 3 - 1  # at least one auxiliary variable
        assert all(clauses)
