"""Tests for the shared per-protocol AnalysisContext.

The central guarantee: a Verifier session verifying all WS³ sub-properties
of one protocol computes each shared structural artifact — terminal
patterns, the trap/siphon basis, the normal form — at most once.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest

from repro.api import Verifier
from repro.constraints.context import AnalysisContext
from repro.protocols.library import majority_protocol, remainder_protocol


class TestLaziness:
    def test_nothing_computed_up_front(self):
        context = AnalysisContext(majority_protocol())
        assert context.computes == {}

    def test_each_artifact_computed_once(self):
        context = AnalysisContext(majority_protocol())
        for _ in range(3):
            context.terminal_patterns
            context.transition_supports
            context.builder
            context.normal_form
            context.enabling_graph
            context.lemma22_witnesses
            context.protocol_key
        assert context.computes == {
            "terminal_patterns": 1,
            "trap_siphon_basis": 1,
            "builder": 1,
            "state_deltas": 1,  # dependency of the builder
            "petri_net": 1,  # dependency of the normal form
            "normal_form": 1,
            "enabling_graph": 1,
            "lemma22_witnesses": 1,
            "protocol_key": 1,
        }

    def test_trap_siphon_basis_matches_transitions(self):
        protocol = majority_protocol()
        supports = AnalysisContext(protocol).transition_supports
        assert set(supports) == set(protocol.transitions)
        for transition, (pre_support, post_support) in supports.items():
            assert pre_support == frozenset(transition.pre.support())
            assert post_support == frozenset(transition.post.support())


class TestSessionSharing:
    def test_all_ws3_subproperties_compute_artifacts_at_most_once(self):
        """The ISSUE's counting guarantee, across several check() calls."""
        protocol = remainder_protocol([1], 3, 1)
        with Verifier() as verifier:
            verifier.check(protocol, properties=["ws3"])
            verifier.check(protocol, properties=["strong_consensus"])
            verifier.check(protocol, properties=["layered_termination", "correctness"])
            context = verifier.analysis_context(protocol)
        assert context.computes.get("terminal_patterns", 0) == 1
        assert context.computes.get("trap_siphon_basis", 0) <= 1
        assert context.computes.get("normal_form", 0) <= 1
        assert context.computes.get("builder", 0) == 1
        assert all(count <= 1 for count in context.computes.values()), context.computes
        # The content hash was seeded by the session, never recomputed.
        assert context.computes.get("protocol_key", 0) == 0

    def test_context_is_per_protocol(self):
        first, second = majority_protocol(), remainder_protocol([1], 3, 1)
        with Verifier() as verifier:
            assert verifier.analysis_context(first) is verifier.analysis_context(first)
            assert verifier.analysis_context(first) is not verifier.analysis_context(second)

    def test_equal_protocols_share_one_context(self):
        with Verifier() as verifier:
            context_a = verifier.analysis_context(majority_protocol())
            context_b = verifier.analysis_context(majority_protocol())
            assert context_a is context_b  # same content hash


class TestExportHydrate:
    def test_export_ships_only_computed_portables(self):
        context = AnalysisContext(majority_protocol())
        assert context.export_data() == {}
        patterns = context.terminal_patterns
        context.normal_form  # computed but not portable
        assert context.export_data() == {"terminal_patterns": patterns}

    def test_hydrate_prevents_recomputation(self):
        protocol = majority_protocol()
        source = AnalysisContext(protocol)
        patterns = source.terminal_patterns
        target = AnalysisContext(protocol).hydrate(source.export_data())
        assert target.terminal_patterns is patterns
        assert target.computes.get("terminal_patterns", 0) == 0
        assert target.hydrated == {"terminal_patterns": 1}

    def test_hydrate_ignores_unknown_and_tolerates_none(self):
        context = AnalysisContext(majority_protocol())
        context.hydrate(None)
        context.hydrate({"bogus": 1})
        assert context.computes == {} and context.hydrated == {}


class TestLinearArtifacts:
    """Place invariants and the flow-equation basis (ISSUE 5 satellite)."""

    def test_state_deltas_match_the_transition_effects(self):
        protocol = majority_protocol()
        rows = AnalysisContext(protocol).state_deltas
        assert set(rows) == set(protocol.states)
        for state, entries in rows.items():
            for transition, delta in entries:
                assert transition.delta_map[state] == delta
        # Every non-silent effect appears exactly once.
        total = sum(len(entries) for entries in rows.values())
        expected = sum(len(t.delta_map) for t in protocol.transitions)
        assert total == expected

    def test_builder_reuses_the_context_basis(self):
        context = AnalysisContext(majority_protocol())
        builder = context.builder
        assert builder.state_deltas is context.state_deltas
        assert context.computes.get("state_deltas", 0) == 1

    def test_place_invariants_are_conserved_by_every_transition(self):
        from fractions import Fraction

        protocol = majority_protocol()
        context = AnalysisContext(protocol)
        invariants = context.place_invariants
        assert invariants, "a conservative protocol net has invariants"
        for invariant in invariants:
            for transition in protocol.transitions:
                change = sum(
                    (
                        Fraction(weight) * transition.delta_map.get(state, 0)
                        for state, weight in invariant.items()
                    ),
                    Fraction(0),
                )
                assert change == 0
        # The agent-count invariant is in the span; at minimum the net is
        # recognised as conservative through the memoized Petri net.
        assert context.computes.get("petri_net", 0) == 1

    def test_linear_artifacts_are_portable(self):
        import pickle

        context = AnalysisContext(majority_protocol())
        context.state_deltas
        context.place_invariants
        context.terminal_patterns
        exported = context.export_data()
        assert set(exported) == {"terminal_patterns", "state_deltas", "place_invariants"}
        # Envelope round trip: what workers receive equals what was shipped.
        revived = pickle.loads(pickle.dumps(exported))
        assert revived["state_deltas"] == exported["state_deltas"]
        assert revived["place_invariants"] == exported["place_invariants"]
        target = AnalysisContext(majority_protocol()).hydrate(revived)
        assert target.computes == {}
        assert target.state_deltas == context.state_deltas
        assert target.place_invariants == context.place_invariants
        assert target.computes.get("state_deltas", 0) == 0


class TestDeprecatedTrapsSiphonsShim:
    def test_old_import_path_warns_and_reexports(self):
        sys.modules.pop("repro.verification.traps_siphons", None)
        with pytest.warns(DeprecationWarning, match="repro.petri.traps_siphons"):
            shim = importlib.import_module("repro.verification.traps_siphons")
        canonical = importlib.import_module("repro.petri.traps_siphons")
        assert shim.maximal_trap_with_support_outside is canonical.maximal_trap_with_support_outside
        assert shim.is_trap is canonical.is_trap

    def test_canonical_import_does_not_warn(self):
        sys.modules.pop("repro.petri.traps_siphons", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.import_module("repro.petri.traps_siphons")
