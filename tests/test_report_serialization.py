"""Lossless round-trip tests for verification reports and artifact codecs.

The acceptance bar of the unified API: ``report == from_json(to_json(report))``
for passing *and* failing verdicts over the protocol library, with
certificates (including `Fraction` ranking weights), counterexamples,
refinement trails and statistics all surviving the trip.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.api import VerificationOptions, VerificationReport, Verifier
from repro.datatypes.multiset import Multiset
from repro.io.serialization import (
    certificate_from_dict,
    certificate_to_dict,
    counterexample_from_dict,
    counterexample_to_dict,
    decode_flow,
    decode_fraction,
    decode_multiset,
    decode_partition,
    decode_ranking,
    encode_flow,
    encode_fraction,
    encode_multiset,
    encode_partition,
    encode_ranking,
    refinement_step_from_dict,
    refinement_step_to_dict,
)
from repro.protocols.library import (
    broadcast_protocol,
    coin_flip_protocol,
    exclusive_majority_protocol,
    flock_of_birds_protocol,
    majority_protocol,
    oscillating_majority_protocol,
    threshold_protocol,
)
from repro.protocols.protocol import Transition
from repro.verification.results import RefinementStep, StrongConsensusCounterexample


def round_trip(report: VerificationReport) -> VerificationReport:
    clone = VerificationReport.from_json(report.to_json())
    assert clone == report
    assert clone.to_dict() == report.to_dict()
    return clone


class TestReportRoundTrips:
    """``report == from_json(to_json(report))`` across the library."""

    @pytest.mark.parametrize(
        "factory",
        [majority_protocol, broadcast_protocol, lambda: flock_of_birds_protocol(4)],
        ids=["majority", "broadcast", "flock-of-birds-4"],
    )
    def test_passing_ws3_reports_round_trip(self, factory):
        report = Verifier(materialize_rankings=True).check(factory())
        assert report.is_ws3
        clone = round_trip(report)
        certificate = clone.result_for("layered_termination").certificate
        assert certificate is not None
        assert certificate.partition.covers(factory().transitions)
        # Ranking weights survive as exact rationals.
        for layer in certificate.layers:
            assert layer.ranking is not None
            assert all(isinstance(weight, Fraction) for weight in layer.ranking.values())

    def test_failing_consensus_report_round_trips_with_counterexample(self):
        report = Verifier().check(coin_flip_protocol())
        assert not report.is_ws3
        clone = round_trip(report)
        counterexample = clone.result_for("strong_consensus").counterexample
        assert counterexample is not None
        assert counterexample.initial.size() >= 2
        assert counterexample.flow_true and counterexample.flow_false

    def test_failing_termination_report_round_trips(self):
        report = Verifier().check(oscillating_majority_protocol())
        assert not report.is_ws3
        clone = round_trip(report)
        layered = clone.result_for("layered_termination")
        assert not layered.holds
        assert "no ordered partition" in layered.reason
        assert clone.result_for("strong_consensus").verdict.value == "skipped"

    def test_failing_correctness_report_round_trips_with_counterexample(self):
        wrong_predicate = majority_protocol().metadata["predicate"]
        report = Verifier().check(
            exclusive_majority_protocol(), properties=["correctness"], predicate=wrong_predicate
        )
        assert not report.ok
        clone = round_trip(report)
        counterexample = clone.result_for("correctness").counterexample
        assert counterexample is not None
        assert counterexample.expected_output in (0, 1)
        assert clone.result_for("correctness").details["predicate"] == wrong_predicate.describe()

    def test_refinement_trail_round_trips(self):
        report = Verifier().check(majority_protocol(), properties=["strong_consensus"])
        result = report.result_for("strong_consensus")
        assert result.refinements, "majority needs trap/siphon refinements"
        clone = round_trip(report)
        assert clone.result_for("strong_consensus").refinements == result.refinements

    def test_explicit_property_report_round_trips(self):
        report = Verifier(explicit_max_size=3).check(
            coin_flip_protocol(), properties=["explicit"]
        )
        assert not report.ok
        clone = round_trip(report)
        inputs = clone.result_for("explicit").details["inputs"]
        assert any(not entry["well_specified"] for entry in inputs)

    def test_multi_property_report_round_trips(self):
        report = Verifier().check(
            majority_protocol(), properties=["ws3", "correctness", "explicit"]
        )
        clone = round_trip(report)
        assert [p.property for p in clone.properties] == ["ws3", "correctness", "explicit"]
        assert clone.ok

    def test_unsupported_schema_rejected(self):
        report = Verifier().check(broadcast_protocol(), properties=["layered_termination"])
        data = report.to_dict()
        data["schema"] = "something-else/9"
        with pytest.raises(ValueError):
            VerificationReport.from_dict(data)


class TestArtifactCodecs:
    """Unit round trips of the shared codecs, including tuple states."""

    def test_fraction_codec_is_exact(self):
        for value in (Fraction(1, 3), Fraction(-7, 5), Fraction(2), 4):
            assert decode_fraction(encode_fraction(value)) == value

    def test_ranking_codec_with_tuple_states(self):
        ranking = {("q", 0): Fraction(5, 3), ("q", 1): Fraction(0), "r": Fraction(2)}
        assert decode_ranking(encode_ranking(ranking)) == ranking
        assert encode_ranking(None) is None and decode_ranking(None) is None

    def test_multiset_and_flow_codecs_with_tuple_states(self):
        configuration = Multiset({("t", 1): 2, "x": 3})
        assert decode_multiset(encode_multiset(configuration)) == configuration
        transition = Transition.make((("t", 1), "x"), (("t", 1), ("t", 1)))
        flow = {transition: 4}
        assert decode_flow(encode_flow(flow)) == flow

    def test_certificate_codec_via_partition_hint(self):
        from repro.verification.layered_termination import check_partition

        protocol = threshold_protocol({"x": 1, "y": -1}, 1)
        result = check_partition(
            protocol, protocol.partition_hint, materialize_rankings=True, strategy="hint"
        )
        assert result.holds
        clone = certificate_from_dict(certificate_to_dict(result.certificate))
        assert clone == result.certificate
        assert clone.num_layers == result.certificate.num_layers

    def test_partition_codec_preserves_layer_order(self):
        protocol = majority_protocol()
        hint = protocol.partition_hint
        assert decode_partition(encode_partition(hint)) == hint

    def test_counterexample_codec_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            counterexample_from_dict({"type": "nonsense"})
        with pytest.raises(TypeError):
            counterexample_to_dict(object())

    def test_consensus_counterexample_codec(self):
        transition = Transition.make(("a", "b"), ("b", "b"))
        counterexample = StrongConsensusCounterexample(
            initial=Multiset({"a": 2}),
            terminal_true=Multiset({"b": 2}),
            terminal_false=Multiset({"a": 2}),
            flow_true={transition: 2},
            flow_false={},
        )
        clone = counterexample_from_dict(counterexample_to_dict(counterexample))
        assert clone == counterexample

    def test_refinement_step_codec(self):
        step = RefinementStep(kind="trap", states=frozenset({("q", 1), "r"}), iteration=3)
        assert refinement_step_from_dict(refinement_step_to_dict(step)) == step


class TestCacheStoresLosslessReports:
    def test_cached_batch_reports_keep_artifacts(self, tmp_path):
        protocols = [majority_protocol(), coin_flip_protocol()]
        options = VerificationOptions(cache_dir=str(tmp_path))
        with Verifier(options) as verifier:
            cold = verifier.check_many(protocols)
        with Verifier(options) as verifier:
            warm = verifier.check_many(protocols)
        assert all(item.from_cache for item in warm)
        for cold_item, warm_item in zip(cold, warm):
            assert warm_item.report == cold_item.report
        # The failing protocol's counterexample survived the disk trip.
        counterexample = warm.items[1].report.result_for("strong_consensus").counterexample
        assert counterexample is not None
        assert counterexample.describe()
