"""Deliberately flawed protocols, used for negative tests and diagnosis demos.

Each protocol here violates exactly one of the properties the verifier
checks, which makes them useful both as regression tests ("the verifier must
reject this") and as worked examples for the diagnosis discussion in the
paper's conclusion.
"""

from __future__ import annotations

from repro.presburger.predicates import ThresholdPredicate
from repro.protocols.protocol import PopulationProtocol, Transition


def coin_flip_protocol() -> PopulationProtocol:
    """Not well-specified: a population of ``x`` agents can converge to either value.

    Violates StrongConsensus (and plain Consensus): from two agents in ``x``
    both an all-``yes`` and an all-``no`` terminal configuration are
    reachable.
    """
    return PopulationProtocol(
        states=["x", "yes", "no"],
        transitions=[
            Transition.make(("x", "x"), ("yes", "yes"), name="guess_yes"),
            Transition.make(("x", "x"), ("no", "no"), name="guess_no"),
            Transition.make(("yes", "no"), ("yes", "yes"), name="spread_yes"),
        ],
        input_alphabet=["x"],
        input_map={"x": "x"},
        output_map={"x": 0, "yes": 1, "no": 0},
        name="coin-flip",
        metadata={"flaw": "not well-specified: the outcome depends on the scheduler"},
    )


def oscillating_majority_protocol() -> PopulationProtocol:
    """Well-specified but not silent (Example 2 of the paper).

    The majority protocol is extended with a state ``b'`` of output 1 and the
    transitions ``(b, b) -> (b', b')`` and ``(b', b') -> (b, b)``: two agents
    can oscillate between ``b`` and ``b'`` forever, so the protocol is not
    silent and therefore outside WS² and WS³ (LayeredTermination fails), even
    though every fair execution still stabilises to the correct consensus.
    """
    return PopulationProtocol(
        states=["A", "B", "a", "b", "b'"],
        transitions=[
            Transition.make(("A", "B"), ("a", "b"), name="tAB"),
            Transition.make(("A", "b"), ("A", "a"), name="tAb"),
            Transition.make(("A", "b'"), ("A", "a"), name="tAb2"),
            Transition.make(("B", "a"), ("B", "b"), name="tBa"),
            Transition.make(("b", "a"), ("b", "b"), name="tba"),
            Transition.make(("b'", "a"), ("b'", "b"), name="tb2a"),
            Transition.make(("b", "b"), ("b'", "b'"), name="up"),
            Transition.make(("b'", "b'"), ("b", "b"), name="down"),
        ],
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1, "b'": 1},
        name="oscillating-majority",
        metadata={
            "predicate": ThresholdPredicate({"A": 1, "B": -1}, 1),
            "flaw": "well-specified but not silent (Example 2)",
        },
    )


def exclusive_majority_protocol() -> PopulationProtocol:
    """In WS³ but computes the *strict* majority predicate ``#B > #A``.

    Obtained from the majority protocol by making ties go to ``A`` (the tie
    breaker converts passive ``b`` agents to ``a``).  Used to exercise the
    correctness checker: the protocol is well-specified but does not compute
    the non-strict predicate ``#B >= #A``.
    """
    t_ab = Transition.make(("A", "B"), ("a", "b"), name="tAB")
    t_a_small_b = Transition.make(("A", "b"), ("A", "a"), name="tAb")
    t_b_small_a = Transition.make(("B", "a"), ("B", "b"), name="tBa")
    t_small_ab = Transition.make(("a", "b"), ("a", "a"), name="tab")
    from repro.protocols.protocol import OrderedPartition

    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=[t_ab, t_a_small_b, t_b_small_a, t_small_ab],
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="strict-majority",
        partition_hint=OrderedPartition.of([t_ab, t_b_small_a], [t_a_small_b, t_small_ab]),
        metadata={
            # #B > #A is equivalent to #A - #B < 0.
            "predicate": ThresholdPredicate({"A": 1, "B": -1}, 0),
            "note": "computes #B > #A, i.e. ties go to A",
        },
    )
