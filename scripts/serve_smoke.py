#!/usr/bin/env python3
"""Smoke and load tests of the ``repro-verify serve`` daemon, end to end.

Four scenarios, selectable by flag (the stdio smoke is the default so the
existing CI step keeps its meaning):

* **stdio smoke** (default) — pipes a submit+events+cancel+result script
  through a real ``serve`` subprocess and asserts the acceptance scenario
  of the service PR: two jobs submitted, events streamed for both, one
  cancelled, the other's report received losslessly.
* ``--network`` — spawns ``serve --tcp`` and exercises both wire protocols
  against the same listener: the JSON-lines protocol through
  :class:`~repro.service.client.VerificationClient` (submit, resumable
  events, result) and the HTTP adapter (healthz/readyz, POST /jobs, polled
  status, chunked NDJSON events, and a ``/metricsz`` scrape validated
  through the Prometheus-text parser).
* ``--load N --jobs M`` — the load harness: N concurrent TCP clients each
  running M submit→wait→result jobs against one daemon; reports throughput
  and p50/p95/p99 latency, then scrapes ``/metricsz`` and asserts the
  request/job latency histograms actually populated under load.
  Importable as :func:`run_load` (bench.py emits its ``network_serving``
  block from it).
* ``--overload`` — floods a deliberately tiny daemon (2 connections,
  2 pending jobs) far past its limits and asserts the robustness contract:
  every request either completes or is *explicitly shed* with a retryable
  ``overloaded`` answer — no hangs, no crash — and the daemon still serves
  normally afterwards.
* ``--router`` — spawns ``repro-verify route --replicas 2`` (the sharded
  routing tier) and asserts its acceptance contract: deterministic
  sharding (the same protocol always lands on the same shard, proven by
  that shard's cache hits), scatter-gathered ``jobs``/``stats``, and a
  fleet-wide SIGTERM drain that exits 0.  Combine with ``--load N`` to run
  the load harness through the router instead of a single daemon.

Exits non-zero (with a diagnostic) on any violation::

    PYTHONPATH=src python scripts/serve_smoke.py
    PYTHONPATH=src python scripts/serve_smoke.py --network
    PYTHONPATH=src python scripts/serve_smoke.py --load 4 --jobs 2
    PYTHONPATH=src python scripts/serve_smoke.py --overload
    PYTHONPATH=src python scripts/serve_smoke.py --router --load 4 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

REQUESTS = [
    {"op": "submit", "spec": "majority", "stream": True, "id": 1},
    {"op": "submit", "spec": "broadcast", "stream": True, "priority": -1, "id": 2},
    {"op": "cancel", "job": "job-2", "id": 3},
    {"op": "result", "job": "job-1", "wait": True, "id": 4},
    {"op": "wait", "job": "job-2", "id": 5},
    {"op": "shutdown", "id": 6},
]


def serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    return env


def spawn_tcp_daemon(*extra_args: str) -> tuple[subprocess.Popen, str, int]:
    """Start ``serve --tcp 127.0.0.1:0`` and return (proc, host, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise RuntimeError(f"daemon died before announcing a port: {proc.stderr.read()}")
    announced = json.loads(line)
    if announced.get("type") != "listening":
        proc.kill()
        raise RuntimeError(f"unexpected announcement: {announced}")
    return proc, announced["host"], announced["port"]


def spawn_router(
    state_dir: str, *extra_args: str, replicas: int = 2
) -> tuple[subprocess.Popen, str, int]:
    """Start ``route --replicas N --tcp 127.0.0.1:0`` and return (proc, host, port)."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "route",
            "--replicas",
            str(replicas),
            "--tcp",
            "127.0.0.1:0",
            "--state-dir",
            state_dir,
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise RuntimeError(f"router died before announcing a port: {proc.stderr.read()}")
    announced = json.loads(line)
    if announced.get("type") != "listening":
        proc.kill()
        raise RuntimeError(f"unexpected announcement: {announced}")
    return proc, announced["host"], announced["port"]


def terminate(proc: subprocess.Popen) -> int:
    """SIGTERM the daemon and return its (expected-zero) exit code."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=30)
        return -1


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty, unsorted sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


# ----------------------------------------------------------------------
# The load harness (imported by scripts/bench.py)
# ----------------------------------------------------------------------


def run_load(
    host: str,
    port: int,
    *,
    clients: int = 4,
    jobs: int = 3,
    spec: str = "majority",
    timeout: float = 300.0,
) -> dict:
    """N concurrent TCP clients × M submit→wait→result jobs each.

    Returns a summary dictionary: job counts (completed / shed / failed),
    wall-clock throughput, p50/p95/p99/max per-job latency, and the summed
    client retry counters.  Shed jobs (explicit ``overloaded`` answers that
    outlasted the client's retries) are *not* failures — the robustness
    contract is completed-or-shed, never hung.
    """
    from repro.service.client import OverloadedError, VerificationClient

    latencies: list[float] = []
    shed = [0]
    failures: list[str] = []
    retries = [0]
    lock = threading.Lock()

    def worker(index: int) -> None:
        try:
            with VerificationClient(host, port, timeout=timeout, seed=index) as client:
                for _ in range(jobs):
                    start = time.perf_counter()
                    try:
                        job = client.submit(spec)
                        status = client.wait(job, timeout=timeout)
                        payload = client.result(job)
                    except OverloadedError:
                        with lock:
                            shed[0] += 1
                        continue
                    elapsed = time.perf_counter() - start
                    with lock:
                        if status != "done" or "report" not in payload:
                            failures.append(f"client {index}: job {job} ended {status!r}")
                        else:
                            latencies.append(elapsed)
                with lock:
                    retries[0] += client.statistics["retries"]
        except Exception as error:  # noqa: BLE001 - harness boundary
            with lock:
                failures.append(f"client {index}: {type(error).__name__}: {error}")

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(index,), name=f"load-client-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 60)
    elapsed = time.perf_counter() - started

    summary = {
        "clients": clients,
        "jobs_per_client": jobs,
        "jobs_total": clients * jobs,
        "completed": len(latencies),
        "shed": shed[0],
        "failed": len(failures),
        "failures": failures[:5],
        "client_retries": retries[0],
        "elapsed_seconds": round(elapsed, 4),
        "throughput_jobs_per_second": round(len(latencies) / elapsed, 4) if elapsed > 0 else None,
    }
    if latencies:
        summary["latency_seconds"] = {
            "p50": round(percentile(latencies, 0.50), 4),
            "p95": round(percentile(latencies, 0.95), 4),
            "p99": round(percentile(latencies, 0.99), 4),
            "max": round(max(latencies), 4),
        }
    return summary


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_stdio() -> list[str]:
    script = "\n".join(json.dumps(request) for request in REQUESTS) + "\n"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve"],
        input=script,
        capture_output=True,
        text=True,
        env=serve_env(),
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        return [f"serve exited with {proc.returncode}"]

    lines = [json.loads(line) for line in proc.stdout.splitlines()]
    responses = {line["id"]: line for line in lines if line["type"] == "response" and "id" in line}
    events = [line for line in lines if line["type"] == "event"]

    failures = []
    for request_id in (1, 2, 3, 4, 5, 6):
        if not responses.get(request_id, {}).get("ok"):
            failures.append(f"request {request_id} did not succeed: {responses.get(request_id)}")
    streamed_jobs = {line["job"] for line in events}
    if not {"job-1", "job-2"} <= streamed_jobs:
        failures.append(f"expected streamed events for both jobs, saw {sorted(streamed_jobs)}")

    report_payload = responses.get(4, {}).get("report")
    if report_payload is None:
        failures.append("no report for job-1")
    else:
        from repro.api.report import VerificationReport

        report = VerificationReport.from_dict(report_payload)
        if report.to_dict() != report_payload:
            failures.append("job-1 report is not a lossless round trip")
        if not report.is_ws3:
            failures.append("majority unexpectedly not WS3")
        if not report.statistics.get("events"):
            failures.append("report statistics carry no event trail")

    status_job2 = responses.get(5, {}).get("status")
    if status_job2 not in ("cancelled", "done"):
        failures.append(f"job-2 ended in unexpected status {status_job2!r}")
    if not failures:
        print(
            f"stdio smoke OK: {len(lines)} output lines, {len(events)} streamed events, "
            f"job-2 {status_job2}"
        )
    return failures


def _http(host: str, port: int, method: str, path: str, body: bytes = b"") -> tuple[int, dict, bytes]:
    """One HTTP/1.1 exchange; returns (status, headers, body)."""
    with socket.create_connection((host, port), timeout=120) as sock:
        headers = f"{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n"
        if body:
            headers += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        sock.sendall(headers.encode() + b"\r\n" + body)
        raw = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw.extend(chunk)
    head, _, payload = bytes(raw).partition(b"\r\n\r\n")
    lines = head.decode("iso-8859-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    if parsed.get("transfer-encoding") == "chunked":
        decoded = bytearray()
        rest = payload
        while rest:
            size_line, _, rest = rest.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            decoded.extend(rest[:size])
            rest = rest[size + 2 :]
        payload = bytes(decoded)
    return status, parsed, payload


def scrape_metricsz(host: str, port: int) -> tuple[dict, list[str]]:
    """GET /metricsz and validate it through the Prometheus-text parser.

    Returns ``(samples, failures)`` where samples is the parsed
    ``{metric_name: [(labels, value), ...]}`` mapping (empty on failure).
    """
    from repro.obs.metrics import parse_prometheus_text

    status, headers, body = _http(host, port, "GET", "/metricsz")
    if status != 200:
        return {}, [f"GET /metricsz returned {status}: {body[:200]!r}"]
    content_type = headers.get("content-type", "")
    if not content_type.startswith("text/plain"):
        return {}, [f"/metricsz content-type {content_type!r} is not text/plain"]
    try:
        samples = parse_prometheus_text(body.decode("utf-8"))
    except ValueError as error:
        return {}, [f"/metricsz is not valid Prometheus text: {error}"]
    return samples, []


def scenario_network() -> list[str]:
    from repro.api.report import VerificationReport
    from repro.service.client import VerificationClient

    failures = []
    proc, host, port = spawn_tcp_daemon()
    try:
        # JSON-lines protocol through the resilient client.
        with VerificationClient(host, port, timeout=120) as client:
            job = client.submit("majority")
            events = list(client.events(job, poll_timeout=5.0))
            if not any(event.get("event") == "job_finished" for event in events):
                failures.append(f"TCP event stream for {job} carries no job_finished")
            payload = client.result(job)
            report = VerificationReport.from_dict(payload["report"])
            if not report.is_ws3:
                failures.append("TCP: majority unexpectedly not WS3")

        # HTTP adapter on the same listener.
        status, _, body = _http(host, port, "GET", "/healthz")
        if status != 200:
            failures.append(f"GET /healthz returned {status}")
        status, _, body = _http(host, port, "GET", "/readyz")
        if status != 200:
            failures.append(f"GET /readyz returned {status}")
        status, _, body = _http(host, port, "POST", "/jobs", json.dumps({"spec": "broadcast"}).encode())
        if status != 202:
            failures.append(f"POST /jobs returned {status}: {body[:200]!r}")
        else:
            http_job = json.loads(body)["job"]
            status, _, body = _http(host, port, "GET", f"/jobs/{http_job}?wait=120")
            if status != 200 or json.loads(body).get("status") != "done":
                failures.append(f"GET /jobs/{http_job} returned {status}: {body[:200]!r}")
            status, _, body = _http(host, port, "GET", f"/jobs/{http_job}/events?follow=0")
            ndjson = [json.loads(line) for line in body.decode().splitlines() if line]
            if status != 200 or not any(event.get("event") == "job_finished" for event in ndjson):
                failures.append(f"HTTP event stream for {http_job} carries no job_finished")

        # /metricsz on the same listener: valid Prometheus text covering the
        # daemon's counters and latency histograms.
        samples, metric_failures = scrape_metricsz(host, port)
        failures.extend(metric_failures)
        if samples:
            for family in ("repro_net_events_total", "repro_job_seconds_count"):
                if family not in samples:
                    failures.append(f"/metricsz carries no {family} samples")
            jobs_observed = sum(value for _, value in samples.get("repro_job_seconds_count", []))
            if jobs_observed < 2:
                failures.append(
                    f"repro_job_seconds observed {jobs_observed} jobs, expected the 2 just run"
                )
    finally:
        code = terminate(proc)
        if code != 0:
            failures.append(f"daemon exited {code} on SIGTERM")
    if not failures:
        print(
            "network smoke OK: JSON-lines and HTTP protocols served on one listener, "
            f"/metricsz parsed with {len(samples)} sample families"
        )
    return failures


def scenario_load(clients: int, jobs: int) -> list[str]:
    failures = []
    proc, host, port = spawn_tcp_daemon("--max-connections", str(max(8, clients + 2)))
    try:
        summary = run_load(host, port, clients=clients, jobs=jobs)
        # Under load the latency histograms must actually populate: every
        # request and every completed job leaves an observation behind.
        samples, metric_failures = scrape_metricsz(host, port)
        failures.extend(metric_failures)
        if samples:
            for family, floor in (
                ("repro_net_request_seconds_count", summary["completed"]),
                ("repro_job_seconds_count", summary["completed"]),
            ):
                observed = sum(value for _, value in samples.get(family, []))
                if observed < max(1, floor):
                    failures.append(
                        f"{family} observed {observed} under load, expected >= {max(1, floor)}"
                    )
    finally:
        code = terminate(proc)
    if summary["failed"]:
        failures.extend(summary["failures"])
    if summary["completed"] + summary["shed"] != summary["jobs_total"]:
        failures.append(
            f"{summary['jobs_total']} jobs in, {summary['completed']} completed + "
            f"{summary['shed']} shed out — some vanished"
        )
    if code != 0:
        failures.append(f"daemon exited {code} on SIGTERM after load")
    if not failures:
        latency = summary.get("latency_seconds", {})
        print(
            f"load OK: {summary['completed']}/{summary['jobs_total']} jobs from "
            f"{clients} clients at {summary['throughput_jobs_per_second']} jobs/s "
            f"(p50={latency.get('p50')}s p95={latency.get('p95')}s p99={latency.get('p99')}s, "
            f"{summary['shed']} shed, {summary['client_retries']} retries)"
        )
        print(json.dumps(summary, indent=2))
    return failures


def scenario_overload() -> list[str]:
    """Flood a tiny daemon: every request completes or is explicitly shed."""
    from repro.service.client import ClientRetryPolicy, OverloadedError, VerificationClient

    failures = []
    proc, host, port = spawn_tcp_daemon(
        "--max-connections", "2", "--max-pending-jobs", "2", "--drain-timeout", "20"
    )
    outcomes = {"completed": 0, "shed": 0}
    lock = threading.Lock()

    def flooder(index: int) -> None:
        # One quick retry round only: the point is to observe the shed
        # answer, not to wait out the overload.
        policy = ClientRetryPolicy(max_attempts=2, backoff_seconds=0.01, max_backoff_seconds=0.05)
        try:
            with VerificationClient(host, port, timeout=120, retry=policy, seed=index) as client:
                job = client.submit("majority")
                if client.wait(job, timeout=120) == "done":
                    with lock:
                        outcomes["completed"] += 1
                else:
                    with lock:
                        failures.append(f"flooder {index}: job {job} did not finish")
        except OverloadedError:
            with lock:
                outcomes["shed"] += 1
        except Exception as error:  # noqa: BLE001 - harness boundary
            with lock:
                failures.append(f"flooder {index}: {type(error).__name__}: {error}")

    try:
        threads = [
            threading.Thread(target=flooder, args=(index,), name=f"flooder-{index}")
            for index in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            if thread.is_alive():
                failures.append(f"{thread.name} hung — shed-not-stall violated")
        if outcomes["shed"] == 0:
            failures.append("12 clients against 2 connection slots and nothing was shed")
        if outcomes["completed"] == 0:
            failures.append("overloaded daemon completed nothing at all")

        # The daemon must still be healthy after the storm.
        with VerificationClient(host, port, timeout=120) as client:
            job = client.submit("majority")
            if client.wait(job, timeout=300) != "done":
                failures.append("post-overload submit did not complete")
    finally:
        code = terminate(proc)
        if code != 0:
            failures.append(f"daemon exited {code} on SIGTERM after overload")
    if not failures:
        print(
            f"overload OK: {outcomes['completed']} completed, {outcomes['shed']} shed "
            "explicitly, daemon healthy after the storm"
        )
    return failures


def scenario_router(load_clients: int | None, jobs: int) -> list[str]:
    """The sharded routing tier, end to end: deterministic sharding (proven
    via per-shard cache hits), scatter-gather, and a fleet-wide drain."""
    import tempfile

    from repro.service.client import VerificationClient

    failures = []
    summary = None
    with tempfile.TemporaryDirectory(prefix="repro-router-smoke-") as state_dir:
        proc, host, port = spawn_router(state_dir)
        try:
            with VerificationClient(host, port, timeout=300) as client:
                first = client.submit("majority")
                second = client.submit("broadcast")
                owner = first.split(":", 1)[0]
                for job in (first, second):
                    if ":" not in job:
                        failures.append(f"job id {job!r} is not shard-namespaced")
                    if client.wait(job, timeout=300) != "done":
                        failures.append(f"router job {job} did not finish")
                    elif "report" not in client.result(job):
                        failures.append(f"router job {job} returned no report")

                # Shard stability: the same protocol must land on the same
                # shard, where its first run is already cached.
                repeat = client.submit("majority")
                if repeat.split(":", 1)[0] != owner:
                    failures.append(
                        f"majority moved shards: {first} then {repeat} — sharding not deterministic"
                    )
                if client.wait(repeat, timeout=300) != "done":
                    failures.append(f"repeat job {repeat} did not finish")
                stats = client.call({"op": "stats"}).get("stats", {})
                shard_stats = stats.get("shards", {})
                hits = ((shard_stats.get(owner) or {}).get("cache") or {}).get("hits", 0)
                if hits < 1:
                    failures.append(
                        f"owning shard {owner} shows no cache hit for the repeat submit"
                    )
                if len(shard_stats) != 2:
                    failures.append(f"stats gathered {len(shard_stats)} shards, expected 2")

                listed = client.jobs()
                if len(listed) < 3:
                    failures.append(f"fleet-wide jobs listed only {len(listed)} jobs")

            # HTTP aggregates on the same listener.
            status, _, body = _http(host, port, "GET", "/readyz")
            if status != 200:
                failures.append(f"router GET /readyz returned {status}")
            status, _, body = _http(host, port, "GET", "/statsz")
            payload = json.loads(body) if status == 200 else {}
            if status != 200 or len(payload.get("stats", {}).get("shards", {})) != 2:
                failures.append(f"router GET /statsz returned {status}: {body[:200]!r}")

            # Fleet-wide /metricsz: shard-labelled series from every replica
            # plus the router's own, merged into one valid exposition.
            samples, metric_failures = scrape_metricsz(host, port)
            failures.extend(metric_failures)
            if samples:
                shards = {
                    labels.get("shard")
                    for labels, _ in samples.get("repro_router_routed_jobs_total", [])
                }
                if len(shards) < 1:
                    failures.append("router /metricsz carries no shard-labelled routing counters")
                job_counts = [
                    labels.get("shard")
                    for labels, value in samples.get("repro_job_seconds_count", [])
                    if value > 0
                ]
                if not job_counts:
                    failures.append("router /metricsz shows no shard with completed jobs")

            if load_clients:
                summary = run_load(host, port, clients=load_clients, jobs=jobs)
                if summary["failed"]:
                    failures.extend(summary["failures"])
                if summary["completed"] + summary["shed"] != summary["jobs_total"]:
                    failures.append(
                        f"router load: {summary['jobs_total']} jobs in, "
                        f"{summary['completed']} completed + {summary['shed']} shed out"
                    )
        finally:
            code = terminate(proc)
            if code != 0:
                failures.append(f"router exited {code} on SIGTERM (fleet drain must exit 0)")
    if not failures:
        print("router smoke OK: 2 shards, deterministic sharding, fleet drained cleanly")
        if summary is not None:
            print(
                f"router load OK: {summary['completed']}/{summary['jobs_total']} jobs at "
                f"{summary['throughput_jobs_per_second']} jobs/s"
            )
            print(json.dumps(summary, indent=2))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--network", action="store_true", help="run the TCP+HTTP smoke")
    parser.add_argument("--load", type=int, metavar="N", help="run the load harness with N clients")
    parser.add_argument("--jobs", type=int, default=3, metavar="M", help="jobs per load client")
    parser.add_argument(
        "--overload", action="store_true", help="run the overload (shed-not-crash) scenario"
    )
    parser.add_argument(
        "--router",
        action="store_true",
        help="run the sharded-router smoke (with --load N: route the load harness through it)",
    )
    args = parser.parse_args(argv)

    failures = []
    ran_any = False
    if args.network:
        ran_any = True
        failures.extend(scenario_network())
    if args.router:
        ran_any = True
        failures.extend(scenario_router(args.load, args.jobs))
    if args.load is not None and not args.router:
        ran_any = True
        failures.extend(scenario_load(args.load, args.jobs))
    if args.overload:
        ran_any = True
        failures.extend(scenario_overload())
    if not ran_any:
        failures.extend(scenario_stdio())

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
