"""Tests for the CDCL SAT solver, including cross-checks against brute force."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.smtlite.sat import SatSolver


def brute_force_satisfiable(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(clauses: list[list[int]], model: dict[int, bool]) -> bool:
    return all(any((lit > 0) == model[abs(lit)] for lit in clause) for clause in clauses)


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SatSolver().solve() is True

    def test_single_unit(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model[1] is True

    def test_contradictory_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is False

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model[3] is True

    def test_unsat_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1 and p2 both true, but not both.
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([2])
        solver.add_clause([-1, -2])
        assert solver.solve() is False

    def test_tautology_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve() is True

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is True
        solver.add_clause([-1])
        assert solver.solve() is True
        assert solver.model[2] is True
        solver.add_clause([-2])
        assert solver.solve() is False


class TestStructuredInstances:
    def test_php_3_pigeons_2_holes(self):
        # Pigeonhole principle: 3 pigeons in 2 holes is unsat.
        # Variable p_{i,h} = pigeon i in hole h -> var index 2*(i-1)+h.
        def var(i, h):
            return 2 * (i - 1) + h

        solver = SatSolver()
        for i in (1, 2, 3):
            solver.add_clause([var(i, 1), var(i, 2)])
        for h in (1, 2):
            for i, j in itertools.combinations((1, 2, 3), 2):
                solver.add_clause([-var(i, h), -var(j, h)])
        assert solver.solve() is False

    def test_graph_coloring_triangle_with_2_colors_unsat(self):
        # Vertices a, b, c; colors 1, 2; var index: 2*(vertex)+color.
        def var(vertex, color):
            return 2 * vertex + color

        solver = SatSolver()
        for vertex in (0, 1, 2):
            solver.add_clause([var(vertex, 1), var(vertex, 2)])
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            for color in (1, 2):
                solver.add_clause([-var(u, color), -var(v, color)])
        assert solver.solve() is False

    def test_graph_coloring_path_with_2_colors_sat(self):
        def var(vertex, color):
            return 2 * vertex + color

        solver = SatSolver()
        for vertex in (0, 1, 2):
            solver.add_clause([var(vertex, 1), var(vertex, 2)])
            solver.add_clause([-var(vertex, 1), -var(vertex, 2)])
        for u, v in [(0, 1), (1, 2)]:
            for color in (1, 2):
                solver.add_clause([-var(u, color), -var(v, color)])
        assert solver.solve() is True
        model = solver.model
        assert model[var(0, 1)] != model[var(1, 1)]
        assert model[var(1, 1)] != model[var(2, 1)]


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        num_clauses = rng.randint(num_vars, 4 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
            clause = [var if rng.random() < 0.5 else -var for var in variables]
            clauses.append(clause)

        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(list(clause))
        answer = solver.solve()
        expected = brute_force_satisfiable(num_vars, clauses)
        assert answer == expected
        if answer:
            model = {var: solver.model_value(var) for var in range(1, num_vars + 1)}
            assert check_model(clauses, model)

    @pytest.mark.parametrize("seed", range(4))
    def test_larger_random_instances_have_valid_models(self, seed):
        rng = random.Random(100 + seed)
        num_vars = 60
        num_clauses = 150
        clauses = []
        for _ in range(num_clauses):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(list(clause))
        answer = solver.solve()
        if answer:
            model = {var: solver.model_value(var) for var in range(1, num_vars + 1)}
            assert check_model(clauses, model)
