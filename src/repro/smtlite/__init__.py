"""smtlite — a small SMT-style solver for quantifier-free linear integer arithmetic.

The paper's decision procedure for WS³ membership reduces to the
(un)satisfiability of boolean combinations of linear constraints over the
natural numbers (Sections 4 and 6, Appendix D) and is implemented by the
authors on top of the SMT solver Z3.  Z3 is not available in this
environment, so this subpackage provides a from-scratch replacement with the
small feature set the verification engine needs:

* linear integer terms and atoms (:mod:`repro.smtlite.terms`),
* a boolean formula AST with negation-normal-form and Tseitin CNF conversion
  (:mod:`repro.smtlite.formula`, :mod:`repro.smtlite.cnf`),
* a CDCL SAT solver (:mod:`repro.smtlite.sat`),
* an exact rational simplex and a branch-and-bound integer feasibility solver
  (:mod:`repro.smtlite.simplex`, :mod:`repro.smtlite.branch_and_bound`),
* a theory solver for conjunctions of linear integer constraints with
  conflict-core extraction (:mod:`repro.smtlite.theory`), optionally backed
  by scipy's HiGHS MILP solver (:mod:`repro.smtlite.scipy_backend`),
* a lazy DPLL(T) combination (:mod:`repro.smtlite.solver`).

Every model returned by the solver is re-verified with exact integer
arithmetic, so an inexact backend can never produce an incorrect "sat"
answer.
"""

from repro.smtlite.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolVar,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)
from repro.smtlite.solver import Model, Solver, SolverResult, SolverStatus
from repro.smtlite.terms import IntVar, LinearExpr

__all__ = [
    "LinearExpr",
    "IntVar",
    "Formula",
    "Atom",
    "BoolVar",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "Solver",
    "SolverResult",
    "SolverStatus",
    "Model",
]
