"""Ablation: partition-search strategies for LayeredTermination.

The NP part of the WS³ check is finding an ordered partition.  The paper
iterates a constraint encoding (Appendix D.1) over a growing number of
layers; this repository additionally supports checking a protocol-supplied
certificate (the partitions from the paper's own proofs) and a polynomial
SCC-based heuristic.  These benchmarks compare the strategies on protocols
where more than one of them succeeds.
"""

from __future__ import annotations

import pytest

from repro.protocols.library import (
    broadcast_protocol,
    flock_of_birds_protocol,
    majority_protocol,
    remainder_protocol,
    threshold_protocol,
)
from repro.verification.layered_termination import check_layered_termination

from .conftest import run_once


@pytest.mark.parametrize("strategy", ["hint", "smt"])
def test_majority_partition_strategies(benchmark, strategy):
    protocol = majority_protocol()
    result = run_once(benchmark, check_layered_termination, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["single", "scc", "smt"])
def test_broadcast_partition_strategies(benchmark, strategy):
    protocol = broadcast_protocol()
    result = run_once(benchmark, check_layered_termination, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["single", "smt"])
def test_flock_partition_strategies(benchmark, strategy):
    protocol = flock_of_birds_protocol(4)
    result = run_once(benchmark, check_layered_termination, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["hint", "smt"])
def test_small_remainder_partition_strategies(benchmark, strategy):
    protocol = remainder_protocol([0, 1, 2], 3, 1)
    result = run_once(benchmark, check_layered_termination, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["hint"])
def test_small_threshold_partition_strategies(benchmark, strategy):
    protocol = threshold_protocol({"x": 1}, 1)
    result = run_once(benchmark, check_layered_termination, protocol, strategy=strategy)
    assert result.holds
