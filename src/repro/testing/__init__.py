"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
behind the chaos test suite and ``scripts/chaos_smoke.py``: seeded fault
plans (activated in-process or through the ``REPRO_FAULT_PLAN`` environment
variable, which worker processes inherit) kill workers, delay subproblems
past their deadlines, corrupt cache entries and crash solver backends at
named injection sites.
"""

from repro.testing.faults import (
    ENV_VAR,
    Fault,
    FaultInjected,
    FaultPlan,
    active_plan,
    clear_plan,
    fire,
    install_plan,
)

__all__ = [
    "ENV_VAR",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "active_plan",
    "clear_plan",
    "fire",
    "install_plan",
]
