"""Tests of the trace-span subsystem (:mod:`repro.obs.trace`).

The load-bearing property is the *single rooted tree*: a traced run with a
process pool must produce one connected span tree — worker-side spans ship
home in result envelopes and are re-parented under the coordinator's span
at harvest.  The cross-process test drives a real ``jobs=2`` verification
through the public API and asserts exactly that.
"""

from __future__ import annotations

import pytest

from repro.api import VerificationOptions, Verifier
from repro.io.loading import resolve_protocol_spec
from repro.obs import trace


def _tree_ids(spans):
    return {span["span_id"] for span in spans}


def _roots(spans):
    ids = _tree_ids(spans)
    return [span for span in spans if span.get("parent_id") not in ids]


class TestSpanBasics:
    def test_span_without_sink_is_a_noop(self):
        with trace.span("orphan") as opened:
            assert opened is None
        assert not trace.tracing_active()

    def test_nesting_parents(self):
        sink = trace.TraceSink()
        with trace.collect(sink):
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert trace.current_span_id() == inner.span_id
        spans = sink.spans()
        assert [span["name"] for span in spans] == ["inner", "outer"]  # close order
        assert spans[1]["parent_id"] is None

    def test_late_attributes_are_recorded(self):
        sink = trace.TraceSink()
        with trace.collect(sink):
            with trace.span("check", backend="smtlite") as opened:
                opened.attrs["status"] = "UNSAT"
        assert sink.spans()[0]["attrs"] == {"backend": "smtlite", "status": "UNSAT"}

    def test_ring_buffer_drops_oldest_and_counts(self):
        sink = trace.TraceSink(limit=3)
        with trace.collect(sink):
            for index in range(5):
                with trace.span(f"s{index}"):
                    pass
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [span["name"] for span in sink.spans()] == ["s2", "s3", "s4"]

    def test_collect_installs_a_fresh_root(self):
        outer_sink = trace.TraceSink()
        inner_sink = trace.TraceSink()
        with trace.collect(outer_sink):
            with trace.span("outer"):
                with trace.collect(inner_sink):
                    with trace.span("inner"):
                        pass
        assert inner_sink.spans()[0]["parent_id"] is None
        assert [span["name"] for span in outer_sink.spans()] == ["outer"]


class TestAdoption:
    def test_adopt_reparents_foreign_roots_only(self):
        worker = trace.TraceSink()
        with trace.collect(worker):
            with trace.span("sub"):
                with trace.span("solver.check"):
                    pass
        shipped = worker.spans()

        sink = trace.TraceSink()
        with trace.collect(sink):
            with trace.span("wave") as wave:
                trace.adopt_spans(shipped)
        spans = sink.spans()
        by_name = {span["name"]: span for span in spans}
        assert by_name["sub"]["parent_id"] == wave.span_id
        # The child kept its in-worker parent — only roots are re-parented.
        assert by_name["solver.check"]["parent_id"] == by_name["sub"]["span_id"]
        assert len(_roots(spans)) == 1

    def test_adopt_without_sink_is_a_noop(self):
        trace.adopt_spans([{"span_id": "x-1", "parent_id": None, "name": "s", "start": 0.0}])


class TestChromeTrace:
    def test_round_trip(self):
        sink = trace.TraceSink()
        with trace.collect(sink):
            with trace.span("job", protocol="majority"):
                with trace.span("property", property="ws3"):
                    pass
        spans = sink.spans()
        payload = trace.chrome_trace(spans)
        assert payload["traceEvents"][0]["ph"] == "X"
        recovered = trace.spans_from_chrome_trace(payload)
        assert {span["span_id"] for span in recovered} == _tree_ids(spans)
        assert {span["name"] for span in recovered} == {"job", "property"}
        by_name = {span["name"]: span for span in recovered}
        assert by_name["property"]["parent_id"] == by_name["job"]["span_id"]
        assert by_name["job"]["attrs"] == {"protocol": "majority"}

    def test_foreign_events_are_tolerated(self):
        payload = {"traceEvents": [{"ph": "M", "name": "metadata"}, {"ph": "X", "args": {}}]}
        assert trace.spans_from_chrome_trace(payload) == []

    def test_self_times_subtract_direct_children(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "p", "start": 0.0, "end": 10.0},
            {"span_id": "b", "parent_id": "a", "name": "c", "start": 1.0, "end": 4.0},
            {"span_id": "c", "parent_id": "a", "name": "c", "start": 5.0, "end": 9.0},
        ]
        self_time = trace.self_times(spans)
        assert self_time["a"] == pytest.approx(3.0)
        assert self_time["b"] == pytest.approx(3.0)
        assert self_time["c"] == pytest.approx(4.0)


class TestCrossProcessTree:
    def test_parallel_run_yields_one_connected_tree(self):
        """jobs=2 + trace ⇒ a single rooted tree with worker-side spans."""
        protocol = resolve_protocol_spec("majority")
        options = VerificationOptions(jobs=2, trace=True)
        with Verifier(options) as verifier:
            report = verifier.check(protocol, properties=["ws3"])
        assert report.ok
        spans = report.statistics["trace"]
        assert spans, "a traced run must embed its span tree"
        ids = _tree_ids(spans)
        assert len(ids) == len(spans)  # pid-seq ids are unique across the pool

        roots = _roots(spans)
        assert len(roots) == 1
        assert roots[0]["name"] == "job"
        # No orphans: every non-root parent id resolves within the tree.
        for span in spans:
            if span is not roots[0]:
                assert span["parent_id"] in ids

        # Worker spans actually crossed the process boundary.
        pids = {span["pid"] for span in spans}
        assert len(pids) >= 2, f"expected worker pids in the tree, got {pids}"
        names = {span["name"] for span in spans}
        assert {"job", "property", "engine.wave", "subproblem"} <= names

        # Within one worker, spans are recorded in close order: end
        # timestamps are monotone per (pid, tid) lane.
        lanes: dict = {}
        for span in spans:
            lanes.setdefault((span["pid"], span["tid"]), []).append(span["end"])
        for lane, ends in lanes.items():
            assert ends == sorted(ends), f"non-monotone close order in lane {lane}"

        # Every span closed after it opened.
        for span in spans:
            assert span["end"] >= span["start"]

    def test_untraced_run_embeds_nothing(self):
        protocol = resolve_protocol_spec("majority")
        with Verifier(VerificationOptions()) as verifier:
            report = verifier.check(protocol, properties=["layered_termination"])
        assert "trace" not in report.statistics
        assert "profile" not in report.statistics

    def test_profile_embeds_phases_and_hot_functions(self):
        protocol = resolve_protocol_spec("majority")
        with Verifier(VerificationOptions(profile=True)) as verifier:
            report = verifier.check(protocol, properties=["layered_termination"])
        profile = report.statistics["profile"]
        assert "layered_termination" in profile["phases"]
        phase = profile["phases"]["layered_termination"]
        assert phase["wall_seconds"] >= 0.0
        assert phase["calls"] == 1
        assert profile["top_functions"], "cProfile rows must be present"
