"""LayeredTermination (Definition 4, Section 4.1 and Appendix D.1).

A protocol satisfies *LayeredTermination* if its non-silent transitions can
be arranged into an ordered partition ``(T_1, ..., T_n)`` such that

(a) every execution that only uses transitions of a single layer is silent, and
(b) executing a layer cannot re-enable a transition of an earlier layer
    (formally: ``P[T_i]`` is ``(T_1 ∪ ... ∪ T_{i-1})``-dead).

Checking a *given* partition is polynomial (Propositions 6 and 7); finding
one is the NP part of the membership problem.  This module provides:

* :func:`check_partition` — the polynomial certificate checker;
* :func:`layer_is_silent` — condition (a) via an exact LP (Lemma 21);
* :func:`layer_is_dead_for` — condition (b) via the combinatorial
  characterisation of Lemma 22;
* three partition-search strategies (protocol-supplied hints, a single-layer
  check, an "enabling graph" SCC heuristic, and the exact constraint
  encoding of Appendix D.1 solved with :mod:`repro.smtlite`);
* :func:`check_layered_termination` — the top-level decision procedure.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from fractions import Fraction
from itertools import combinations_with_replacement

from repro.constraints.backends import create_solver, resolve_backend_name
from repro.constraints.context import AnalysisContext
from repro.constraints.incremental import ScopedSimplifier, resolve_incremental
from repro.constraints.ir import ConstraintSystem
from repro.datatypes.multiset import Multiset
from repro.engine import monitor
from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition
from repro.protocols.semantics import strongly_connected_components
from repro.smtlite.formula import Implies, disjunction
from repro.smtlite.solver import SolverStatus
from repro.smtlite.terms import LinearExpr
from repro.smtlite.simplex import LinearProgram, LPStatus
from repro.verification.results import LayerCertificate, LayeredTerminationCertificate


@dataclass
class LayeredTerminationResult:
    """Outcome of the LayeredTermination check."""

    holds: bool
    certificate: LayeredTerminationCertificate | None = None
    reason: str = ""
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


# ----------------------------------------------------------------------
# Condition (a): every execution of a layer is silent
# ----------------------------------------------------------------------


def layer_is_silent(protocol: PopulationProtocol, layer: Iterable[Transition]) -> bool:
    """Exact check of condition (a) of Definition 4 for one layer.

    By Lemma 21, ``P[T_i]`` has a non-silent execution iff there is a
    non-negative, non-zero rational flow over the non-silent transitions of
    the layer with zero net effect.  We decide this with the exact simplex:
    feasibility of ``{x >= 0, sum_t x_t * delta_t = 0, sum_t x_t = 1}``.
    """
    transitions = [t for t in layer if not t.is_silent]
    if not transitions:
        return True
    program = LinearProgram()
    names = {}
    for index, transition in enumerate(transitions):
        names[transition] = f"x{index}"
        program.add_variable(f"x{index}", lower=0)
    states = set()
    for transition in transitions:
        states.update(transition.states())
    for state in sorted(states, key=repr):
        coefficients = {
            names[t]: t.delta_map[state] for t in transitions if state in t.delta_map
        }
        if coefficients:
            program.add_constraint(coefficients, "==", 0)
    program.add_constraint({names[t]: 1 for t in transitions}, "==", 1)
    solution = program.solve()
    return solution.status is LPStatus.INFEASIBLE


def find_ranking_function(
    protocol: PopulationProtocol, layer: Iterable[Transition]
) -> dict | None:
    """A linear ranking function certifying condition (a), if one exists.

    The certificate assigns a non-negative rational weight to every state
    such that every non-silent transition of the layer strictly decreases
    the configuration weight.  The LP is solved in floating point (HiGHS)
    for speed and the result is rationalised and re-verified exactly; when
    that fails the exact simplex is used directly.  Returns ``None`` when no
    ranking function exists (equivalently, the layer is not silent).
    """
    transitions = [t for t in layer if not t.is_silent]
    if not transitions:
        return {}
    states = sorted({state for t in transitions for state in t.states()}, key=repr)
    ranking = _ranking_via_scipy(transitions, states)
    if ranking is not None and _ranking_is_valid(ranking, transitions):
        return ranking
    ranking = _ranking_via_exact_lp(transitions, states)
    if ranking is not None and _ranking_is_valid(ranking, transitions):
        return ranking
    return None


def _ranking_via_scipy(transitions: Sequence[Transition], states: Sequence) -> dict | None:
    try:
        import numpy as np
        from scipy import optimize
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    matrix = np.zeros((len(transitions), len(states)))
    column_of = {state: column for column, state in enumerate(states)}
    for row, transition in enumerate(transitions):
        for state, change in transition.delta_map.items():
            matrix[row, column_of[state]] = change
    result = optimize.linprog(
        c=np.ones(len(states)),
        A_ub=matrix,
        b_ub=-np.ones(len(transitions)),
        bounds=[(0, None)] * len(states),
        method="highs",
    )
    if not result.success:
        return None
    ranking = {}
    for column, state in enumerate(states):
        value = Fraction(float(result.x[column])).limit_denominator(10_000)
        ranking[state] = value if value > 0 else Fraction(0)
    return ranking


def _ranking_via_exact_lp(transitions: Sequence[Transition], states: Sequence) -> dict | None:
    program = LinearProgram()
    names = {state: f"y{index}" for index, state in enumerate(states)}
    for name in names.values():
        program.add_variable(name, lower=0)
    for transition in transitions:
        coefficients = {}
        for state in states:
            delta = transition.post[state] - transition.pre[state]
            if delta != 0:
                coefficients[names[state]] = delta
        program.add_constraint(coefficients, "<=", -1)
    solution = program.solve()
    if solution.status is not LPStatus.OPTIMAL:
        return None
    return {state: solution.values.get(names[state], Fraction(0)) for state in states}


def _ranking_is_valid(ranking: dict, transitions: Sequence[Transition]) -> bool:
    for transition in transitions:
        drop = sum(
            Fraction(ranking.get(state, 0)) * (transition.post[state] - transition.pre[state])
            for state in transition.states()
        )
        if drop >= 0:
            return False
    return all(Fraction(value) >= 0 for value in ranking.values())


# ----------------------------------------------------------------------
# Condition (b): a layer cannot wake up earlier layers
# ----------------------------------------------------------------------


def layer_is_dead_for(
    protocol: PopulationProtocol,
    layer: Iterable[Transition],
    earlier: Iterable[Transition],
) -> tuple[bool, tuple[Transition, Transition] | None]:
    """Check condition (b) of Definition 4 via Lemma 22.

    ``P[layer]`` is ``earlier``-dead iff for every ``s`` in the layer and
    every non-silent ``u`` in ``earlier`` there exists a non-silent ``u'`` in
    ``earlier`` enabled at ``pre(s) + (pre(u) ∸ post(s))``.  Returns
    ``(True, None)`` or ``(False, (s, u))`` with a witnessing pair.
    """
    layer = [t for t in layer if not t.is_silent]
    earlier = [t for t in earlier if not t.is_silent]
    if not earlier or not layer:
        return True, None
    earlier_pres = {u.pre for u in earlier}
    for s in layer:
        for u in earlier:
            witness_config = s.pre + u.pre.monus(s.post)
            if not _enables_some(witness_config, earlier_pres):
                return False, (s, u)
    return True, None


def _enables_some(configuration: Multiset, pre_multisets: set[Multiset]) -> bool:
    """Does the configuration enable a transition with pre in ``pre_multisets``?"""
    support = sorted(configuration.support(), key=repr)
    for first, second in combinations_with_replacement(support, 2):
        if first == second and configuration[first] < 2:
            continue
        candidate = Multiset({first: 2}) if first == second else Multiset({first: 1, second: 1})
        if candidate in pre_multisets:
            return True
    return False


# ----------------------------------------------------------------------
# Certificate checking
# ----------------------------------------------------------------------


def check_partition(
    protocol: PopulationProtocol,
    partition: OrderedPartition,
    materialize_rankings: bool = False,
    strategy: str = "explicit",
) -> LayeredTerminationResult:
    """Polynomial check that an ordered partition witnesses LayeredTermination."""
    if not partition.covers(protocol.transitions):
        return LayeredTerminationResult(
            holds=False,
            reason="the partition does not cover exactly the non-silent transitions",
        )
    layers: list[LayerCertificate] = []
    earlier: list[Transition] = []
    for index, layer in enumerate(partition, start=1):
        if not layer_is_silent(protocol, layer):
            return LayeredTerminationResult(
                holds=False,
                reason=f"layer {index} admits a non-silent execution (condition (a) fails)",
            )
        dead, witness = layer_is_dead_for(protocol, layer, earlier)
        if not dead:
            s, u = witness
            return LayeredTerminationResult(
                holds=False,
                reason=(
                    f"layer {index} can re-enable earlier transition {u} via {s} "
                    "(condition (b) fails)"
                ),
            )
        ranking = find_ranking_function(protocol, layer) if materialize_rankings else None
        layers.append(LayerCertificate(layer_index=index, transitions=frozenset(layer), ranking=ranking))
        earlier.extend(layer)
    certificate = LayeredTerminationCertificate(partition=partition, layers=layers, strategy=strategy)
    return LayeredTerminationResult(holds=True, certificate=certificate)


# ----------------------------------------------------------------------
# Partition search strategies
# ----------------------------------------------------------------------


def single_layer_partition(protocol: PopulationProtocol) -> OrderedPartition | None:
    """The trivial one-layer partition, if it satisfies condition (a)."""
    if not protocol.transitions:
        return OrderedPartition(())
    if layer_is_silent(protocol, protocol.transitions):
        return OrderedPartition.of(protocol.transitions)
    return None


def enabling_graph(protocol: PopulationProtocol) -> dict[Transition, frozenset[Transition]]:
    """The pairwise "may enable" relation between non-silent transitions.

    There is an edge ``t -> u`` iff firing ``t`` in some configuration where
    ``u`` is disabled can enable ``u`` (Lemma 22 specialised to ``U = {u}``):
    ``pre(u) ≰ pre(t) + (pre(u) ∸ post(t))``.
    """
    transitions = protocol.transitions
    edges: dict[Transition, set[Transition]] = {t: set() for t in transitions}
    for t in transitions:
        for u in transitions:
            witness = t.pre + u.pre.monus(t.post)
            if not (u.pre <= witness):
                edges[t].add(u)
    return {t: frozenset(successors) for t, successors in edges.items()}


def scc_heuristic_partition(
    protocol: PopulationProtocol, context: AnalysisContext | None = None
) -> OrderedPartition | None:
    """Layering from the condensation of the enabling graph.

    Transitions are grouped by strongly connected components of the
    "may enable" relation and ordered topologically, so that no transition
    can pairwise-enable a transition of an earlier layer; condition (b) then
    holds a fortiori.  The candidate is returned only if every layer also
    satisfies condition (a); otherwise ``None``.
    """
    if not protocol.transitions:
        return OrderedPartition(())
    edges = context.enabling_graph if context is not None else enabling_graph(protocol)
    components = strongly_connected_components(edges)
    component_of = {}
    for index, component in enumerate(components):
        for transition in component:
            component_of[transition] = index
    # Build the condensation DAG and topologically order it (Kahn).
    dag: dict[int, set[int]] = {index: set() for index in range(len(components))}
    indegree = {index: 0 for index in range(len(components))}
    for t, successors in edges.items():
        for u in successors:
            source, target = component_of[t], component_of[u]
            if source != target and target not in dag[source]:
                dag[source].add(target)
                indegree[target] += 1
    queue = [index for index, degree in indegree.items() if degree == 0]
    order: list[int] = []
    while queue:
        queue.sort()
        node = queue.pop(0)
        order.append(node)
        for successor in dag[node]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    if len(order) != len(components):  # pragma: no cover - condensation is acyclic
        return None
    layers = [frozenset(components[index]) for index in order]
    for layer in layers:
        if not layer_is_silent(protocol, layer):
            return None
    return OrderedPartition(tuple(layers))


def smt_partition_search(
    protocol: PopulationProtocol,
    max_layers: int | None = None,
    theory: str = "auto",
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> OrderedPartition | None:
    """Exact partition search via the constraint encoding of Appendix D.1.

    For a growing number of layers ``k`` the encoding uses an integer layer
    variable ``b_t`` per transition and a ranking function ``y_i`` per layer:

    * ``b_t = i`` implies that ``y_i`` strictly decreases on ``t``
      (condition (a), via Farkas' lemma);
    * ``b_u < b_t`` implies that some transition enabled at the Lemma 22
      witness configuration lies in a layer strictly below ``b_t``
      (condition (b)).

    The second family is the exact version of the paper's constraints (the
    paper requires the enabled transition to be in the *same* layer as
    ``u``, which is sufficient but slightly stronger).

    In incremental mode the encoding is routed through the constraint IR and
    a :class:`ScopedSimplifier`: the base (simplified once — folding kills
    the ``|T|`` vacuous ``t == u`` implications of condition (b), whose
    antecedent ``b_t < b_t`` is constantly false) is asserted once, and each
    round ``k`` is a scoped delta of ``b_t <= k`` atoms pushed and popped on
    the solver instead of re-sent assumption lists.  Verdicts are identical;
    the returned partition is re-checked by :func:`check_partition` either
    way.
    """
    transitions = list(protocol.transitions)
    if not transitions:
        return OrderedPartition(())
    if max_layers is None:
        # All protocols from the literature handled here need at most two
        # layers; the exhaustive bound |T| is sound but the search grows
        # exponentially with the bound, so the default is deliberately small
        # and can be raised by the caller.
        max_layers = min(len(transitions), 2)
    witnesses = (
        context.lemma22_witnesses if context is not None else _lemma22_witness_sets(transitions)
    )
    use_incremental = resolve_incremental(incremental)

    # One persistent solver for the whole 1..max_layers sweep: the encoding
    # is built once for the largest bound, and each round k is checked under
    # ``b_t <= k`` (a scoped delta when incremental, an assumption list
    # otherwise).  Lemmas learned while refuting small bounds carry over to
    # the larger ones.  (The encoding is deeply disjunctive, so the
    # direct-ILP backend's case budget overflows and it answers through its
    # DPLL(T) escape hatch — same verdicts, asserted by the parity tests.)
    solver = create_solver(backend, theory=theory)
    scoped: ScopedSimplifier | None = None
    if use_incremental:
        system = ConstraintSystem("layered-termination")
        layer_var = {
            transition: system.declare(f"b{index}", lower=1, upper=max_layers, group="layer")
            for index, transition in enumerate(transitions)
        }
        states = sorted(protocol.states, key=repr)
        ranking_vars = {
            (layer, state): system.declare(f"y_{layer}_{position}", lower=0, group="ranking")
            for layer in range(1, max_layers + 1)
            for position, state in enumerate(states)
        }
    else:
        layer_var = {}
        for index, transition in enumerate(transitions):
            layer_var[transition] = solver.int_var(f"b{index}", lower=1, upper=max_layers)
        states = sorted(protocol.states, key=repr)
        ranking_vars = {
            (layer, state): solver.int_var(f"y_{layer}_{position}", lower=0)
            for layer in range(1, max_layers + 1)
            for position, state in enumerate(states)
        }

    sink = system if use_incremental else solver

    # Condition (a): each layer admits a ranking function.  Constraints for
    # layers above the current bound are vacuous under ``b_t <= k``.
    for layer in range(1, max_layers + 1):
        for transition in transitions:
            drop = LinearExpr.sum_of(
                change * ranking_vars[(layer, state)]
                for state, change in transition.delta_map.items()
            )
            sink.add(Implies(layer_var[transition].eq(layer), drop <= -1))

    # Condition (b): a later transition cannot wake an earlier layer.
    for t in transitions:
        for u in transitions:
            enabled_below = disjunction(
                [layer_var[w] < layer_var[t] for w in witnesses[(t, u)]]
            )
            sink.add(Implies(layer_var[u] < layer_var[t], enabled_below))

    if use_incremental:
        scoped = ScopedSimplifier(system, tighten_bounds=False)
        scoped.system.assert_into(solver)

    for num_layers in range(1, max_layers + 1):
        round_atoms = [layer_var[t] <= num_layers for t in transitions]
        if scoped is not None:
            solver.push()
            scoped.push()
            try:
                for formula in scoped.add_delta(*round_atoms):
                    solver.add(formula)
                result = solver.check()
            finally:
                solver.pop()
                scoped.pop()
        else:
            result = solver.check(assumptions=round_atoms)
        if result.status is not SolverStatus.SAT:
            continue
        assignment = {t: result.model.value(layer_var[t]) for t in transitions}
        layers = []
        for layer in range(1, num_layers + 1):
            members = frozenset(t for t, value in assignment.items() if value == layer)
            if members:
                layers.append(members)
        return OrderedPartition(tuple(layers))
    return None


def _lemma22_witness_sets(
    transitions: Sequence[Transition],
) -> dict[tuple[Transition, Transition], list[Transition]]:
    """Precompute ``U'(t, u)`` of Appendix D.1 for every pair of transitions.

    Instead of scanning all transitions per pair (cubic in ``|T|``), the
    transitions are indexed by their (size-two) pre multiset; for each
    witness configuration the at most ``support^2`` candidate pres drawn from
    its support are looked up directly.
    """
    by_pre: dict[Multiset, list[Transition]] = {}
    for w in transitions:
        by_pre.setdefault(w.pre, []).append(w)
    order = {t: position for position, t in enumerate(transitions)}

    result: dict[tuple[Transition, Transition], list[Transition]] = {}
    for t in transitions:
        for u in transitions:
            witness_config = t.pre + u.pre.monus(t.post)
            enabled: list[Transition] = []
            support = sorted(witness_config.support(), key=repr)
            for position, first in enumerate(support):
                for second in support[position:]:
                    if first == second:
                        if witness_config[first] < 2:
                            continue
                        candidate = Multiset({first: 2})
                    else:
                        candidate = Multiset({first: 1, second: 1})
                    enabled.extend(by_pre.get(candidate, ()))
            enabled.sort(key=order.__getitem__)
            result[(t, u)] = enabled
    return result


# ----------------------------------------------------------------------
# Single strategies as engine subproblems
# ----------------------------------------------------------------------

#: Search order of the ``"auto"`` strategy; also the priority order of the
#: parallel portfolio (cheap certificates first, the exact search last).
STRATEGY_PRIORITY = ("hint", "single", "scc", "smt")


def attempt_strategy(
    protocol: PopulationProtocol,
    strategy: str,
    max_layers: int | None = None,
    theory: str = "auto",
    materialize_rankings: bool = False,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> LayeredTerminationResult:
    """Run exactly one partition-search strategy, with no fallbacks.

    This is the unit of work of the parallel strategy portfolio: each
    strategy is independent of the others, so the engine can race them on
    separate workers and keep the highest-priority success.
    """
    start = time.perf_counter()
    if strategy == "hint":
        partition = protocol.partition_hint
        failure = "the protocol carries no partition hint"
    elif strategy == "single":
        partition = single_layer_partition(protocol)
        failure = "the one-layer partition admits a non-silent execution"
    elif strategy == "scc":
        partition = scc_heuristic_partition(protocol, context=context)
        failure = "the enabling-graph heuristic produced no silent layering"
    elif strategy == "smt":
        partition = smt_partition_search(
            protocol, max_layers=max_layers, theory=theory, backend=backend, context=context,
            incremental=incremental,
        )
        failure = "no ordered partition found within the layer bound"
    else:
        raise ValueError(f"unknown LayeredTermination strategy {strategy!r}")
    if partition is None:
        result = LayeredTerminationResult(holds=False, reason=failure)
    else:
        result = check_partition(
            protocol, partition, materialize_rankings=materialize_rankings, strategy=strategy
        )
    result.statistics = {
        "strategy": strategy,
        "time": time.perf_counter() - start,
        **result.statistics,
    }
    return result


def termination_strategy_subproblems(
    protocol: PopulationProtocol,
    strategies: Sequence[str],
    max_layers: int | None,
    theory: str,
    protocol_data: dict,
    protocol_key: str,
    first_index: int = 0,
    backend: str | None = None,
    context_data: dict | None = None,
    incremental: bool | None = None,
) -> list:
    """Package a strategy portfolio as engine subproblems (priority order)."""
    from repro.engine.subproblem import Subproblem

    return [
        Subproblem(
            kind="termination-strategy",
            index=first_index + offset,
            protocol_key=protocol_key,
            protocol_data=protocol_data,
            params={
                "strategy": strategy,
                "max_layers": max_layers,
                "theory": theory,
                "backend": backend,
                "context": context_data or {},
                "incremental": incremental,
            },
        )
        for offset, strategy in enumerate(strategies)
    ]


def _check_layered_termination_portfolio(
    protocol: PopulationProtocol,
    engine,
    max_layers: int | None,
    materialize_rankings: bool,
    theory: str,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> LayeredTerminationResult:
    """The ``"auto"`` strategy as a parallel portfolio.

    The cheap polynomial strategies (hint, single layer, SCC heuristic) run
    concurrently in one wave; the result of the highest-priority holding
    strategy wins, matching the serial search order.  Only if all of them
    fail is the exact SMT search dispatched, so no exponential work is
    wasted when a heuristic certificate exists.  Certificates are re-checked
    (and rankings materialised) in the coordinator with the polynomial
    checker, so a returned certificate never depends on trusting a worker.
    """
    from repro.engine.subproblem import decode_partition
    from repro.io.serialization import protocol_to_dict

    if context is None:
        context = AnalysisContext(protocol)
    start = time.perf_counter()
    protocol_data = protocol_to_dict(protocol)
    protocol_key = context.protocol_key
    context_data = context.export_data()
    statistics: dict = {"strategy": None, "jobs": engine.jobs, "portfolio": True}

    def finish(result: LayeredTerminationResult, used_strategy: str) -> LayeredTerminationResult:
        statistics["strategy"] = used_strategy
        statistics["time"] = time.perf_counter() - start
        result.statistics = {**statistics, **result.statistics}
        return result

    def accept(result) -> LayeredTerminationResult:
        partition = decode_partition(result.data["partition"])
        checked = check_partition(
            protocol,
            partition,
            materialize_rankings=materialize_rankings,
            strategy=result.data["strategy"],
        )
        if not checked.holds:  # pragma: no cover - the worker already checked
            raise RuntimeError(
                f"strategy {result.data['strategy']!r} returned a partition that fails "
                f"re-checking: {checked.reason}"
            )
        return finish(checked, result.data["strategy"])

    heuristics = [
        strategy
        for strategy in STRATEGY_PRIORITY[:-1]
        if strategy != "hint" or protocol.partition_hint is not None
    ]
    results = engine.run_wave(
        termination_strategy_subproblems(
            protocol,
            heuristics,
            max_layers,
            theory,
            protocol_data,
            protocol_key,
            backend=backend,
            context_data=context_data,
            incremental=incremental,
        )
    )
    for result in results:  # input order == priority order
        if result is not None and result.verdict == "holds":
            return accept(result)

    smt_results = engine.run_wave(
        termination_strategy_subproblems(
            protocol,
            ["smt"],
            max_layers,
            theory,
            protocol_data,
            protocol_key,
            first_index=len(heuristics),
            backend=backend,
            context_data=context_data,
            incremental=incremental,
        )
    )
    smt_result = smt_results[0]
    if smt_result is not None and smt_result.verdict == "holds":
        return accept(smt_result)
    return finish(
        LayeredTerminationResult(
            holds=False,
            reason="no ordered partition found within the layer bound",
        ),
        "smt",
    )


# ----------------------------------------------------------------------
# Top-level decision procedure
# ----------------------------------------------------------------------


def check_layered_termination_impl(
    protocol: PopulationProtocol,
    strategy: str = "auto",
    max_layers: int | None = None,
    materialize_rankings: bool = False,
    theory: str = "auto",
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> LayeredTerminationResult:
    """Decide LayeredTermination (implementation; see the deprecated shim below).

    ``strategy`` is one of:

    * ``"auto"`` — try, in order: the protocol's partition hint, the trivial
      single layer, the SCC heuristic, and finally the exact SMT search;
    * ``"hint"`` — only check the protocol-supplied partition;
    * ``"single"`` — only try the one-layer partition;
    * ``"scc"`` — only try the enabling-graph heuristic;
    * ``"smt"`` — only run the exact search (Appendix D.1 encoding).

    With ``jobs > 1`` (or a parallel ``engine``) and the ``"auto"``
    strategy, the partition searches run as a portfolio on the worker pool
    (see :func:`_check_layered_termination_portfolio`); single strategies
    and ``jobs=1`` use the serial path below unchanged.

    Note that ``"auto"`` with the default ``max_layers`` bound is sound but
    not complete: a negative answer means that no partition with at most
    ``max_layers`` layers was found, not that none exists.
    """
    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    if context is None:
        context = AnalysisContext(protocol)
    owned_engine = False
    if engine is None and jobs > 1:
        from repro.engine.scheduler import VerificationEngine

        engine = VerificationEngine(jobs=jobs)
        owned_engine = True
    if engine is not None and engine.parallel and strategy == "auto":
        try:
            return _check_layered_termination_portfolio(
                protocol, engine, max_layers, materialize_rankings, theory, backend, context,
                incremental=incremental,
            )
        finally:
            if owned_engine:
                engine.shutdown()
    if owned_engine:
        engine.shutdown()

    start = time.perf_counter()
    statistics: dict = {
        "strategy": None,
        "backend": resolve_backend_name(backend),
        "incremental": resolve_incremental(incremental),
    }

    def finish(result: LayeredTerminationResult, used_strategy: str) -> LayeredTerminationResult:
        statistics["strategy"] = used_strategy
        statistics["time"] = time.perf_counter() - start
        result.statistics = {**statistics, **result.statistics}
        return result

    attempts: list[tuple[str, OrderedPartition | None]] = []
    if strategy in ("auto", "hint") and protocol.partition_hint is not None:
        attempts.append(("hint", protocol.partition_hint))
    if strategy in ("auto", "single"):
        attempts.append(("single", single_layer_partition(protocol)))
    if strategy in ("auto", "scc"):
        attempts.append(("scc", scc_heuristic_partition(protocol, context=context)))

    for used_strategy, partition in attempts:
        if partition is None:
            continue
        # Cooperative checkpoint between strategy attempts (service jobs).
        monitor.check_cancelled()
        result = check_partition(
            protocol, partition, materialize_rankings=materialize_rankings, strategy=used_strategy
        )
        if result.holds:
            return finish(result, used_strategy)
        if strategy == "hint":
            return finish(result, used_strategy)

    if strategy in ("auto", "smt"):
        partition = smt_partition_search(
            protocol, max_layers=max_layers, theory=theory, backend=backend, context=context,
            incremental=incremental,
        )
        if partition is not None:
            result = check_partition(
                protocol, partition, materialize_rankings=materialize_rankings, strategy="smt"
            )
            if result.holds:
                return finish(result, "smt")
        return finish(
            LayeredTerminationResult(
                holds=False,
                reason="no ordered partition found within the layer bound",
            ),
            "smt",
        )

    return finish(
        LayeredTerminationResult(holds=False, reason=f"strategy {strategy!r} found no valid partition"),
        strategy,
    )


def check_layered_termination(
    protocol: PopulationProtocol,
    strategy: str = "auto",
    max_layers: int | None = None,
    materialize_rankings: bool = False,
    theory: str = "auto",
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
) -> LayeredTerminationResult:
    """Deprecated: use :class:`repro.api.Verifier` instead.

    ``Verifier().check(protocol, properties=["layered_termination"])``
    returns the same verdict and certificate in report form; this shim
    delegates to the same implementation, so verdicts are identical.
    """
    import warnings

    warnings.warn(
        "check_layered_termination() is deprecated; use repro.api.Verifier"
        " (Verifier().check(protocol, properties=['layered_termination']))",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_layered_termination_impl(
        protocol,
        strategy=strategy,
        max_layers=max_layers,
        materialize_rankings=materialize_rankings,
        theory=theory,
        jobs=jobs,
        engine=engine,
        backend=backend,
    )
