"""A direct ILP solving loop (no SAT engine) for near-conjunctive systems.

The constraint systems produced by the pattern-based verification
strategies are *almost* purely conjunctive: the only boolean structure left
after the terminal-pattern factoring is a handful of two/three-literal
clauses from trap/siphon cuts.  For such systems the classical DPLL(T)
detour through a CNF conversion and a SAT engine is overhead: it is cheaper
to split the few disjunctions combinatorially and hand each resulting
*conjunction* of linear constraints straight to the integer-feasibility
backend (scipy's HiGHS MILP, or the exact branch-and-bound).

:class:`DirectILPSolver` implements exactly that loop behind the same
incremental interface as :class:`repro.smtlite.solver.Solver` (``int_var``,
``add``, ``push``/``pop``, ``check(assumptions=...)``,
``check_conjunction``), so the verification layer can swap one for the
other through the backend registry without changing a line:

1. the asserted formulas are normalised (NNF) and each is expanded into its
   *cases* — the conjunctions of atoms that satisfy it;
2. the cross product of the per-formula cases is enumerated depth-first in
   deterministic order, bounded by ``max_cases``;
3. each complete case is one memoized theory check; the first satisfiable
   case yields a model (re-verified exactly against every asserted
   formula), and if all cases are infeasible the system is unsatisfiable.

Systems whose case product exceeds the budget (the monolithic
StrongConsensus encoding, the Appendix D.1 partition search) are beyond
what a direct ILP attack can do; the solver then *falls back* to a lazily
constructed DPLL(T) mirror — unless built with ``fallback=False``, in which
case :class:`CaseBudgetExceeded` is raised and the caller (the portfolio
runner) picks another backend.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.smtlite.formula import (
    And,
    Atom,
    BoolConst,
    Formula,
    Or,
    to_nnf,
)
from repro.smtlite.solver import Model, SolverResult, SolverStatus
from repro.smtlite.terms import IntVar, LinearExpr
from repro.smtlite.theory import TheoryConstraint, TheoryError, default_theory_solver


class CaseBudgetExceeded(RuntimeError):
    """The boolean structure of the system exceeds the direct case budget."""


def _constraint_of(atom: Atom) -> TheoryConstraint:
    expr = atom.expr
    return TheoryConstraint.from_expr(expr.coefficients, expr.constant)


class DirectILPSolver:
    """Incremental direct-ILP solver with a DPLL(T) escape hatch.

    Parameters
    ----------
    theory:
        Theory backend preference (``"auto"``, ``"scipy"``, ``"exact"``) —
        the same strings the DPLL(T) solver accepts.
    max_cases:
        Budget on the case product per :meth:`check`; beyond it the solver
        falls back (or raises, with ``fallback=False``).
    fallback:
        Whether to build a DPLL(T) mirror when the budget is exceeded.
    """

    def __init__(self, theory: str = "auto", max_cases: int = 512, fallback: bool = True):
        self._theory_name = theory
        self._theory = default_theory_solver(theory)
        self.max_cases = int(max_cases)
        self._fallback_enabled = bool(fallback)
        self._bounds: dict[str, tuple[int | None, int | None]] = {}
        self._frames: list[list[Formula]] = [[]]
        #: Construction history of the *live* state, replayed into the
        #: DPLL(T) mirror the first time a fallback is needed; afterwards
        #: ops go to the mirror directly and the log stops.  Popping a
        #: scope truncates its ops (variable declarations survive — bounds
        #: are not scoped), so retractable CEGAR scopes do not accumulate.
        self._log: list[tuple] = []
        self._log_marks: list[int] = []
        self._mirror = None
        self._memo: dict[tuple, tuple] = {}
        self._max_memo = 4096
        #: Known-infeasible cores with the bounds of their variables at learn
        #: time: any case containing such a core (under the same bounds) is
        #: unsat without a theory call.  This is the direct loop's analogue
        #: of DPLL(T) clause learning — one conflict refutes whole subtrees
        #: of the case product, which is what keeps repeated UNSAT sweeps
        #: (the tail of every CEGAR refinement) from exhausting the budget.
        self._known_cores: list[tuple[frozenset[TheoryConstraint], dict]] = []
        self._max_known_cores = 512
        #: Memoized case expansions per formula (the persistent CEGAR loops
        #: re-check the same base formulas hundreds of times; expansion is
        #: pure, so one normalisation per distinct formula suffices).
        self._case_memo: dict[Formula, list[frozenset[TheoryConstraint]]] = {}
        self._max_case_memo = 4096
        self.statistics = {
            "checks": 0,
            "direct_checks": 0,
            "cases_explored": 0,
            "theory_checks": 0,
            "memo_hits": 0,
            "core_subsumptions": 0,
            "fallbacks": 0,
            "pushes": 0,
            "pops": 0,
            # Core retention across scopes: cores are content-keyed (the
            # constraint set plus the bounds at learn time), so a core whose
            # constraints all live in still-active scopes stays valid and is
            # deliberately NOT cleared on pop — the direct loop's analogue of
            # DPLL(T) lemmas surviving backtracking.  ``cores_learned``
            # counts admissions; ``cores_retained_across_pops`` accumulates
            # the live-core count observed at each pop.
            "cores_learned": 0,
            "cores_retained_across_pops": 0,
        }

    # ------------------------------------------------------------------
    # Problem construction (mirrors the smtlite Solver interface)
    # ------------------------------------------------------------------

    def _record(self, op: tuple) -> None:
        if self._mirror is not None:
            self._apply(self._mirror, op)
        elif self._fallback_enabled:
            self._log.append(op)

    @staticmethod
    def _apply(solver, op: tuple) -> None:
        kind = op[0]
        if kind == "var":
            solver.int_var(op[1], lower=op[2], upper=op[3])
        elif kind == "add":
            solver.add(op[1])
        elif kind == "push":
            solver.push()
        else:
            solver.pop()

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        """Declare (or re-declare) an integer variable with bounds and return it."""
        self._bounds[name] = (lower, upper)
        self._record(("var", name, lower, upper))
        return IntVar(name)

    def int_vars(
        self, names: Iterable[str], lower: int | None = 0, upper: int | None = None
    ) -> list[LinearExpr]:
        return [self.int_var(name, lower, upper) for name in names]

    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas (conjunctively, retractable in a scope)."""
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"expected a Formula, got {formula!r}")
            self._frames[-1].append(formula)
            self._record(("add", formula))

    def push(self) -> None:
        self._frames.append([])
        self._log_marks.append(len(self._log))
        self._record(("push",))
        self.statistics["pushes"] += 1

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise RuntimeError("pop() without a matching push()")
        self._frames.pop()
        mark = self._log_marks.pop()
        if self._mirror is not None:
            self._record(("pop",))
        else:
            # Drop the popped scope's ops from the replay log, keeping the
            # unscoped variable declarations made inside it.
            tail = self._log[mark:]
            del self._log[mark:]
            self._log.extend(op for op in tail if op[0] == "var")
        self.statistics["pops"] += 1
        if self._known_cores:
            retained = len(self._known_cores)
            self.statistics["cores_retained_across_pops"] += retained
            from repro.constraints.incremental import bump

            bump("cores_retained_across_pops", retained)
            bump("pops_with_live_cores")

    @property
    def num_scopes(self) -> int:
        return len(self._frames) - 1

    def _active_formulas(self) -> list[Formula]:
        return [formula for frame in self._frames for formula in frame]

    # ------------------------------------------------------------------
    # Case expansion
    # ------------------------------------------------------------------

    def _cases_of(self, formula: Formula) -> list[frozenset[TheoryConstraint]]:
        """The satisfying cases of an NNF formula, as conjunctions of atoms.

        Raises :class:`CaseBudgetExceeded` if the expansion outgrows the
        budget or meets structure a direct ILP attack cannot split
        (propositional variables).
        """
        if isinstance(formula, BoolConst):
            return [frozenset()] if formula.value else []
        if isinstance(formula, Atom):
            return [frozenset((_constraint_of(formula),))]
        if isinstance(formula, Or):
            cases: list[frozenset[TheoryConstraint]] = []
            for operand in formula.operands:
                cases.extend(self._cases_of(operand))
                if len(cases) > self.max_cases:
                    raise CaseBudgetExceeded(f"more than {self.max_cases} cases")
            return cases
        if isinstance(formula, And):
            cases = [frozenset()]
            for operand in formula.operands:
                operand_cases = self._cases_of(operand)
                cases = [
                    existing | branch for existing in cases for branch in operand_cases
                ]
                if len(cases) > self.max_cases:
                    raise CaseBudgetExceeded(f"more than {self.max_cases} cases")
            return cases
        raise CaseBudgetExceeded(f"structure not splittable directly: {type(formula).__name__}")

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        """Decide satisfiability of the asserted formulas (plus assumptions)."""
        self.statistics["checks"] += 1
        formulas = self._active_formulas() + list(assumptions)
        try:
            result = self._direct_check(formulas)
        except CaseBudgetExceeded:
            if not self._fallback_enabled:
                raise
            return self._fallback_check(assumptions)
        if result.status is SolverStatus.UNKNOWN and self._fallback_enabled:
            # A theory budget ran out on some case; the DPLL(T) mirror poses
            # smaller incremental queries and may still decide — UNKNOWN
            # must never depend on which backend happened to be selected.
            return self._fallback_check(assumptions)
        return result

    def _direct_check(self, formulas: Sequence[Formula]) -> SolverResult:
        self.statistics["direct_checks"] += 1
        case_lists: list[list[frozenset[TheoryConstraint]]] = []
        product_size = 1
        for formula in formulas:
            cases = self._case_memo.get(formula)
            if cases is None:
                cases = self._cases_of(to_nnf(formula))
                if len(self._case_memo) >= self._max_case_memo:
                    self._case_memo.pop(next(iter(self._case_memo)))
                self._case_memo[formula] = cases
            if not cases:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            if len(cases) > 1:  # empty/singleton factors do not grow the product
                product_size *= len(cases)
                if product_size > self.max_cases:
                    raise CaseBudgetExceeded(
                        f"case product {product_size} exceeds the budget {self.max_cases}"
                    )
            case_lists.append(cases)

        # Deterministic depth-first product: formulas in assertion order,
        # cases in expansion order.  Identical unions (common when many
        # formulas share atoms) are checked once.
        seen_unions: set[frozenset[TheoryConstraint]] = set()
        unknown = False

        def explore(index: int, union: frozenset[TheoryConstraint]) -> SolverResult | None:
            nonlocal unknown
            if index == len(case_lists):
                if union in seen_unions:
                    return None
                seen_unions.add(union)
                self.statistics["cases_explored"] += 1
                try:
                    satisfiable, model = self._check_case(union)
                except TheoryError:
                    unknown = True
                    return None
                if satisfiable:
                    built = self._build_model(model, formulas)
                    return SolverResult(
                        SolverStatus.SAT, model=built, statistics=dict(self.statistics)
                    )
                return None
            for branch in case_lists[index]:
                found = explore(index + 1, union | branch)
                if found is not None:
                    return found
            return None

        found = explore(0, frozenset())
        if found is not None:
            return found
        if unknown:
            return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))
        return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))

    def _check_case(
        self, union: frozenset[TheoryConstraint]
    ) -> tuple[bool, dict[str, int] | None]:
        constraints = sorted(union, key=repr)
        # Only the case's own variables matter (cf. Solver._effective_bounds):
        # small, stable memo keys that later unrelated declarations cannot
        # invalidate, and exactly what the theory answer can depend on.
        bounds: dict[str, tuple[int | None, int | None]] = {}
        for constraint in constraints:
            for name, _ in constraint.coefficients:
                if name not in bounds:
                    bounds[name] = self._bounds.get(name, (0, None))
        key = (union, frozenset(bounds.items()))
        cached = self._memo.get(key)
        if cached is not None:
            self.statistics["memo_hits"] += 1
            return cached

        # A case containing a known-infeasible core (learned under the same
        # bounds for the core's variables) is unsat without a theory call.
        for core, core_bounds in self._known_cores:
            if core <= union and all(
                bounds.get(name, (0, None)) == bound for name, bound in core_bounds.items()
            ):
                self.statistics["core_subsumptions"] += 1
                return (False, None)

        self.statistics["theory_checks"] += 1
        result = self._theory.check(constraints, bounds)
        value = (result.satisfiable, dict(result.model) if result.model else None)
        if len(self._memo) >= self._max_memo:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = value
        if not result.satisfiable and len(self._known_cores) < self._max_known_cores:
            core_indices = result.core if result.core else range(len(constraints))
            core = frozenset(constraints[index] for index in core_indices)
            core_bounds = {
                name: bounds.get(name, (0, None))
                for constraint in core
                for name, _ in constraint.coefficients
            }
            self._known_cores.append((core, core_bounds))
            self.statistics["cores_learned"] += 1
            from repro.constraints.incremental import bump

            bump("cores_learned")
        return value

    def _build_model(self, ints: dict[str, int] | None, formulas: Sequence[Formula]) -> Model:
        values = dict(ints or {})
        names = set(self._bounds)
        for formula in formulas:
            names.update(formula.int_variables())
        for name in names:
            if name not in values:
                lower, upper = self._bounds.get(name, (0, None))
                if lower is not None:
                    values[name] = int(lower)
                elif upper is not None and upper < 0:
                    values[name] = int(upper)
                else:
                    values[name] = 0
        model = Model(values, {})
        for formula in formulas:
            if not formula.evaluate(values, {}):
                raise RuntimeError(
                    "internal error: the direct-ILP model does not satisfy an asserted "
                    f"formula; formula={formula!r}"
                )
        return model

    def _fallback_check(self, assumptions: Sequence[Formula]) -> SolverResult:
        self.statistics["fallbacks"] += 1
        if self._mirror is None:
            from repro.smtlite.solver import Solver

            self._mirror = Solver(theory=self._theory_name)
            for op in self._log:
                self._apply(self._mirror, op)
            # From here on ops go to the mirror directly; the log is dead.
            self._log.clear()
        return self._mirror.check(assumptions=assumptions)

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        """Decide a pure conjunction of atoms with a single (memoized) theory call.

        Same contract as :meth:`repro.smtlite.solver.Solver.check_conjunction`:
        asserted formulas are not taken into account.
        """
        atoms: list[Atom] = []
        stack = list(formulas)
        while stack:
            formula = stack.pop()
            if isinstance(formula, Atom):
                atoms.append(formula)
            elif isinstance(formula, BoolConst):
                if not formula.value:
                    return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            elif isinstance(formula, And):
                stack.extend(formula.operands)
            else:
                raise TypeError(f"check_conjunction expects conjunctive formulas, got {formula!r}")
        union = frozenset(_constraint_of(atom) for atom in atoms)
        try:
            satisfiable, model = self._check_case(union)
        except TheoryError:
            return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))
        if satisfiable:
            return SolverResult(
                SolverStatus.SAT, model=Model(model or {}, {}), statistics=dict(self.statistics)
            )
        return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
