"""An exact rational simplex solver.

This is the from-scratch linear-programming core of the theory solver: a
two-phase primal simplex over ``fractions.Fraction`` using Bland's rule, so
it is immune to both rounding errors and cycling.  It is intentionally a
dense textbook implementation — the linear systems produced by the
verification engine are small to medium sized, and exactness matters more
than raw speed (large instances are routed to the scipy/HiGHS backend, whose
answers are re-verified exactly).

Features:

* variables with arbitrary lower/upper bounds (including free variables),
* ``<=``, ``>=`` and ``==`` constraints,
* minimisation or maximisation of a linear objective,
* detection of infeasibility and unboundedness,
* on infeasibility, an (over-approximating) *certificate* of the constraint
  rows that participate in the contradiction, used by the DPLL(T) engine to
  learn small conflict clauses.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPSolution:
    """Result of an LP solve."""

    status: LPStatus
    objective: Fraction | None = None
    values: dict[str, Fraction] = field(default_factory=dict)
    #: Indices (into the constraint list) of rows participating in an
    #: infeasibility certificate; ``None`` when the problem is feasible.
    infeasible_rows: list[int] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


@dataclass
class _Constraint:
    coefficients: dict[str, Fraction]
    sense: str
    rhs: Fraction


class LinearProgram:
    """A linear program over named variables with exact rational arithmetic."""

    def __init__(self) -> None:
        self._bounds: dict[str, tuple[Fraction | None, Fraction | None]] = {}
        self._constraints: list[_Constraint] = []
        self._objective: dict[str, Fraction] = {}
        self._maximize = False

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: int | Fraction | None = 0,
        upper: int | Fraction | None = None,
    ) -> str:
        """Declare a variable with the given bounds (default: non-negative)."""
        low = None if lower is None else Fraction(lower)
        high = None if upper is None else Fraction(upper)
        if low is not None and high is not None and low > high:
            raise ValueError(f"variable {name!r} has empty domain [{low}, {high}]")
        self._bounds[name] = (low, high)
        return name

    def has_variable(self, name: str) -> bool:
        return name in self._bounds

    def add_constraint(
        self, coefficients: Mapping[str, int | Fraction], sense: str, rhs: int | Fraction
    ) -> int:
        """Add ``sum coeff*var  <sense>  rhs`` and return the constraint index."""
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {sense!r}")
        cleaned: dict[str, Fraction] = {}
        for name, value in coefficients.items():
            if name not in self._bounds:
                self.add_variable(name)
            value = Fraction(value)
            if value != 0:
                cleaned[name] = value
        self._constraints.append(_Constraint(cleaned, sense, Fraction(rhs)))
        return len(self._constraints) - 1

    def set_objective(self, coefficients: Mapping[str, int | Fraction], maximize: bool = False) -> None:
        for name in coefficients:
            if name not in self._bounds:
                self.add_variable(name)
        self._objective = {name: Fraction(value) for name, value in coefficients.items() if value != 0}
        self._maximize = maximize

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variables(self) -> list[str]:
        return list(self._bounds)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self) -> LPSolution:
        """Solve the LP with a two-phase exact simplex."""
        tableau = _Tableau.build(self._bounds, self._constraints, self._objective, self._maximize)
        solution = tableau.solve()
        if solution.status is LPStatus.OPTIMAL:
            objective_value = sum(
                (coefficient * solution.values[name] for name, coefficient in self._objective.items()),
                Fraction(0),
            )
            solution.objective = objective_value
        return solution


class _Tableau:
    """Dense simplex tableau in standard form ``min c x, A x = b, x >= 0``."""

    def __init__(self) -> None:
        self.rows: list[list[Fraction]] = []  # each row: coefficients + rhs (last entry)
        self.row_origin: list[tuple[str, object]] = []  # ("constraint", index) or ("bound", var)
        self.basis: list[int] = []
        self.initial_basis: list[int] = []
        self.num_columns = 0
        self.column_names: list[tuple[str, object]] = []  # ("var+", name), ("var-", name), ("slack", i), ("art", i)
        self.costs: list[Fraction] = []
        self.offset = Fraction(0)  # constant shift of the objective due to bound substitution
        self.maximize = False
        self.var_decomposition: dict[str, dict[int, Fraction]] = {}
        self.var_shift: dict[str, Fraction] = {}

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        bounds: dict[str, tuple[Fraction | None, Fraction | None]],
        constraints: list[_Constraint],
        objective: dict[str, Fraction],
        maximize: bool,
    ) -> "_Tableau":
        tableau = cls()
        tableau.maximize = maximize

        # 1. Variable substitution to non-negative variables.
        #    x = shift + sum(column_coefficient * column)
        columns: list[tuple[str, object]] = []
        extra_rows: list[tuple[dict[int, Fraction], str, Fraction, tuple[str, object]]] = []

        def new_column(kind: str, payload: object) -> int:
            columns.append((kind, payload))
            return len(columns) - 1

        for name, (low, high) in bounds.items():
            decomposition: dict[int, Fraction] = {}
            shift = Fraction(0)
            if low is not None:
                column = new_column("var+", name)
                decomposition[column] = Fraction(1)
                shift = low
                if high is not None:
                    extra_rows.append(({column: Fraction(1)}, "<=", high - low, ("bound", name)))
            elif high is not None:
                # Only an upper bound: substitute x = high - y with y >= 0.
                column = new_column("var-", name)
                decomposition[column] = Fraction(-1)
                shift = high
            else:
                positive = new_column("var+", name)
                negative = new_column("var-", name)
                decomposition[positive] = Fraction(1)
                decomposition[negative] = Fraction(-1)
            tableau.var_decomposition[name] = decomposition
            tableau.var_shift[name] = shift

        # 2. Rows for the constraints (in terms of the new columns).
        raw_rows: list[tuple[dict[int, Fraction], str, Fraction, tuple[str, object]]] = []
        for index, constraint in enumerate(constraints):
            row: dict[int, Fraction] = {}
            rhs = constraint.rhs
            for name, coefficient in constraint.coefficients.items():
                rhs -= coefficient * tableau.var_shift[name]
                for column, factor in tableau.var_decomposition[name].items():
                    row[column] = row.get(column, Fraction(0)) + coefficient * factor
            raw_rows.append((row, constraint.sense, rhs, ("constraint", index)))
        raw_rows.extend(extra_rows)

        # 3. Slack variables for inequalities; normalise to equality rows.
        slack_columns: dict[int, int] = {}
        for row_index, (row, sense, rhs, origin) in enumerate(raw_rows):
            if sense == "==":
                continue
            column = new_column("slack", row_index)
            slack_columns[row_index] = column

        structural_count = len(columns)

        # 4. Assemble the dense matrix, making all right-hand sides non-negative.
        dense_rows: list[list[Fraction]] = []
        row_origin: list[tuple[str, object]] = []
        for row_index, (row, sense, rhs, origin) in enumerate(raw_rows):
            dense = [Fraction(0)] * structural_count
            for column, value in row.items():
                dense[column] = value
            if sense == "<=":
                dense[slack_columns[row_index]] = Fraction(1)
            elif sense == ">=":
                dense[slack_columns[row_index]] = Fraction(-1)
            if rhs < 0:
                dense = [-value for value in dense]
                rhs = -rhs
            dense.append(rhs)
            dense_rows.append(dense)
            row_origin.append(origin)

        # 5. Artificial variables: one per row lacking an obvious basic column.
        basis: list[int] = []
        artificial_columns: list[int] = []
        for row_index, dense in enumerate(dense_rows):
            basic_column = None
            # A slack column with coefficient +1 can start in the basis.
            for column in range(structural_count):
                if columns[column][0] == "slack" and dense[column] == 1:
                    # Must be the only row using this slack (true by construction).
                    basic_column = column
                    break
            if basic_column is None:
                column_index = structural_count + len(artificial_columns)
                artificial_columns.append(column_index)
                basic_column = column_index
            basis.append(basic_column)

        total_columns = structural_count + len(artificial_columns)
        for row_index, dense in enumerate(dense_rows):
            rhs = dense.pop()
            dense.extend([Fraction(0)] * (total_columns - structural_count))
            if basis[row_index] >= structural_count:
                dense[basis[row_index]] = Fraction(1)
            dense.append(rhs)

        for column_index in range(structural_count, total_columns):
            columns.append(("art", column_index))

        tableau.rows = dense_rows
        tableau.row_origin = row_origin
        tableau.basis = basis
        tableau.initial_basis = list(basis)
        tableau.column_names = columns
        tableau.num_columns = total_columns

        # 6. Objective in terms of the new columns (phase 2 costs).
        costs = [Fraction(0)] * total_columns
        offset = Fraction(0)
        sign = Fraction(-1) if maximize else Fraction(1)
        for name, coefficient in objective.items():
            offset += coefficient * tableau.var_shift.get(name, Fraction(0))
            for column, factor in tableau.var_decomposition.get(name, {}).items():
                costs[column] += sign * coefficient * factor
        tableau.costs = costs
        tableau.offset = offset
        return tableau

    # ------------------------------------------------------------------
    # Simplex machinery
    # ------------------------------------------------------------------

    def _pivot(self, pivot_row: int, pivot_column: int, objective_row: list[Fraction]) -> None:
        row = self.rows[pivot_row]
        pivot_value = row[pivot_column]
        inverse = Fraction(1) / pivot_value
        self.rows[pivot_row] = [value * inverse for value in row]
        row = self.rows[pivot_row]
        for other_index, other_row in enumerate(self.rows):
            if other_index == pivot_row:
                continue
            factor = other_row[pivot_column]
            if factor != 0:
                self.rows[other_index] = [
                    value - factor * row_value for value, row_value in zip(other_row, row)
                ]
        factor = objective_row[pivot_column]
        if factor != 0:
            for column in range(len(objective_row)):
                objective_row[column] -= factor * row[column]
        self.basis[pivot_row] = pivot_column

    def _reduced_objective_row(self, costs: list[Fraction]) -> list[Fraction]:
        """Objective row (reduced costs and negative objective value) for the given costs."""
        objective_row = list(costs) + [Fraction(0)]
        for row_index, column in enumerate(self.basis):
            cost = costs[column] if column < len(costs) else Fraction(0)
            if cost != 0:
                row = self.rows[row_index]
                for column_index in range(len(objective_row)):
                    objective_row[column_index] -= cost * row[column_index]
        return objective_row

    def _run_simplex(
        self, objective_row: list[Fraction], allowed_columns: list[int]
    ) -> LPStatus:
        """Run primal simplex with Bland's rule on the given objective row."""
        max_iterations = 20_000 + 50 * (len(self.rows) + self.num_columns)
        for _ in range(max_iterations):
            entering = None
            for column in allowed_columns:
                if objective_row[column] < 0:
                    entering = column
                    break
            if entering is None:
                return LPStatus.OPTIMAL
            leaving = None
            best_ratio: Fraction | None = None
            for row_index, row in enumerate(self.rows):
                coefficient = row[entering]
                if coefficient > 0:
                    ratio = row[-1] / coefficient
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[row_index] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row_index
            if leaving is None:
                return LPStatus.UNBOUNDED
            self._pivot(leaving, entering, objective_row)
        raise RuntimeError("simplex failed to converge (iteration limit reached)")

    # ------------------------------------------------------------------

    def solve(self) -> LPSolution:
        structural_count = sum(1 for kind, _ in self.column_names if kind != "art")
        artificial_columns = [
            index for index, (kind, _) in enumerate(self.column_names) if kind == "art"
        ]

        # ----- Phase 1: drive the artificial variables to zero.
        if artificial_columns:
            phase1_costs = [Fraction(0)] * self.num_columns
            for column in artificial_columns:
                phase1_costs[column] = Fraction(1)
            objective_row = self._reduced_objective_row(phase1_costs)
            allowed = list(range(self.num_columns))
            status = self._run_simplex(objective_row, allowed)
            if status is LPStatus.UNBOUNDED:  # pragma: no cover - phase 1 is always bounded
                raise RuntimeError("phase 1 of the simplex cannot be unbounded")
            infeasibility = -objective_row[-1]
            if infeasibility > 0:
                rows = self._infeasibility_certificate(objective_row, artificial_columns)
                return LPSolution(status=LPStatus.INFEASIBLE, infeasible_rows=rows)
            self._remove_artificials_from_basis(structural_count)

        # ----- Phase 2: optimise the real objective over structural columns.
        objective_row = self._reduced_objective_row(self.costs)
        allowed = [index for index in range(self.num_columns) if self.column_names[index][0] != "art"]
        status = self._run_simplex(objective_row, allowed)
        if status is LPStatus.UNBOUNDED:
            return LPSolution(status=LPStatus.UNBOUNDED)

        values = self._extract_solution()
        # The objective value is recomputed from the original coefficients by
        # the caller (LinearProgram.solve), which avoids sign bookkeeping here.
        return LPSolution(status=LPStatus.OPTIMAL, objective=None, values=values)

    # ------------------------------------------------------------------

    def _remove_artificials_from_basis(self, structural_count: int) -> None:
        """Pivot any artificial variable (necessarily at value 0) out of the basis."""
        objective_row = [Fraction(0)] * (self.num_columns + 1)
        for row_index, column in enumerate(self.basis):
            if self.column_names[column][0] != "art":
                continue
            pivot_column = None
            for candidate in range(structural_count):
                if self.rows[row_index][candidate] != 0:
                    pivot_column = candidate
                    break
            if pivot_column is not None:
                self._pivot(row_index, pivot_column, objective_row)
            # Otherwise the row is redundant; the artificial stays basic at 0,
            # which is harmless because phase 2 never lets it increase.

    def _infeasibility_certificate(
        self, objective_row: list[Fraction], artificial_columns: list[int]
    ) -> list[int]:
        """Constraint indices participating in the phase-1 infeasibility proof.

        The dual multiplier of row ``i`` equals ``1 - reduced_cost(artificial_i)``
        whenever row ``i`` received an artificial variable; rows whose
        multiplier is non-zero participate in the Farkas certificate.  Rows
        that never received an artificial variable (their slack started in
        the basis) get multiplier 0 and are therefore never reported.  The
        caller re-verifies the certificate, so over-approximation is safe.
        """
        multipliers: dict[int, Fraction] = {}
        for row_index, column in enumerate(self.initial_basis):
            kind = self.column_names[column][0]
            if kind == "art":
                # Phase-1 cost of an artificial is 1, so reduced cost = 1 - y_i.
                multiplier = Fraction(1) - objective_row[column]
            else:
                # The row started with its slack (+1 coefficient) in the basis;
                # the slack has phase-1 cost 0, so reduced cost = -y_i.
                multiplier = -objective_row[column]
            if multiplier != 0:
                multipliers[row_index] = multiplier
        rows = []
        for row_index in multipliers:
            kind, payload = self.row_origin[row_index]
            if kind == "constraint":
                rows.append(int(payload))
        if not rows:
            # Fall back to "all constraint rows" (always a valid certificate).
            rows = [
                int(payload)
                for kind, payload in self.row_origin
                if kind == "constraint"
            ]
        return sorted(set(rows))

    def _extract_solution(self) -> dict[str, Fraction]:
        column_values = [Fraction(0)] * self.num_columns
        for row_index, column in enumerate(self.basis):
            column_values[column] = self.rows[row_index][-1]
        values: dict[str, Fraction] = {}
        for name, decomposition in self.var_decomposition.items():
            value = self.var_shift[name]
            for column, factor in decomposition.items():
                value += factor * column_values[column]
            values[name] = value
        return values

