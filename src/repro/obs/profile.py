"""Opt-in per-job profiling: wall/CPU phase timers and cProfile capture.

Both hooks are keyed off execution-only :class:`~repro.api.options
.VerificationOptions` flags (``profile``; ``trace`` shares the plumbing) —
excluded from cache keys like ``jobs``, because a profiled run returns the
same verdicts and artifacts as an unprofiled one.  The service embeds the
output under ``report.statistics["profile"]``; nothing here is imported on
any hot path unless profiling was requested.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager


class PhaseProfile:
    """Accumulates wall and CPU seconds per named phase of a job."""

    def __init__(self) -> None:
        self.phases: dict[str, dict] = {}

    @contextmanager
    def phase(self, name: str):
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            entry = self.phases.setdefault(name, {"wall": 0.0, "cpu": 0.0, "calls": 0})
            entry["wall"] += time.perf_counter() - wall_start
            entry["cpu"] += time.process_time() - cpu_start
            entry["calls"] += 1

    def to_dict(self) -> dict:
        return {
            name: {
                "wall_seconds": round(entry["wall"], 6),
                "cpu_seconds": round(entry["cpu"], 6),
                "calls": entry["calls"],
            }
            for name, entry in self.phases.items()
        }


class ProfileCapture:
    """Holds a finished ``cProfile`` run; renders the top functions."""

    def __init__(self, profiler: cProfile.Profile):
        self._profiler = profiler

    def top_functions(self, limit: int = 25) -> list[dict]:
        """The hottest functions by cumulative time, JSON-clean."""
        stats = pstats.Stats(self._profiler)
        rows = []
        for (filename, lineno, function), (cc, nc, tottime, cumtime, _callers) in (
            stats.stats.items()  # type: ignore[attr-defined]
        ):
            rows.append(
                {
                    "function": f"{filename}:{lineno}({function})",
                    "calls": nc,
                    "primitive_calls": cc,
                    "total_seconds": round(tottime, 6),
                    "cumulative_seconds": round(cumtime, 6),
                }
            )
        rows.sort(key=lambda row: row["cumulative_seconds"], reverse=True)
        return rows[:limit]


@contextmanager
def cprofile_capture():
    """Profile the calling thread for the block; yields a :class:`ProfileCapture`.

    ``cProfile`` instruments only the enabling thread, which is exactly the
    dispatcher thread a service job runs on — worker processes are covered
    by trace spans instead (profiling a process pool would need per-worker
    aggregation this deliberately does not attempt).
    """
    profiler = cProfile.Profile()
    capture = ProfileCapture(profiler)
    profiler.enable()
    try:
        yield capture
    finally:
        profiler.disable()
