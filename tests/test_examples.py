"""Smoke tests: every example script must run to completion.

The examples double as end-to-end integration tests of the public API (they
build protocols, run the verifier, the correctness checker, the simulator,
the explicit-state baseline and the Petri-net substrate).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load_and_run(script_name: str) -> None:
    path = EXAMPLES_DIR / script_name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script_name", EXAMPLE_SCRIPTS)
def test_example_runs(script_name, capsys):
    _load_and_run(script_name)
    output = capsys.readouterr().out
    assert output.strip(), f"{script_name} produced no output"
