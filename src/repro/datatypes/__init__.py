"""Basic data types shared by the whole library."""

from repro.datatypes.multiset import Multiset

__all__ = ["Multiset"]
