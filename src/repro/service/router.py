"""Sharded routing tier: one front end over N verification daemon replicas.

The :class:`JobRouter` shards work across a :class:`~repro.service.replicas.
ReplicaSupervisor` fleet by the *content hash* of the submitted protocol
(see :func:`repro.engine.cache.protocol_content_hash`) using rendezvous
(highest-random-weight) hashing::

    shard(h) = argmax over shard ids s of sha256(s + "|" + h)

Rendezvous hashing gives the two invariants the tier is built on:

* **Shard stability** — the same protocol always lands on the same replica,
  so each shard's result and simplify caches partition cleanly (a repeat
  submit is a cache hit *on its own shard*, never a miss on another).
* **Minimal disruption** — changing the fleet size moves only the keys
  whose argmax changed; no global reshuffle.

The router speaks exactly the wire protocols of
:class:`~repro.service.net.NetworkServer` (JSON-lines sessions and the HTTP
adapter on one dual-protocol listener): job-scoped ops are proxied to the
owning shard with job ids namespaced as ``shard:id`` (``s0:job-3``),
fleet-wide ops (``jobs``, ``stats``, healthz/readyz) are scatter-gathered,
and SIGTERM drain propagates to every replica.  When a replica dies
mid-job, :class:`~repro.service.client.VerificationClient` retries carry
the proxied op over to the restarted replica, whose journal recovery makes
the failover lossless for every acknowledged job.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import time
import weakref
from typing import Sequence

from repro.service.client import (
    ClientRetryPolicy,
    OverloadedError as ClientOverloadedError,
    RequestError,
    TransportError,
    VerificationClient,
)
from repro.obs.metrics import REGISTRY, label_snapshot, merge_snapshots
from repro.service.net import (
    NetworkServer,
    _CaptureMixin,
    _ConnectionWriter,
    _EventPump,
    _ServerStatsMixin,
)
from repro.service.replicas import ReplicaError, ReplicaSupervisor
from repro.service.serve import OverloadedError, ServeError, ServeSession

logger = logging.getLogger(__name__)

#: Process-wide mirror of the router's counters (``GET /metricsz``).
_ROUTER_EVENTS = REGISTRY.counter(
    "repro_router_events_total",
    "Routing-tier traffic: routed jobs, proxied ops, failover sheds",
)
#: Routed jobs by owning shard — the per-shard ``jobs_<shard>`` counters of
#: the ``stats`` payload as one labelled metric.
_ROUTED_JOBS = REGISTRY.counter(
    "repro_router_routed_jobs_total",
    "Jobs routed to each shard by rendezvous hashing",
)

#: How long a proxied op keeps retrying through a replica restart before the
#: router sheds it as retryable (journal recovery usually needs only a few
#: seconds; this bounds the worst crash loop).
FAILOVER_TIMEOUT_SECONDS = 60.0
#: Budget per shard for scatter-gather ops (jobs, stats).
GATHER_TIMEOUT_SECONDS = 10.0
#: Slice length for proxied long-poll ops (wait / events / result); the
#: router re-issues slices until the caller's own timeout runs out, so a
#: replica crash mid-wait is noticed within one slice.
LONG_POLL_SLICE_SECONDS = 10.0


def rendezvous_shard(content_hash: str, shard_ids: Sequence[str]) -> str:
    """The owning shard of ``content_hash`` under rendezvous hashing."""
    if not shard_ids:
        raise ValueError("rendezvous hashing needs at least one shard")
    return max(
        shard_ids,
        key=lambda sid: hashlib.sha256(f"{sid}|{content_hash}".encode("utf-8")).hexdigest(),
    )


def split_job_id(job_id: str) -> tuple[str, str]:
    """Split a namespaced ``shard:local`` job id; raises ServeError otherwise."""
    shard, sep, local = str(job_id).partition(":")
    if not sep or not shard or not local:
        raise ServeError(f"unknown job {job_id!r} (router job ids look like 's0:job-1')")
    return shard, local


class _ShardLink:
    """The router's connection pool to one shard.

    Clients are per-thread (a long-poll op parked on a shared socket would
    starve every other session routed to the same shard) and keyed by the
    replica's *generation*: a restarted replica announces a new ephemeral
    port, so stale clients are discarded and rebuilt from the supervisor's
    current address.  Live clients are also registered — weakly, so a dead
    connection thread's client is collected with it rather than pinned
    open — letting :meth:`close` release the sockets at router shutdown.
    """

    def __init__(
        self,
        shard_id: str,
        supervisor: ReplicaSupervisor,
        *,
        timeout: float,
        retry: ClientRetryPolicy,
    ):
        self.shard_id = shard_id
        self._supervisor = supervisor
        self._timeout = timeout
        self._retry = retry
        self._local = threading.local()
        self._lock = threading.Lock()
        self._clients: weakref.WeakSet[VerificationClient] = weakref.WeakSet()

    def _client(self) -> VerificationClient:
        host, port, generation = self._supervisor.address(self.shard_id)
        cached = getattr(self._local, "entry", None)
        if cached is not None and cached[0] == generation:
            return cached[1]
        if cached is not None:
            cached[1].close()
        client = VerificationClient(host, port, timeout=self._timeout, retry=self._retry)
        self._local.entry = (generation, client)
        with self._lock:
            self._clients.add(client)
        return client

    def invalidate(self) -> None:
        """Drop this thread's client (the replica went away mid-exchange)."""
        cached = getattr(self._local, "entry", None)
        if cached is not None:
            cached[1].close()
            self._local.entry = None

    def call(self, payload: dict, *, deadline: float, read_timeout: float | None = None) -> dict:
        """Proxy one op, failing over across replica restarts until ``deadline``.

        The client already retries transport faults against the *current*
        address; this loop re-reads the address between rounds so a restart
        onto a new port is picked up, and keeps going until the failover
        deadline.  Whatever response arrives — ok, error, overloaded — is
        returned verbatim for the caller to relay.
        """
        while True:
            try:
                return self._client().call(payload, read_timeout=read_timeout)
            except (TransportError, ReplicaError, OSError) as error:
                self.invalidate()
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"shard {self.shard_id!r} unreachable through the failover "
                        f"window: {error}"
                    ) from error
                time.sleep(0.2)

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients)
            self._clients.clear()
        for client in clients:
            client.close()


class JobRouter:
    """Routing state shared by every session of a :class:`RouterServer`."""

    def __init__(
        self,
        supervisor: ReplicaSupervisor,
        *,
        failover_timeout: float = FAILOVER_TIMEOUT_SECONDS,
        gather_timeout: float = GATHER_TIMEOUT_SECONDS,
        client_timeout: float = 120.0,
        retry: ClientRetryPolicy | None = None,
    ):
        self.supervisor = supervisor
        self.shard_ids = supervisor.shard_ids
        self.failover_timeout = failover_timeout
        self.gather_timeout = gather_timeout
        retry = retry or ClientRetryPolicy()
        self._links = {
            shard_id: _ShardLink(shard_id, supervisor, timeout=client_timeout, retry=retry)
            for shard_id in self.shard_ids
        }
        self._lock = threading.Lock()
        self.statistics = {"routed_jobs": 0, "proxied_ops": 0, "failover_sheds": 0}
        for shard_id in self.shard_ids:
            self.statistics[f"jobs_{shard_id}"] = 0

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    def shard_for(self, content_hash: str) -> str:
        return rendezvous_shard(content_hash, self.shard_ids)

    def routing_hash(self, request: dict) -> str:
        """The content hash a submit request routes by.

        Single submits hash the resolved protocol; batch submits hash the
        sorted per-protocol hashes, so the same batch always lands on the
        same shard (its cache) regardless of spec order.
        """
        from repro.engine.cache import protocol_content_hash
        from repro.io.loading import resolve_protocol_spec

        if "specs" in request:
            specs = request["specs"]
            if not isinstance(specs, (list, tuple)) or not specs:
                raise ServeError("submit 'specs' must be a non-empty list")
            hashes = sorted(
                protocol_content_hash(resolve_protocol_spec(spec)) for spec in specs
            )
            return hashlib.sha256("\n".join(hashes).encode("ascii")).hexdigest()
        if "protocol" in request:
            from repro.io.serialization import protocol_from_dict

            try:
                protocol = protocol_from_dict(request["protocol"])
            except Exception as error:
                raise ServeError(f"bad inline protocol: {error}") from error
            return protocol_content_hash(protocol)
        spec = request.get("spec")
        if not spec:
            raise ServeError("submit needs a 'spec', 'specs' or an inline 'protocol'")
        return protocol_content_hash(resolve_protocol_spec(spec))

    def count_routed(self, shard_id: str) -> None:
        with self._lock:
            self.statistics["routed_jobs"] += 1
            self.statistics[f"jobs_{shard_id}"] += 1
        _ROUTER_EVENTS.inc(event="routed_jobs")
        _ROUTED_JOBS.inc(shard=shard_id)

    def statistics_snapshot(self) -> dict:
        with self._lock:
            return dict(self.statistics)

    def metrics_payload(self) -> dict:
        """The fleet-wide metrics snapshot behind ``/metricsz``.

        Every reachable shard's registry snapshot (scatter-gathered over
        the ``metrics`` op) is stamped with a ``shard`` label, the router's
        own registry with ``shard="router"``, and the lot merged into one
        snapshot — every time series in the result says which process it
        came from, and the sum is rendered as a single valid Prometheus
        exposition (one HELP/TYPE per metric).  Unreachable shards are
        simply absent, mirroring the ``stats`` op's fleet view.
        """
        gathered = self.gather({"op": "metrics"})
        snapshots = []
        for shard_id in self.shard_ids:
            response = gathered.get(shard_id)
            if response and response.get("ok") and isinstance(response.get("metrics"), dict):
                snapshots.append(label_snapshot(response["metrics"], shard=shard_id))
        snapshots.append(label_snapshot(REGISTRY.snapshot(), shard="router"))
        return merge_snapshots(*snapshots)

    # ------------------------------------------------------------------
    # Proxying
    # ------------------------------------------------------------------

    def shard_call(
        self, shard_id: str, payload: dict, *, read_timeout: float | None = None
    ) -> dict:
        """One proxied op with failover; raises OverloadedError when a shard
        stays unreachable past the failover window (retryable — the caller
        should come back once the replica has restarted)."""
        link = self._links.get(shard_id)
        if link is None:
            raise ServeError(f"unknown shard {shard_id!r}")
        with self._lock:
            self.statistics["proxied_ops"] += 1
        _ROUTER_EVENTS.inc(event="proxied_ops")
        deadline = time.monotonic() + self.failover_timeout
        try:
            return link.call(payload, deadline=deadline, read_timeout=read_timeout)
        except TransportError as error:
            with self._lock:
                self.statistics["failover_sheds"] += 1
            _ROUTER_EVENTS.inc(event="failover_sheds")
            raise OverloadedError(str(error), retry_after=1.0) from error

    def gather(self, payload: dict) -> dict:
        """Scatter one op to every shard in parallel; unreachable shards map
        to ``None`` instead of sinking the whole fleet view."""
        results: dict = {shard_id: None for shard_id in self.shard_ids}

        def ask(shard_id: str) -> None:
            deadline = time.monotonic() + self.gather_timeout
            try:
                results[shard_id] = self._links[shard_id].call(
                    dict(payload), deadline=deadline, read_timeout=self.gather_timeout
                )
            except (TransportError, ClientOverloadedError, RequestError):
                results[shard_id] = None

        threads = [
            threading.Thread(target=ask, args=(shard_id,), name=f"repro-gather-{shard_id}")
            for shard_id in self.shard_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.gather_timeout + FAILOVER_TIMEOUT_SECONDS)
        return results

    def close(self) -> None:
        for link in self._links.values():
            link.close()


class RouterSession(ServeSession):
    """A serve session that proxies every op to the owning shard.

    Reuses :class:`ServeSession`'s request loop (framing, error mapping,
    overload responses) with every handler replaced by a proxying one; it
    holds no :class:`VerificationService` (``self.service`` is ``None``).
    """

    def __init__(self, router: JobRouter, input_stream=None, output_stream=None):
        super().__init__(None, input_stream, output_stream, owns_service=False)
        self.router = router
        self._streams: list[threading.Event] = []

    # -- lifecycle -----------------------------------------------------

    def close_session(self) -> None:
        """End the session: stop event pumps; jobs stay put.

        Every shard runs on a durable journal, so — exactly like the
        journalled branch of the base class — nothing is cancelled when a
        connection goes away: jobs remain pollable from other sessions.
        """
        if self._session_closed:
            return
        self._session_closed = True
        for stop in self._streams:
            stop.set()

    # -- helpers -------------------------------------------------------

    def _parse_job(self, request: dict) -> tuple[str, str]:
        job_id = request.get("job")
        if not job_id:
            raise ServeError("this op needs a 'job' id")
        shard, local = split_job_id(job_id)
        if shard not in self.router.shard_ids:
            raise ServeError(f"unknown job {job_id!r} (no shard {shard!r})")
        return shard, local

    @staticmethod
    def _forwardable(request: dict) -> dict:
        return {key: value for key, value in request.items() if key != "id"}

    def _namespace(self, shard: str, payload: dict) -> dict:
        """Rewrite shard-local job ids in a response to ``shard:id`` form."""
        if isinstance(payload.get("job"), str):
            payload["job"] = f"{shard}:{payload['job']}"
        events = payload.get("events")
        if isinstance(events, list):  # status responses carry an int count here
            for event in events:
                if isinstance(event, dict) and isinstance(event.get("job_id"), str):
                    event["job_id"] = f"{shard}:{event['job_id']}"
        return payload

    def _relay(self, shard: str, response: dict, request_id) -> bool:
        """Forward a shard's response verbatim (ids namespaced, ours re-stamped)."""
        payload = {
            key: value for key, value in response.items() if key not in ("id", "type")
        }
        self._namespace(shard, payload)
        payload.setdefault("ok", False)
        payload["shard"] = shard
        if request_id is not None:
            payload["id"] = request_id
        payload["type"] = "response"
        self._write(payload)
        return False

    def _proxy(self, request: dict, request_id) -> bool:
        """The generic job-scoped proxy: parse the namespace, forward, relay."""
        shard, local = self._parse_job(request)
        forward = self._forwardable(request)
        forward["job"] = local
        response = self.router.shard_call(shard, forward)
        return self._relay(shard, response, request_id)

    def _proxy_sliced(self, request: dict, *, finished) -> tuple[str, dict]:
        """Proxy a blocking op (wait/events) in bounded slices.

        A proxied long poll must not park on one shard exchange for
        minutes: the slice bounds how long a dead replica can hold the op
        before failover kicks in, and ``finished(response)`` says when the
        shard's answer is final.  The caller's own ``timeout`` (None =
        forever) is honoured across slices.  Returns ``(shard, response)``
        for the handler to relay.
        """
        shard, local = self._parse_job(request)
        timeout = request.get("timeout")
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            slice_seconds = (
                LONG_POLL_SLICE_SECONDS
                if remaining is None
                else min(LONG_POLL_SLICE_SECONDS, remaining)
            )
            forward = self._forwardable(request)
            forward["job"] = local
            forward["timeout"] = slice_seconds
            response = self.router.shard_call(
                shard, forward, read_timeout=slice_seconds + 30.0
            )
            if not response.get("ok") or finished(response):
                return shard, response
            if remaining is not None and remaining <= slice_seconds:
                return shard, response

    # -- handlers ------------------------------------------------------

    def _handle_submit(self, request: dict, request_id) -> bool:
        self._admit_job(request)
        content_hash = self.router.routing_hash(request)
        shard = self.router.shard_for(content_hash)
        forward = self._forwardable(request)
        stream = bool(forward.pop("stream", False))
        response = self.router.shard_call(shard, forward)
        if response.get("ok"):
            self.router.count_routed(shard)
            local_id = response.get("job", "")
            self._session_jobs.append(f"{shard}:{local_id}")
            if stream:
                self._start_stream(shard, local_id)
        return self._relay(shard, response, request_id)

    def _handle_status(self, request: dict, request_id) -> bool:
        return self._proxy(request, request_id)

    def _handle_cancel(self, request: dict, request_id) -> bool:
        return self._proxy(request, request_id)

    def _handle_events(self, request: dict, request_id) -> bool:
        if not request.get("wait"):
            return self._proxy(request, request_id)
        since = int(request.get("since", 0))

        def finished(response: dict) -> bool:
            return bool(response.get("events")) or response.get("next", since) > since or (
                response.get("status") in ("done", "failed", "cancelled")
            )

        shard, response = self._proxy_sliced(request, finished=finished)
        return self._relay(shard, response, request_id)

    def _handle_wait(self, request: dict, request_id) -> bool:
        shard, response = self._proxy_sliced(
            request, finished=lambda response: bool(response.get("finished"))
        )
        return self._relay(shard, response, request_id)

    def _handle_result(self, request: dict, request_id) -> bool:
        shard, local = self._parse_job(request)
        if request.get("wait", True):
            # Settle the job with sliced waits first, then fetch the result
            # in one non-blocking op (the result payload itself can be big;
            # no reason to re-ship it per slice).
            wait_request = {"op": "wait", "job": request["job"]}
            if "timeout" in request:
                wait_request["timeout"] = request["timeout"]
            _, probe = self._proxy_sliced(
                wait_request, finished=lambda response: bool(response.get("finished"))
            )
            if not probe.get("ok"):
                return self._relay(shard, probe, request_id)
        forward = self._forwardable(request)
        forward["job"] = local
        forward["wait"] = False
        forward.pop("timeout", None)
        response = self.router.shard_call(shard, forward)
        return self._relay(shard, response, request_id)

    def _handle_jobs(self, request: dict, request_id) -> bool:
        gathered = self.router.gather({"op": "jobs"})
        jobs: list = []
        shards: dict = {}
        for shard_id in self.router.shard_ids:
            response = gathered.get(shard_id)
            if response is None or not response.get("ok"):
                shards[shard_id] = "unreachable"
                continue
            shards[shard_id] = "ok"
            for entry in response.get("jobs", []):
                entry = dict(entry)
                entry["job"] = f"{shard_id}:{entry.get('job', '')}"
                entry["shard"] = shard_id
                jobs.append(entry)
        self._respond(request_id, op="jobs", jobs=jobs, shards=shards)
        return False

    def _stats_payload(self) -> dict:
        gathered = self.router.gather({"op": "stats"})
        shards = {
            shard_id: (response or {}).get("stats")
            for shard_id, response in gathered.items()
        }
        # Fleet-level view of the incremental-IR counters: the per-shard
        # learned-core retention rates side by side (a shard whose rate
        # collapses is rebuilding solver state it should be reusing), plus
        # summed scope/core counters across reachable shards.
        retention = {}
        totals: dict = {}
        for shard_id, stats in shards.items():
            block = (stats or {}).get("incremental")
            if not block:
                continue
            retention[shard_id] = block.get("core_retention_rate")
            for counter, value in block.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[counter] = totals.get(counter, 0) + value
        totals.pop("core_retention_rate", None)
        return {
            "router": self.router.statistics_snapshot(),
            "supervisor": dict(self.router.supervisor.statistics),
            "fleet": self.router.supervisor.fleet_status(),
            "shards": shards,
            "incremental": {"core_retention_by_shard": retention, "totals": totals},
        }

    def _handle_stats(self, request: dict, request_id) -> bool:
        self._respond(request_id, op="stats", stats=self._stats_payload())
        return False

    def _metrics_payload(self) -> dict:
        return self.router.metrics_payload()

    def _handle_metrics(self, request: dict, request_id) -> bool:
        self._respond(request_id, op="metrics", metrics=self._metrics_payload())
        return False

    def _handle_shutdown(self, request: dict, request_id) -> bool:
        # Ends this session only; fleet shutdown is the drain path's job
        # (SIGTERM on the router propagates to every replica).
        self._respond(request_id, op="shutdown")
        return True

    _HANDLERS = {
        "submit": _handle_submit,
        "status": _handle_status,
        "events": _handle_events,
        "cancel": _handle_cancel,
        "wait": _handle_wait,
        "result": _handle_result,
        "jobs": _handle_jobs,
        "stats": _handle_stats,
        "metrics": _handle_metrics,
        "shutdown": _handle_shutdown,
    }

    # -- event streaming -----------------------------------------------

    def _stream_raw(self, payload: dict) -> None:
        """Deliver one proxied stream line (overridden by the net session
        to go through the bounded event pump)."""
        self._write(payload)

    def _start_stream(self, shard: str, local_id: str) -> None:
        """Pump one job's events from its shard into this session.

        The shard's push stream belongs to the shard's own connection, so
        the router long-polls the ``events`` op instead (short slices, a
        stop flag checked between slices) and pushes each event here with
        the job id namespaced — the client sees exactly the stream a
        direct connection would have shown.
        """
        stop = threading.Event()
        self._streams.append(stop)
        namespaced = f"{shard}:{local_id}"

        def pump() -> None:
            since = 0
            while not stop.is_set():
                try:
                    response = self.router.shard_call(
                        shard,
                        {
                            "op": "events",
                            "job": local_id,
                            "since": since,
                            "wait": True,
                            "timeout": 2.0,
                        },
                        read_timeout=32.0,
                    )
                except (OverloadedError, ServeError):
                    return  # the shard stayed down past failover; stop quietly
                if not response.get("ok"):
                    return
                events = response.get("events", [])
                for event in events:
                    if isinstance(event, dict) and isinstance(event.get("job_id"), str):
                        event["job_id"] = namespaced
                    if stop.is_set():
                        return
                    self._stream_raw({"type": "event", "job": namespaced, "event": event})
                since = response.get("next", since + len(events))
                if not events and response.get("status") in ("done", "failed", "cancelled"):
                    return

        threading.Thread(
            target=pump, name=f"repro-router-stream-{namespaced}", daemon=True
        ).start()


class _RouterNetSession(_ServerStatsMixin, RouterSession):
    """One TCP connection's router session (mirrors ``_NetSession``)."""

    def __init__(self, server: "RouterServer", writer: _ConnectionWriter, pump: _EventPump):
        super().__init__(server.router)
        self._server = server
        self._writer = writer
        self._pump = pump

    def _write(self, payload: dict) -> None:
        self._writer.write_line(payload, kind="response")

    def _stream_raw(self, payload: dict) -> None:
        self._pump.push(payload)


class _RouterCaptureSession(_ServerStatsMixin, _CaptureMixin, RouterSession):
    """A response-capturing router session (one HTTP request's op)."""

    def __init__(self, server: "RouterServer"):
        super().__init__(server.router)
        self._server = server
        self.responses: list = []


class RouterServer(NetworkServer):
    """The router's network front end: the ``NetworkServer`` machinery
    (dual-protocol listener, connection shedding, drain choreography) with
    every session proxying through a :class:`JobRouter` instead of serving
    a local :class:`VerificationService`."""

    def __init__(self, router: JobRouter, host: str = "127.0.0.1", port: int = 0, *, limits=None):
        super().__init__(None, host, port, limits=limits, owns_service=True)
        self.router = router

    # -- session factories ---------------------------------------------

    def _make_session(self, writer: _ConnectionWriter, pump: _EventPump) -> ServeSession:
        return _RouterNetSession(self, writer, pump)

    def _make_capture(self):
        return _RouterCaptureSession(self)

    def metrics_payload(self) -> dict:
        return self.router.metrics_payload()

    # -- admission and health ------------------------------------------

    def check_job_admission(self) -> None:
        retry_after = self.limits.retry_after_seconds
        if self._draining.is_set():
            raise OverloadedError(
                "router is draining; submit elsewhere or retry later", retry_after
            )
        limit = self.limits.max_pending_jobs
        if limit:
            pending = self.router.supervisor.fleet_pending()
            if pending >= limit * len(self.router.shard_ids):
                self._count("shed_jobs")
                raise OverloadedError(
                    f"fleet job queues are full ({pending} pending); retry later",
                    retry_after,
                )

    def _ping_payload(self) -> dict:
        with self._lock:
            connections = len(self._connections)
        return {
            "accepting": not self._draining.is_set(),
            "connections": connections,
            "pending_jobs": self.router.supervisor.fleet_pending(),
            "shards": len(self.router.shard_ids),
        }

    def _healthz_payload(self) -> dict:
        return {
            "ok": True,
            "status": "alive",
            "shards": self.router.supervisor.fleet_status(),
        }

    def _readyz_payload(self) -> tuple[int, dict]:
        if self._draining.is_set():
            return 503, {"ok": False, "status": "draining"}
        fleet = self.router.supervisor.fleet_status()
        ready = [shard_id for shard_id, state in fleet.items() if state["alive"]]
        if not ready:
            return 503, {"ok": False, "status": "no shard alive", "shards": fleet}
        return 200, {
            "ok": True,
            "status": "ready",
            "shards_ready": len(ready),
            **self._ping_payload(),
        }

    # -- drain ----------------------------------------------------------

    def _close_service(self, budget: float) -> bool:
        """Drain propagation: SIGTERM every replica and wait out their own
        journal-preserving drains; then release the shard connections."""
        graceful = self.router.supervisor.drain(timeout=max(1.0, budget))
        self.router.close()
        return graceful


def announce(server: RouterServer) -> str:
    """The router's ``listening`` line (same shape as serve's, plus shards)."""
    host, port = server.address
    return json.dumps(
        {
            "type": "listening",
            "host": host,
            "port": port,
            "protocols": ["jsonl", "http"],
            "shards": len(server.router.shard_ids),
        }
    )
