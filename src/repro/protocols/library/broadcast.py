"""The broadcast protocol of Clément et al. [8].

A single transition ``(1, 0) -> (1, 1)`` spreads an alarm: the protocol
computes whether at least one agent started in state ``1``.
"""

from __future__ import annotations

from repro.presburger.predicates import ThresholdPredicate
from repro.protocols.protocol import PopulationProtocol, Transition


def broadcast_protocol() -> PopulationProtocol:
    """Build the 2-state broadcast protocol (predicate ``#one >= 1``)."""
    spread = Transition.make((1, 0), (1, 1), name="spread")
    # "#one >= 1" written as a threshold predicate: -#one < 0.
    predicate = ThresholdPredicate({"one": -1, "zero": 0}, 0)
    return PopulationProtocol(
        states=[0, 1],
        transitions=[spread],
        input_alphabet=["zero", "one"],
        input_map={"zero": 0, "one": 1},
        output_map={0: 0, 1: 1},
        name="broadcast",
        metadata={"predicate": predicate, "source": "Clément et al. [8]"},
    )
