"""The unified verification session object.

One :class:`Verifier` owns one :class:`~repro.api.options.VerificationOptions`
bundle and exposes the whole pipeline of the paper through two methods::

    with Verifier(jobs=4) as verifier:
        report = verifier.check(protocol, properties=["ws3", "correctness"])
        batch = verifier.check_many(protocols)

``check`` returns a lossless :class:`~repro.api.report.VerificationReport`;
``check_many`` fans whole protocols over the worker pool and serves repeat
instances from the content-addressed result cache.

Since the service layer landed, both methods are thin **synchronous facades**
over :class:`~repro.service.service.VerificationService`: ``check`` submits
one job, waits, and returns its report — so the session API and the job API
produce identical verdicts by construction (asserted by the parity tests),
and every report carries the job's progress-event trail in its statistics.
Callers that want the asynchronous surface (non-blocking submission,
priorities, streaming events, cancellation) use the service directly.

The deprecated per-property entry points (``verify_ws3``,
``check_strong_consensus``, ...) remain thin shims over the same underlying
implementations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.api.options import VerificationOptions
from repro.api.properties import property_checker
from repro.api.report import VerificationReport

#: The default property set of a bare ``verifier.check(protocol)``.
DEFAULT_PROPERTIES = ("ws3",)


class Verifier:
    """A verification session: validated options + reusable engine + cache.

    Parameters
    ----------
    options:
        A :class:`VerificationOptions` bundle; omitted fields come from the
        defaults.  Keyword overrides are applied on top, so
        ``Verifier(jobs=4, theory="exact")`` works without building the
        options object by hand.
    engine:
        An existing :class:`~repro.engine.scheduler.VerificationEngine` to
        schedule on (left running on :meth:`close`); mutually exclusive
        with ``jobs > 1`` in the options, which makes the session create —
        and own — a pool lazily on first use.
    cache:
        An existing :class:`~repro.engine.cache.ResultCache`; by default a
        cache is opened at ``options.cache_dir`` (if set) on first
        ``check_many`` call.
    """

    def __init__(self, options: VerificationOptions | None = None, *, engine=None, cache=None, **overrides):
        from repro.service.service import VerificationService

        # The service validates the options/engine combination and owns the
        # engine, the cache and the per-protocol analysis contexts; the
        # session is a synchronous view onto it.
        self._service = VerificationService(options, engine=engine, cache=cache, **overrides)
        self.options = self._service.options
        self._closed = False

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the session's own worker pool (if one was created)."""
        self._service.close()
        self._closed = True

    def __enter__(self) -> "Verifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        # Safety net for sessions used without the context manager: an
        # owned worker pool must not outlive the session object.
        try:
            self.close()
        except Exception:
            pass

    @property
    def service(self):
        """The underlying :class:`~repro.service.service.VerificationService`.

        The asynchronous surface of the same session: ``submit`` returns a
        :class:`~repro.service.jobs.JobHandle` with streaming events and
        cooperative cancellation, sharing this session's engine, cache and
        analysis contexts.
        """
        return self._service

    @property
    def engine(self):
        """The session's engine (``None`` until a parallel check runs)."""
        return self._service.engine

    @property
    def _owns_engine(self) -> bool:
        return self._service._owns_engine

    @property
    def _engine(self):
        return self._service._engine

    @property
    def _cache(self):
        return self._service._cache

    def analysis_context(self, protocol):
        """The session's shared :class:`~repro.constraints.context.AnalysisContext`.

        One context per protocol (by content hash), reused across every
        :meth:`check` call of the session.
        """
        return self._service.analysis_context(protocol)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check(
        self,
        protocol,
        properties: Sequence[str] | str | None = None,
        *,
        predicate=None,
        on_event=None,
    ) -> VerificationReport:
        """Check the requested properties of one protocol (synchronously).

        ``properties`` names come from the registry
        (:func:`repro.api.properties.available_properties`); the default is
        ``["ws3"]``.  ``predicate`` overrides the protocol's documented
        ``metadata["predicate"]`` for the ``"correctness"`` property.
        ``on_event`` receives each :class:`~repro.service.events.ProgressEvent`
        of the underlying job as it happens (the CLI's ``--progress``).
        """
        if self._closed:
            raise RuntimeError("this Verifier session is closed")
        handle = self._service.submit(
            protocol, properties=properties, predicate=predicate, subscriber=on_event
        )
        return self._synchronous_result(handle)

    def check_many(
        self,
        protocols: Iterable,
        properties: Sequence[str] | str | None = None,
        *,
        on_event=None,
    ):
        """Check many protocols, with across-protocol fan-out and caching.

        Returns a :class:`~repro.engine.batch.BatchResult` whose items carry
        full :class:`VerificationReport` objects.  Protocols appearing more
        than once (by content hash) are verified once; with a cache
        configured, known verdicts are served from disk.
        """
        if self._closed:
            raise RuntimeError("this Verifier session is closed")
        handle = self._service.submit_batch(protocols, properties=properties, subscriber=on_event)
        return self._synchronous_result(handle)

    @staticmethod
    def _synchronous_result(handle):
        """Wait for a facade job and surface its outcome exactly as serial code would.

        A failed job re-raises the *original* exception (not a wrapper), so
        error behaviour is indistinguishable from the pre-service sessions.
        An interrupt while waiting (Ctrl-C) cancels the job before
        propagating, so the session's ``close()`` — which drains pending
        jobs — returns at the next cooperative checkpoint instead of
        blocking for the remainder of the check.
        """
        from repro.service.jobs import JobStatus

        try:
            handle.wait()
        except BaseException:
            handle.cancel()
            raise
        if handle.status() is JobStatus.FAILED:
            raise handle._job.error
        return handle.result()


# Re-exported for backwards compatibility: property name validation happens
# in the service layer now, but callers imported this from here.
__all__ = ["DEFAULT_PROPERTIES", "Verifier", "property_checker"]
