"""A process-global metrics registry with a Prometheus text encoder.

Design constraints, in decreasing order of importance:

* **Mergeable snapshots.**  The router scatter-gathers per-shard snapshots
  and must be able to sum them into a fleet view; a shard may also restart
  and re-report from zero.  Counters and histogram buckets are therefore
  plain sums, histogram bucket *bounds* are fixed at construction (the
  default log-scale grid is identical in every process), and
  :func:`merge_snapshots` is associative and commutative — asserted by the
  hypothesis tests.
* **Cheap on the hot path.**  One lock per registry, dictionary increments
  under it; a counter bump is a dict lookup and an integer add.  Histograms
  use :func:`bisect.bisect_left` over a small fixed bound tuple.
* **Low-cardinality labels.**  Labels are keyword arguments at observation
  time; each distinct label combination materialises one series.  Callers
  own the cardinality budget (ops, event names, shard ids — never job ids
  or protocol hashes).

Naming convention (documented in ARCHITECTURE.md): every metric is
``repro_<component>_<what>[_total|_seconds]``; ``*_total`` for counters,
``*_seconds`` for latency histograms.  Families of related counters share
one metric name with an ``event`` label (``repro_result_cache_events_total
{event="hit"}``) rather than one metric per event.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left

#: The fixed log-scale histogram grid: four buckets per decade from 100 µs
#: to 100 s (solver checks at the short end, whole jobs at the long end).
#: Identical in every process by construction, which is what makes shard
#: snapshots mergeable bucket-by-bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 10) for exponent in range(-16, 9)
)


def _labels_key(labels: dict) -> str:
    """The canonical JSON series key of one label combination."""
    return json.dumps(labels, sort_keys=True, separators=(",", ":"))


def _labels_from_key(key: str) -> dict:
    return json.loads(key) if key else {}


class _Metric:
    """Common machinery: one named metric holding labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[str, object] = {}

    def _key(self, labels: dict) -> str:
        for value in labels.values():
            if not isinstance(value, (str, int, float, bool)):
                raise TypeError(f"label values must be scalars, got {value!r}")
        return _labels_key({key: str(value) for key, value in labels.items()})

    def series(self) -> dict:
        """Snapshot of every series (label-key → JSON-clean value)."""
        with self._lock:
            return {key: self._copy_value(value) for key, value in self._series.items()}

    @staticmethod
    def _copy_value(value):
        return value

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class Counter(_Metric):
    """A monotonically increasing sum (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def total(self) -> float:
        """The sum over every label combination."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A point-in-time value; fleet merges sum it (queue depths add up)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[self._key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket histogram over a fixed bound grid.

    A series value is ``{"buckets": [per-bound counts...], "sum": float,
    "count": int}`` where ``buckets[i]`` counts observations ``<=
    bounds[i]`` *non*-cumulatively (the encoder re-cumulates); the overflow
    bucket is implicit in ``count``.  Element-wise addition of two series
    with the same bounds is exact, which is the merge the router relies on.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.RLock, bounds=DEFAULT_BUCKETS):
        super().__init__(name, help, lock)
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")

    def observe(self, value: float, **labels) -> None:
        if value != value or value in (math.inf, -math.inf):
            return  # NaN/inf would poison sums; drop silently
        key = self._key(labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"buckets": [0] * len(self.bounds), "sum": 0.0, "count": 0}
                self._series[key] = series
            if index < len(self.bounds):
                series["buckets"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series["count"] if series else 0

    @staticmethod
    def _copy_value(value):
        return {"buckets": list(value["buckets"]), "sum": value["sum"], "count": value["count"]}


class MetricsRegistry:
    """A named collection of metrics with an atomic snapshot.

    ``counter``/``gauge``/``histogram`` are idempotent get-or-create calls
    (module-level metric handles and late lookups both work); re-registering
    a name as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} is already registered as a {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "", bounds=DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, bounds=bounds)

    def snapshot(self) -> dict:
        """A JSON-clean, mergeable snapshot of every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in metrics:
            block = {"help": metric.help, "series": metric.series()}
            if isinstance(metric, Histogram):
                block["bounds"] = list(metric.bounds)
                out["histograms"][metric.name] = block
            elif isinstance(metric, Gauge):
                out["gauges"][metric.name] = block
            else:
                out["counters"][metric.name] = block
        return out

    def reset(self) -> None:
        """Zero every series (tests and bench deltas); metrics stay registered."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


#: The process-global registry every subsystem reports into.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# Snapshot algebra: merge and relabel (the router's fleet aggregation)
# ----------------------------------------------------------------------


def _empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(*snapshots: dict) -> dict:
    """Sum snapshots series-wise; associative and commutative.

    Counters and gauges add; histogram series add bucket-by-bucket (bounds
    must agree — they always do, the grid is fixed at construction).  Series
    with different label sets stay distinct, which is how per-shard labelled
    series survive the fleet merge unmixed.
    """
    merged = _empty_snapshot()
    for snapshot in snapshots:
        if not snapshot:
            continue
        for section in ("counters", "gauges"):
            for name, block in snapshot.get(section, {}).items():
                target = merged[section].setdefault(
                    name, {"help": block.get("help", ""), "series": {}}
                )
                if not target["help"]:
                    target["help"] = block.get("help", "")
                for key, value in block.get("series", {}).items():
                    target["series"][key] = target["series"].get(key, 0) + value
        for name, block in snapshot.get("histograms", {}).items():
            bounds = list(block.get("bounds", ()))
            target = merged["histograms"].setdefault(
                name, {"help": block.get("help", ""), "bounds": bounds, "series": {}}
            )
            if not target["help"]:
                target["help"] = block.get("help", "")
            if target["bounds"] != bounds:
                raise ValueError(f"histogram {name!r} bound grids differ across snapshots")
            for key, value in block.get("series", {}).items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = {
                        "buckets": list(value["buckets"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                else:
                    existing["buckets"] = [
                        a + b for a, b in zip(existing["buckets"], value["buckets"])
                    ]
                    existing["sum"] += value["sum"]
                    existing["count"] += value["count"]
    return merged


def label_snapshot(snapshot: dict, **labels) -> dict:
    """A copy of ``snapshot`` with ``labels`` stamped onto every series.

    The stamp wins on collision — a router labelling shard snapshots must
    own the ``shard`` label even if a shard (wrongly) set one itself.
    """
    stamp = {key: str(value) for key, value in labels.items()}
    out = _empty_snapshot()
    for section in ("counters", "gauges", "histograms"):
        for name, block in snapshot.get(section, {}).items():
            new_block = {key: value for key, value in block.items() if key != "series"}
            new_block["series"] = {}
            for key, value in block.get("series", {}).items():
                merged_labels = {**_labels_from_key(key), **stamp}
                new_key = _labels_key(merged_labels)
                new_block["series"][new_key] = Histogram._copy_value(value) if (
                    section == "histograms"
                ) else value
            out[section][name] = new_block
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition (and a validating parser for tests/CI)
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []

    def header(name: str, help: str, kind: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        block = snapshot["counters"][name]
        header(name, block.get("help", ""), "counter")
        for key in sorted(block.get("series", {})):
            labels = _labels_from_key(key)
            lines.append(f"{name}{_render_labels(labels)} {_format_value(block['series'][key])}")
    for name in sorted(snapshot.get("gauges", {})):
        block = snapshot["gauges"][name]
        header(name, block.get("help", ""), "gauge")
        for key in sorted(block.get("series", {})):
            labels = _labels_from_key(key)
            lines.append(f"{name}{_render_labels(labels)} {_format_value(block['series'][key])}")
    for name in sorted(snapshot.get("histograms", {})):
        block = snapshot["histograms"][name]
        header(name, block.get("help", ""), "histogram")
        bounds = block.get("bounds", [])
        for key in sorted(block.get("series", {})):
            labels = _labels_from_key(key)
            series = block["series"][key]
            cumulative = 0
            for bound, bucket in zip(bounds, series["buckets"]):
                cumulative += bucket
                bucket_labels = {**labels, "le": _format_value(float(bound))}
                lines.append(f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}")
            inf_labels = {**labels, "le": "+Inf"}
            lines.append(f"{name}_bucket{_render_labels(inf_labels)} {series['count']}")
            lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(series['sum'])}")
            lines.append(f"{name}_count{_render_labels(labels)} {series['count']}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict:
    """A small validating parser for the exposition format.

    Returns ``{metric_name: [(labels_dict, value), ...]}``; raises
    ``ValueError`` on any malformed line.  This is what the CI scrape and
    the load-harness assertions use — it is a *validator*, not a full
    client (no timestamp or exemplar support, which we never emit).
    """
    samples: dict[str, list] = {}
    typed: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"malformed comment line {lineno}: {line!r}")
            if parts[1] == "TYPE":
                if parts[2] in typed:
                    raise ValueError(f"duplicate TYPE for {parts[2]!r} at line {lineno}")
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line {lineno}: {line!r}")
        raw = match.group("labels")
        labels: dict[str, str] = {}
        if raw:
            consumed = 0
            for label_match in _LABEL_RE.finditer(raw):
                labels[label_match.group(1)] = (
                    label_match.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed = label_match.end()
            if raw[consumed:].strip(", ") :
                raise ValueError(f"malformed labels at line {lineno}: {raw!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
