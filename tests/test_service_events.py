"""Event-schema round-trips: every ProgressEvent variant is lossless.

The satellite guarantee of the service PR: ``to_dict``/``from_dict`` (and a
full JSON hop) reproduce each variant exactly, unknown tags and fields are
rejected, and the human rendering never crashes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.service.events import (
    EVENT_TYPES,
    BackendDegraded,
    BackendSelected,
    CacheHit,
    JobFinished,
    JobQueued,
    JobRecovered,
    JobStarted,
    ProgressEvent,
    PropertyFinished,
    PropertyStarted,
    RefinementFound,
    SubproblemCompleted,
    SubproblemDispatched,
    SubproblemRetried,
    describe_event,
    event_from_dict,
)

#: One fully populated instance of every variant (no field left at default,
#: so the round-trip test cannot pass by accident).
SAMPLES = [
    JobQueued(
        job_id="job-1",
        seq=0,
        timestamp=1234.5,
        protocol_name="majority",
        properties=["ws3", "correctness"],
        priority=7,
        kind="check",
    ),
    JobStarted(job_id="job-1", seq=1, timestamp=1234.6),
    PropertyStarted(job_id="job-1", seq=2, timestamp=1234.7, property="ws3", protocol_name="majority"),
    PropertyFinished(
        job_id="job-1", seq=3, timestamp=1234.8, property="ws3", protocol_name="majority", verdict="holds"
    ),
    SubproblemDispatched(job_id="job-1", seq=4, timestamp=1234.9, kind="consensus-pair", index=3, wave=2),
    SubproblemCompleted(
        job_id="job-1",
        seq=5,
        timestamp=1235.0,
        kind="consensus-pair",
        index=3,
        verdict="unsat",
        time_seconds=0.25,
    ),
    SubproblemRetried(
        job_id="job-1",
        seq=6,
        timestamp=1235.05,
        kind="consensus-pair",
        index=3,
        attempt=2,
        delay_seconds=0.05,
        reason="a worker process died while solving consensus-pair[3]",
    ),
    RefinementFound(
        job_id="job-1", seq=6, timestamp=1235.1, refinement="trap", states=["'A'", "'B'"], iteration=4
    ),
    BackendSelected(job_id="job-1", seq=7, timestamp=1235.2, backend="smtlite", scope="options"),
    BackendDegraded(
        job_id="job-1",
        seq=7,
        timestamp=1235.25,
        backend="z3",
        fallback="smtlite",
        reason="FaultInjected: fault injected at backend.check",
    ),
    JobRecovered(job_id="job-1", seq=8, timestamp=1235.28, had_started=True),
    CacheHit(job_id="job-1", seq=8, timestamp=1235.3, protocol_name="majority", protocol_hash="ab" * 32),
    JobFinished(
        job_id="job-1",
        seq=9,
        timestamp=1235.4,
        outcome="done",
        ok=True,
        error="",
        time_seconds=1.5,
    ),
]


def test_every_variant_is_sampled():
    assert {type(sample).TYPE for sample in SAMPLES} == set(EVENT_TYPES)


@pytest.mark.parametrize("event", SAMPLES, ids=[type(s).TYPE for s in SAMPLES])
def test_dict_round_trip_is_lossless(event):
    clone = event_from_dict(event.to_dict())
    assert clone == event
    assert type(clone) is type(event)


@pytest.mark.parametrize("event", SAMPLES, ids=[type(s).TYPE for s in SAMPLES])
def test_json_round_trip_is_lossless(event):
    payload = json.dumps(event.to_dict(), sort_keys=True)
    assert event_from_dict(json.loads(payload)) == event


@pytest.mark.parametrize("event", SAMPLES, ids=[type(s).TYPE for s in SAMPLES])
def test_describe_event_renders(event):
    line = describe_event(event)
    assert isinstance(line, str) and event.job_id in line


def test_stamping_preserves_payload():
    event = PropertyStarted(job_id="job-9", property="ws3", protocol_name="p")
    stamped = event.stamped(seq=12, timestamp=99.5)
    assert stamped.seq == 12 and stamped.timestamp == 99.5
    assert stamped.property == "ws3" and stamped.job_id == "job-9"


def test_unknown_event_type_rejected():
    with pytest.raises(ValueError, match="unknown progress event"):
        event_from_dict({"event": "nonsense", "job_id": "job-1"})


def test_unknown_fields_rejected():
    payload = JobStarted(job_id="job-1").to_dict()
    payload["surprise"] = 1
    with pytest.raises(ValueError, match="unknown"):
        event_from_dict(payload)


def test_variants_have_distinct_tags_and_default_construct():
    # A variant must stay constructible from just a job id (emitters rely on
    # defaults) and its fields must be JSON-clean types by annotation.
    for tag, variant in EVENT_TYPES.items():
        event = variant(job_id="job-x")
        assert event.TYPE == tag
        for f in dataclasses.fields(event):
            value = getattr(event, f.name)
            assert isinstance(value, (str, int, float, bool, list, type(None)))


def test_base_event_is_not_registered():
    assert ProgressEvent.TYPE not in EVENT_TYPES
