"""Typed, JSON-round-trippable progress events of the verification service.

Every observable stage of a verification job — queued, started, property
transitions, engine subproblems crossing wave boundaries, trap/siphon
refinements, backend selection, cache hits, completion — is one
:class:`ProgressEvent` variant.  Events are frozen dataclasses whose fields
are JSON-clean by construction, so ``event_from_dict(event.to_dict())``
compares equal to the original and a JSON hop (``json.loads(json.dumps(...))``)
is lossless too; that is what lets the ``repro-verify serve`` daemon stream
them as JSON lines and lets reports embed the full trail in their statistics.

This module deliberately imports nothing from the engine or the API layer:
the engine scheduler constructs events at wave boundaries, the service
routes them, and neither direction creates an import cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Version tag of the event wire format; bumped on schema changes.
EVENT_SCHEMA = "repro-progress-event/1"


@dataclass(frozen=True)
class ProgressEvent:
    """Base of all progress events.

    ``seq`` (the per-job sequence number) and ``timestamp`` (Unix seconds)
    are stamped by the job's event log when the event is recorded; events
    constructed by emitters carry the defaults until then.
    """

    job_id: str
    seq: int = 0
    timestamp: float = 0.0

    #: Wire-format tag of the variant; overridden by every subclass.
    TYPE = "?"

    def to_dict(self) -> dict:
        """Lossless plain-dictionary form (JSON-clean)."""
        payload = {"event": self.TYPE}
        for f in dataclasses.fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ProgressEvent":
        """Inverse of :meth:`to_dict` for this variant (tag is ignored)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known - {"event"}
        if unknown:
            raise ValueError(f"unknown {cls.TYPE} event fields: {sorted(unknown)}")
        return cls(**{key: value for key, value in data.items() if key != "event"})

    def stamped(self, seq: int, timestamp: float) -> "ProgressEvent":
        """A copy carrying its position in the job's event log."""
        return dataclasses.replace(self, seq=seq, timestamp=timestamp)


@dataclass(frozen=True)
class JobQueued(ProgressEvent):
    """A job entered the service's priority queue."""

    protocol_name: str = ""
    properties: list = field(default_factory=list)
    priority: int = 0
    kind: str = "check"  # "check" or "batch"

    TYPE = "job_queued"


@dataclass(frozen=True)
class JobStarted(ProgressEvent):
    """A dispatcher picked the job up and began verifying."""

    TYPE = "job_started"


@dataclass(frozen=True)
class PropertyStarted(ProgressEvent):
    """One requested property check began."""

    property: str = ""
    protocol_name: str = ""

    TYPE = "property_started"


@dataclass(frozen=True)
class PropertyFinished(ProgressEvent):
    """One requested property check produced a verdict."""

    property: str = ""
    protocol_name: str = ""
    verdict: str = ""

    TYPE = "property_finished"


@dataclass(frozen=True)
class SubproblemDispatched(ProgressEvent):
    """The engine handed one subproblem envelope to the worker pool."""

    kind: str = ""
    index: int = 0
    wave: int = 0

    TYPE = "subproblem_dispatched"


@dataclass(frozen=True)
class SubproblemCompleted(ProgressEvent):
    """A worker (or the inline path) returned a subproblem result."""

    kind: str = ""
    index: int = 0
    verdict: str = ""
    time_seconds: float = 0.0

    TYPE = "subproblem_completed"


@dataclass(frozen=True)
class RefinementFound(ProgressEvent):
    """The CEGAR loop learned a new trap or siphon constraint."""

    refinement: str = ""  # "trap" or "siphon"
    states: list = field(default_factory=list)  # sorted state reprs
    iteration: int = 0

    TYPE = "refinement_found"


@dataclass(frozen=True)
class BackendSelected(ProgressEvent):
    """A solver backend was selected for (part of) the job."""

    backend: str = ""
    scope: str = ""  # what the backend is serving, e.g. a property name

    TYPE = "backend_selected"


@dataclass(frozen=True)
class BackendDegraded(ProgressEvent):
    """A solver backend crashed mid-check and was demoted for the session.

    Work continues on ``fallback`` (the next backend of the declared
    degradation chain); new solver instances skip the demoted backend
    entirely until :func:`~repro.constraints.backends.reset_backend_health`.
    """

    backend: str = ""
    fallback: str = ""
    reason: str = ""

    TYPE = "backend_degraded"


@dataclass(frozen=True)
class SubproblemRetried(ProgressEvent):
    """A lost subproblem (worker death, deadline) was resubmitted.

    ``attempt`` is the upcoming attempt number (2 for the first retry);
    ``delay_seconds`` is the backoff quarantine that preceded resubmission.
    """

    kind: str = ""
    index: int = 0
    attempt: int = 0
    delay_seconds: float = 0.0
    reason: str = ""

    TYPE = "subproblem_retried"


@dataclass(frozen=True)
class JobRecovered(ProgressEvent):
    """A journalled job was re-enqueued after a service restart.

    ``had_started`` distinguishes jobs interrupted mid-run from jobs that
    never left the queue before the previous process died.
    """

    had_started: bool = False

    TYPE = "job_recovered"


@dataclass(frozen=True)
class CacheHit(ProgressEvent):
    """A verdict was served from the content-addressed result cache."""

    protocol_name: str = ""
    protocol_hash: str = ""

    TYPE = "cache_hit"


@dataclass(frozen=True)
class JobFinished(ProgressEvent):
    """The job left the service (successfully, cancelled, or in error).

    ``outcome`` is ``"done"`` (a result exists — the verdict itself may
    still be a failure, see ``ok``), ``"cancelled"`` or ``"error"``.
    """

    outcome: str = "done"
    ok: bool | None = None
    error: str = ""
    time_seconds: float = 0.0

    TYPE = "job_finished"


#: Every concrete event variant, by wire tag.
EVENT_TYPES: dict[str, type[ProgressEvent]] = {
    variant.TYPE: variant
    for variant in (
        JobQueued,
        JobStarted,
        PropertyStarted,
        PropertyFinished,
        SubproblemDispatched,
        SubproblemCompleted,
        SubproblemRetried,
        RefinementFound,
        BackendSelected,
        BackendDegraded,
        CacheHit,
        JobRecovered,
        JobFinished,
    )
}


def event_from_dict(data: dict) -> ProgressEvent:
    """Decode any event dictionary produced by :meth:`ProgressEvent.to_dict`."""
    tag = data.get("event")
    variant = EVENT_TYPES.get(tag)
    if variant is None:
        raise ValueError(f"unknown progress event type {tag!r}; known: {sorted(EVENT_TYPES)}")
    return variant.from_dict(data)


def describe_event(event: ProgressEvent) -> str:
    """One human-readable line per event (the CLI's ``--progress`` rendering)."""
    prefix = f"[{event.job_id}]"
    if isinstance(event, JobQueued):
        return f"{prefix} queued {event.kind} of {event.protocol_name or '?'} (priority {event.priority})"
    if isinstance(event, JobStarted):
        return f"{prefix} started"
    if isinstance(event, PropertyStarted):
        return f"{prefix} checking {event.property} on {event.protocol_name}"
    if isinstance(event, PropertyFinished):
        return f"{prefix} {event.property}: {event.verdict}"
    if isinstance(event, SubproblemDispatched):
        return f"{prefix} dispatched {event.kind}[{event.index}] (wave {event.wave})"
    if isinstance(event, SubproblemCompleted):
        return f"{prefix} completed {event.kind}[{event.index}]: {event.verdict}"
    if isinstance(event, SubproblemRetried):
        return (
            f"{prefix} retrying {event.kind}[{event.index}] "
            f"(attempt {event.attempt}): {event.reason}"
        )
    if isinstance(event, RefinementFound):
        return f"{prefix} refinement: {event.refinement} over {{{', '.join(event.states)}}}"
    if isinstance(event, BackendSelected):
        return f"{prefix} backend {event.backend} ({event.scope})"
    if isinstance(event, BackendDegraded):
        return f"{prefix} backend {event.backend} degraded to {event.fallback}: {event.reason}"
    if isinstance(event, CacheHit):
        return f"{prefix} cache hit for {event.protocol_name}"
    if isinstance(event, JobRecovered):
        detail = "interrupted mid-run" if event.had_started else "still queued"
        return f"{prefix} recovered from journal ({detail})"
    if isinstance(event, JobFinished):
        suffix = f" in {event.time_seconds:.3f}s" if event.time_seconds else ""
        return f"{prefix} finished: {event.outcome}{suffix}"
    return f"{prefix} {event.TYPE}"  # pragma: no cover - future variants
