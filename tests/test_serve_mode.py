"""End-to-end tests of the ``repro-verify serve`` JSON-lines daemon.

The acceptance scenario of the service PR: a serve session submits two
jobs, streams events for both, cancels one, and receives the other's
lossless JSON report — all over stdin/stdout of a real subprocess.  The
in-process tests below drive :class:`ServeSession` directly for the
protocol details (polling, error handling, batch submits).
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys

import pytest

from repro.api.report import VerificationReport
from repro.service import ServeSession, VerificationService

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run_session(requests, **service_kwargs):
    """Drive one ServeSession in-process; returns the parsed output lines."""
    stdin = io.StringIO("\n".join(json.dumps(request) for request in requests) + "\n")
    stdout = io.StringIO()
    service = VerificationService(**service_kwargs)
    exit_code = ServeSession(service, stdin, stdout).run()
    assert exit_code == 0
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


def responses_by_id(lines):
    return {line["id"]: line for line in lines if line["type"] == "response" and "id" in line}


class TestServeSession:
    def test_submit_stream_cancel_and_lossless_result(self):
        """The acceptance scenario, against the in-process session."""
        lines = run_session(
            [
                {"op": "submit", "spec": "majority", "stream": True, "id": 1},
                # Lower priority, so it stays queued behind job-1 on the one
                # dispatcher — cancellation hits it before it starts.
                {"op": "submit", "spec": "broadcast", "stream": True, "priority": -1, "id": 2},
                {"op": "cancel", "job": "job-2", "id": 3},
                {"op": "result", "job": "job-1", "wait": True, "id": 4},
                {"op": "wait", "job": "job-2", "id": 5},
                {"op": "status", "job": "job-2", "id": 6},
                {"op": "shutdown", "id": 7},
            ]
        )
        responses = responses_by_id(lines)
        assert all(response["ok"] for response in responses.values())
        assert responses[1]["job"] == "job-1" and responses[2]["job"] == "job-2"
        assert responses[3]["cancelled"] is True
        assert responses[6]["status"] == "cancelled"

        # Both jobs streamed events.
        streamed = {"job-1": [], "job-2": []}
        for line in lines:
            if line["type"] == "event":
                streamed[line["job"]].append(line["event"]["event"])
        assert streamed["job-1"][0] == "job_queued" and streamed["job-1"][-1] == "job_finished"
        assert "property_finished" in streamed["job-1"]
        assert streamed["job-2"] == ["job_queued", "job_finished"]

        # The surviving job's report is lossless.
        report = VerificationReport.from_dict(responses[4]["report"])
        assert report.is_ws3
        assert report.to_dict() == responses[4]["report"]

    def test_events_polling_and_status(self):
        lines = run_session(
            [
                {"op": "submit", "spec": "broadcast", "properties": ["layered_termination"], "id": 1},
                {"op": "wait", "job": "job-1", "id": 2},
                {"op": "events", "job": "job-1", "since": 0, "id": 3},
                {"op": "events", "job": "job-1", "since": 2, "id": 4},
                {"op": "status", "job": "job-1", "id": 5},
                {"op": "jobs", "id": 6},
                {"op": "shutdown", "id": 7},
            ]
        )
        responses = responses_by_id(lines)
        full = responses[3]["events"]
        assert [event["event"] for event in full][0] == "job_queued"
        assert full[-1]["event"] == "job_finished"
        assert responses[4]["events"] == full[2:]
        assert responses[4]["next"] == len(full)
        assert responses[5]["status"] == "done"
        assert responses[6]["jobs"][0]["job"] == "job-1"

    def test_batch_submit_over_serve(self):
        lines = run_session(
            [
                {
                    "op": "submit",
                    "specs": ["majority", "majority", "broadcast"],
                    "properties": ["layered_termination"],
                    "id": 1,
                },
                {"op": "result", "job": "job-1", "wait": True, "id": 2},
                {"op": "shutdown", "id": 3},
            ]
        )
        responses = responses_by_id(lines)
        assert responses[1]["kind"] == "batch"
        batch = responses[2]["batch"]
        assert len(batch["items"]) == 3
        assert batch["statistics"]["duplicates"] == 1
        for item in batch["items"]:
            VerificationReport.from_dict(item["report"])  # lossless payloads

    def test_bad_requests_yield_error_responses_not_crashes(self):
        lines = run_session(
            [
                {"op": "submit", "id": 1},  # no spec/protocol
                {"op": "submit", "spec": "no-such-family", "id": 2},
                {"op": "status", "job": "job-99", "id": 3},
                {"op": "no-such-op", "id": 4},
                "not json at all",
                # Wrongly *typed* fields must yield error responses too.
                {"op": "submit", "spec": "majority", "properties": 5, "id": 8},
                {"op": "submit", "spec": "majority", "priority": {}, "id": 9},
                {"op": "submit", "spec": "broadcast", "properties": ["layered_termination"], "id": 5},
                {"op": "result", "job": "job-1", "id": 6},
                {"op": "shutdown", "id": 7},
            ]
        )
        responses = responses_by_id(lines)
        for request_id in (1, 2, 3, 4, 8, 9):
            assert responses[request_id]["ok"] is False
        # The bad line produced an un-id'd error response...
        anonymous = [
            line for line in lines if line["type"] == "response" and not line.get("ok") and "id" not in line
        ]
        assert anonymous
        # ...and the session kept serving afterwards.
        assert responses[6]["ok"] and responses[6]["report"]["protocol"] == "broadcast"

    def test_inline_protocol_submission(self):
        from repro.io.serialization import protocol_to_dict
        from repro.protocols.library import broadcast_protocol

        lines = run_session(
            [
                {
                    "op": "submit",
                    "protocol": protocol_to_dict(broadcast_protocol()),
                    "properties": ["layered_termination"],
                    "id": 1,
                },
                {"op": "result", "job": "job-1", "id": 2},
                {"op": "shutdown", "id": 3},
            ]
        )
        responses = responses_by_id(lines)
        report = VerificationReport.from_dict(responses[2]["report"])
        assert report.holds("layered_termination")

    def test_eof_ends_the_session(self):
        lines = run_session([{"op": "submit", "spec": "broadcast", "id": 1}])
        assert responses_by_id(lines)[1]["ok"]


@pytest.mark.parametrize("extra_args", [[], ["--workers", "2"]])
def test_serve_subprocess_end_to_end(extra_args, tmp_path):
    """The real daemon: ``python -m repro.cli serve`` over pipes."""
    script = "\n".join(
        json.dumps(request)
        for request in [
            {"op": "submit", "spec": "majority", "stream": True, "id": 1},
            {"op": "submit", "spec": "broadcast", "stream": True, "priority": -1, "id": 2},
            {"op": "cancel", "job": "job-2", "id": 3},
            {"op": "result", "job": "job-1", "wait": True, "id": 4},
            {"op": "wait", "job": "job-2", "id": 5},
            {"op": "shutdown", "id": 6},
        ]
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", *extra_args],
        input=script + "\n",
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    lines = [json.loads(line) for line in proc.stdout.splitlines()]
    responses = responses_by_id(lines)
    assert responses[1]["ok"] and responses[4]["ok"]
    report = VerificationReport.from_dict(responses[4]["report"])
    assert report.is_ws3 and report.to_dict() == responses[4]["report"]
    events = [line for line in lines if line["type"] == "event"]
    assert {line["job"] for line in events} >= {"job-1"}
    # With one worker the low-priority job is cancelled while queued; with
    # two workers it may have started (or even finished) first — any
    # terminal status is acceptable, the session must just answer.
    assert responses[5]["finished"] is True
