"""Durable write-ahead journal of verification jobs.

The journal is the crash-safety backbone of the service: every externally
visible job transition is appended to ``journal.jsonl`` — one JSON object
per line — *before* the in-memory state changes, and each append is
flushed and fsynced, so a service killed at any instant (``kill -9``, OOM,
power loss) can reconstruct its queue on restart:

``submitted``
    The full job payload: kind, priority, properties, the protocol(s)
    themselves (serialised losslessly) and the documented predicate, so a
    recovered service can re-run the job without the original caller.
``started``
    A dispatcher picked the job up.  Purely informational for recovery —
    a started-but-unfinished job is re-enqueued exactly like a queued one
    (verification is deterministic and side-effect-free, so re-running
    from scratch is always sound) — but it lets operators distinguish
    jobs that were interrupted mid-run from jobs that never ran.
``finished``
    The terminal status plus the lossless result payload (report or batch
    dictionary) or the error string.  Recovery serves these from the
    journal without re-verifying anything.

Replay (:meth:`JobJournal.load`) folds the lines last-wins into one state
per job id, preserving submission order.  A torn final line — the process
died mid-append — is counted and skipped: by write-ahead ordering the torn
record's job is simply in its previous state, which is exactly the
conservative answer.

The journal is append-only and single-writer (the owning service); it is
*not* a cache — results are keyed by job id, not by protocol content, and
a fresh journal directory starts a fresh history.

Append-only logs grow without bound under sustained traffic, so
:meth:`JobJournal.compact` rewrites the file to its last-wins minimum
(atomic tmp-write + rename); construction does this automatically once the
log exceeds :data:`COMPACT_THRESHOLD_BYTES`.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

#: Version tag of the journal line format; bumped on schema changes.
JOURNAL_SCHEMA = "repro-job-journal/1"

#: The record kinds a line may carry.
RECORD_KINDS = ("submitted", "started", "finished")

#: Journal size past which construction compacts the log automatically.
#: Under sustained traffic the append-only log grows without bound (every
#: job leaves at least three records, finished ones a full result payload);
#: compaction at startup rewrites it to the last-wins minimum.
COMPACT_THRESHOLD_BYTES = 8 * 1024 * 1024

#: Keys a ``finished`` record contributes on top of the submitted payload.
_FINISHED_KEYS = ("status", "error", "report", "batch")


class JobJournal:
    """Append-only JSON-lines journal of job transitions, with replay."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        compact_threshold_bytes: int | None = COMPACT_THRESHOLD_BYTES,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "journal.jsonl"
        self._lock = threading.Lock()
        self.statistics = {"appended": 0, "replayed": 0, "torn": 0, "compacted": 0}
        if compact_threshold_bytes is not None and self.size_bytes() > compact_threshold_bytes:
            self.compact()

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning).

        The fsync is what makes SIGKILL recovery byte-exact: a record the
        caller saw acknowledged is on stable storage, not in a page cache
        the dying process takes with it.
        """
        if record.get("record") not in RECORD_KINDS:
            raise ValueError(
                f"journal records need a 'record' kind from {RECORD_KINDS}, got {record!r}"
            )
        if not record.get("job"):
            raise ValueError(f"journal records need a 'job' id, got {record!r}")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self.statistics["appended"] += 1

    def load(self) -> dict[str, dict]:
        """Replay the journal into one merged state per job id.

        Returns ``{job_id: state}`` in submission order, where each state
        is the ``submitted`` record augmented with ``"started": bool`` and,
        when a ``finished`` record exists, its ``status`` / ``error`` /
        result payload.  Records for job ids that were never submitted
        (impossible under write-ahead ordering, tolerated anyway) are
        dropped.
        """
        return self._replay()

    def _replay(self) -> dict[str, dict]:
        states: dict[str, dict] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return states
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn append: the previous state of that job stands.
                self.statistics["torn"] += 1
                continue
            if not isinstance(record, dict):
                self.statistics["torn"] += 1
                continue
            kind = record.get("record")
            job_id = record.get("job")
            if not job_id or kind not in RECORD_KINDS:
                self.statistics["torn"] += 1
                continue
            self.statistics["replayed"] += 1
            if kind == "submitted":
                state = dict(record)
                state["started"] = False
                states[job_id] = state
                continue
            state = states.get(job_id)
            if state is None:
                continue
            if kind == "started":
                state["started"] = True
            else:  # finished
                for key, value in record.items():
                    if key != "record":
                        state[key] = value
                state["finished"] = True
        return states

    def size_bytes(self) -> int:
        """Current on-disk size of the journal file (0 when absent)."""
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def compact(self) -> dict:
        """Rewrite the log to one last-wins record set per job, atomically.

        Superseded records vanish: a finished job keeps exactly its
        ``submitted`` and ``finished`` lines (plus ``started`` where it
        applies), torn lines are dropped, and replay of the compacted log
        yields the same states as replay of the original — that equivalence
        is what makes compaction safe to run at any quiescent moment.  The
        rewrite goes through a temporary file in the same directory,
        fsynced, then atomically renamed over the log, so a crash mid-compact
        leaves either the old log or the new one, never a mix.

        Returns ``{"before_bytes", "after_bytes", "jobs"}``.
        """
        with self._lock:
            before = self.size_bytes()
            states = self._replay()
            tmp_path = self.path.with_name(self.path.name + ".compact-tmp")
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for job_id, state in states.items():
                    submitted = {
                        key: value
                        for key, value in state.items()
                        if key not in ("started", "finished", *_FINISHED_KEYS)
                    }
                    submitted["record"] = "submitted"
                    handle.write(json.dumps(submitted, sort_keys=True, separators=(",", ":")) + "\n")
                    if state.get("started"):
                        handle.write(
                            json.dumps(
                                {"record": "started", "job": job_id},
                                sort_keys=True,
                                separators=(",", ":"),
                            )
                            + "\n"
                        )
                    if state.get("finished"):
                        finished = {"record": "finished", "job": job_id}
                        for key in _FINISHED_KEYS:
                            if key in state:
                                finished[key] = state[key]
                        handle.write(
                            json.dumps(finished, sort_keys=True, separators=(",", ":")) + "\n"
                        )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            self._fsync_directory()
            self.statistics["compacted"] += 1
            return {"before_bytes": before, "after_bytes": self.size_bytes(), "jobs": len(states)}

    def _fsync_directory(self) -> None:
        """Make the rename durable (the directory entry itself)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def __len__(self) -> int:
        """Number of decodable records currently on disk."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0
        count = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError:
                continue
            count += 1
        return count
