"""Hardened TCP/HTTP network front end for the verification service.

:class:`NetworkServer` owns one listening socket and speaks **two**
protocols on it, sniffing the first bytes of every connection:

* the JSON-lines protocol of :mod:`repro.service.serve` — one non-owning
  :class:`~repro.service.serve.ServeSession` per connection over the
  shared :class:`~repro.service.service.VerificationService`, with
  streamed events multiplexed per connection;
* a minimal HTTP/1.1 adapter — ``POST /jobs``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/events`` (chunked NDJSON), ``DELETE /jobs/<id>``,
  ``GET /healthz`` and ``GET /readyz`` — for clients that would rather
  curl than speak the line protocol.

The robustness layer is the point; every limit lives in
:class:`ServerLimits`:

* **Admission control / load shedding** — at ``max_connections`` live
  connections, new ones receive an explicit ``overloaded`` response (HTTP:
  ``503`` + ``Retry-After``) and are closed; at ``max_pending_jobs``
  queued jobs, submits are shed the same way.  The queue never grows
  without bound, and a shed client knows it was shed, not broken.
* **Per-connection protection** — frames over ``max_frame_bytes`` are
  discarded (with an error response) without buffering them; a token
  bucket enforces ``rate_limit`` frames/second; ``idle_timeout`` reaps
  connections that stop talking.
* **Slow-client backpressure** — streamed events go through a bounded
  per-connection buffer drained by a dedicated writer thread.  When a
  client cannot keep up, the oldest events are *dropped with a marker*
  (``{"type": "dropped", "job": ..., "dropped": n}``) instead of stalling
  the engine's dispatcher threads; the ``events`` op with ``since=``
  replays whatever was missed.  **Shed before stall** is the tier's
  invariant.
* **Graceful drain** — SIGTERM (see :meth:`NetworkServer.serve_forever`)
  stops the listener, gives live connections ``drain_timeout`` to finish,
  then closes the service: with a journal, unfinished jobs stay journalled
  and a restarted daemon resumes them (``kill -9`` mid-drain is equally
  safe — that is PR 6's write-ahead contract); without one the backlog is
  cancelled.

Fault injection (:mod:`repro.testing.faults`) covers the transport: site
``net.send`` (actions ``drop`` / ``delay`` / ``truncate`` / ``kill``)
fires on outgoing frames, site ``net.recv`` on incoming ones, so the
chaos suite can lose, stall and cut connections deterministically.
"""

from __future__ import annotations

import collections
import json
import logging
import math
import re
import signal
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass, replace

from repro.obs.metrics import REGISTRY, prometheus_text
from repro.service.serve import OverloadedError, ServeSession
from repro.testing import faults

logger = logging.getLogger(__name__)

#: Process-wide mirror of every server's ``statistics`` dict, labelled by
#: event (``GET /metricsz``); the per-instance dicts keep the historical
#: ``statsz`` payload shape.
_NET_EVENTS = REGISTRY.counter(
    "repro_net_events_total",
    "Network-tier traffic: connections, frames, shed load, dropped events",
)

#: HTTP status reasons the adapter emits.
_HTTP_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    503: "Service Unavailable",
}

_HTTP_PREFIX = re.compile(rb"^[A-Z]{3,8}\s")

#: Terminal job statuses (mirrors :class:`~repro.service.jobs.JobStatus`).
_TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Upper bound on HTTP request-line + header bytes (headers are tiny; a
#: "header" growing past this is an attack or a bug, not a request).
_MAX_HTTP_HEAD_BYTES = 16 * 1024


@dataclass(frozen=True)
class ServerLimits:
    """Every knob of the serving tier's robustness layer, in one place.

    The defaults are deliberately conservative: a daemon started with no
    flags survives floods, slow readers and oversized frames out of the
    box.  ``rate_limit=0`` disables per-connection rate limiting.
    """

    max_connections: int = 64
    max_pending_jobs: int = 256
    max_frame_bytes: int = 1 << 20
    idle_timeout: float = 300.0
    rate_limit: float = 0.0  # frames/second per connection; 0 = unlimited
    rate_burst: int = 20
    event_buffer: int = 256  # per-connection buffered event lines
    drain_timeout: float = 30.0
    retry_after_seconds: float = 1.0

    def replace(self, **overrides) -> "ServerLimits":
        return replace(self, **overrides)


def parse_address(text: str) -> tuple[str, int]:
    """``"HOST:PORT"``, ``":PORT"`` or bare ``"PORT"`` -> ``(host, port)``."""
    text = text.strip()
    host, separator, port_text = text.rpartition(":")
    if not separator:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad address {text!r}: the port must be an integer") from None
    return host or "127.0.0.1", port


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    def __init__(self, rate: float, burst: int):
        self._rate = float(rate)
        self._capacity = float(max(1, burst))
        self._tokens = self._capacity
        self._last = time.monotonic()
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self._capacity, self._tokens + (now - self._last) * self._rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class _ConnectionWriter:
    """Serialised, fault-injectable writer over one connection socket.

    All frames of a connection (responses, events, HTTP chunks) funnel
    through :meth:`write_bytes`, which is where the ``net.send`` fault
    site lives — dropping, delaying, truncating or killing exactly one
    frame is how the chaos suite exercises client-side retry.
    """

    def __init__(self, connection: socket.socket, peer: str = ""):
        self._connection = connection
        self._lock = threading.Lock()
        self.peer = peer
        self.dead = False

    def write_line(self, payload: dict, kind: str = "response") -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.write_bytes(data, kind=kind)

    def write_bytes(self, data: bytes, kind: str = "") -> None:
        fault = faults.fire("net.send", kind=kind, peer=self.peer)
        if fault is not None:
            data = self._apply_send_fault(fault, data)
            if data is None:
                return
        with self._lock:
            if self.dead:
                raise BrokenPipeError("connection writer is closed")
            try:
                self._connection.sendall(data)
            except OSError:
                self.dead = True
                raise

    def _apply_send_fault(self, fault, data: bytes) -> bytes | None:
        if fault.action == "delay":
            time.sleep(fault.seconds)
            return data
        if fault.action == "drop":
            return None
        if fault.action == "raise":
            raise faults.FaultInjected("fault injected at net.send")
        if fault.action in ("truncate", "kill"):
            if fault.action == "truncate" and len(data) > 1:
                # Half a frame on the wire, then a hard close: the client
                # sees a torn line + EOF and must retry.
                try:
                    with self._lock:
                        self._connection.sendall(data[: len(data) // 2])
                except OSError:
                    pass
            self.kill()
            return None
        return data

    def kill(self) -> None:
        """Hard-close the connection (fault injection / force-drain)."""
        with self._lock:
            self.dead = True
        try:
            self._connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


class _EventPump:
    """Bounded per-connection event buffer with a dedicated writer thread.

    Dispatcher threads fan events out synchronously, so a slow or stalled
    client must never appear on their call path.  :meth:`push` is
    non-blocking: at capacity the *oldest* buffered event is dropped and
    accounted per job, and before the next event of that job is written
    the client receives a ``{"type": "dropped", "job": ..., "dropped": n}``
    marker — it knows exactly what it missed and can replay via the
    ``events`` op.  Drop-with-marker beats stalling the engine; it also
    beats silently losing events.
    """

    def __init__(self, writer: _ConnectionWriter, capacity: int, on_drop=None):
        self._writer = writer
        self._capacity = max(1, int(capacity))
        self._condition = threading.Condition()
        self._queue: collections.deque = collections.deque()
        self._dropped: dict[str, int] = {}
        self._closed = False
        self._on_drop = on_drop
        self._thread = threading.Thread(target=self._run, name="repro-net-events", daemon=True)
        self._thread.start()

    def push(self, payload: dict) -> None:
        with self._condition:
            if self._closed:
                return
            if len(self._queue) >= self._capacity:
                victim = self._queue.popleft()
                job = victim.get("job", "")
                self._dropped[job] = self._dropped.get(job, 0) + 1
                if self._on_drop is not None:
                    self._on_drop()
            self._queue.append(payload)
            self._condition.notify()

    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if not self._queue:
                    return  # closed and flushed
                payload = self._queue.popleft()
                job = payload.get("job", "")
                dropped = self._dropped.pop(job, 0)
            try:
                if dropped:
                    self._writer.write_line(
                        {
                            "type": "dropped",
                            "job": job,
                            "dropped": dropped,
                            "next": payload.get("event", {}).get("seq", 0),
                        },
                        kind="event",
                    )
                self._writer.write_line(payload, kind="event")
            except Exception:
                # A dead client ends the pump, never the dispatcher.
                with self._condition:
                    self._closed = True
                    self._queue.clear()
                return

    def close(self, timeout: float = 1.0) -> None:
        """Stop accepting events and give the flush a bounded window."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._thread.join(timeout=timeout)

    def join(self, timeout: float = 5.0) -> None:
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class _ServerStatsMixin:
    """Per-connection session behaviour every server session shares.

    All four session flavours — TCP and HTTP-capture, here and in the
    sharded router — attach the owning server's counters to the ``stats``
    payload and funnel submits through its admission control.  One
    definition replaces four near-identical copies; the ``metrics`` op
    (and therefore ``GET /metricsz``) rides on the same ``_server`` hook
    via the server's :meth:`NetworkServer.metrics_payload` override point.
    """

    _server: "NetworkServer"

    def _admit_job(self, request: dict) -> None:
        self._server.check_job_admission()

    def _stats_payload(self) -> dict:
        payload = super()._stats_payload()
        payload["server"] = self._server.statsz_payload()
        return payload

    def _metrics_payload(self) -> dict:
        return self._server.metrics_payload()


class _NetSession(_ServerStatsMixin, ServeSession):
    """One TCP connection's serve session over the shared service."""

    def __init__(self, server: "NetworkServer", writer: _ConnectionWriter, pump: _EventPump):
        super().__init__(server.service, None, None, owns_service=False)
        self._server = server
        self._writer = writer
        self._pump = pump

    def _write(self, payload: dict) -> None:
        self._writer.write_line(payload, kind="response")

    def _stream_event(self, event) -> None:
        self._pump.push({"type": "event", "job": event.job_id, "event": event.to_dict()})


class _CaptureMixin:
    """Collect responses instead of writing them (the HTTP adapters).

    The HTTP routes reuse the line protocol's handlers — request loading,
    validation, admission control, error mapping — by feeding one op per
    HTTP request through ``handle_line`` and translating the captured
    response into a status code.  Mixed into both the direct serve session
    and the router's proxying session.
    """

    responses: list

    def _write(self, payload: dict) -> None:
        self.responses.append(payload)

    def _stream_event(self, event) -> None:  # pragma: no cover - HTTP never streams inline
        pass

    def call(self, request: dict) -> dict:
        """Run one op; returns its (single) response payload."""
        self.responses.clear()
        self.handle_line(json.dumps(request))
        if not self.responses:  # pragma: no cover - every op responds
            return {"ok": False, "error": "no response"}
        return self.responses[-1]


class _CaptureSession(_ServerStatsMixin, _CaptureMixin, ServeSession):
    """A session whose responses are collected, not written (HTTP adapter)."""

    def __init__(self, server: "NetworkServer"):
        super().__init__(server.service, None, None, owns_service=False)
        self._server = server
        self.responses = []


class NetworkServer:
    """Threaded dual-protocol (JSON-lines + HTTP/1.1) serving tier.

    Parameters
    ----------
    service:
        The shared :class:`~repro.service.service.VerificationService`.
        With ``owns_service=True`` (default) :meth:`drain` closes it.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    limits:
        A :class:`ServerLimits`; defaults apply when omitted.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        limits: ServerLimits | None = None,
        owns_service: bool = True,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.limits = limits or ServerLimits()
        self.owns_service = owns_service
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._connections: dict[socket.socket, threading.Thread] = {}
        self._busy: set[socket.socket] = set()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_requested = threading.Event()
        self.statistics = {
            "connections": 0,
            "http_requests": 0,
            "frames": 0,
            "frame_errors": 0,
            "shed_connections": 0,
            "shed_jobs": 0,
            "events_dropped": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "NetworkServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (available after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("the server has not been started")
        return self._address

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info("serving on %s:%d", *self._address)
        return self._address

    def stop(self) -> None:
        """Request :meth:`serve_forever` to drain and return."""
        self._shutdown_requested.set()

    def serve_forever(self, *, handle_signals: bool = True, on_ready=None) -> int:
        """Serve until SIGTERM/SIGINT (graceful drain) or :meth:`stop`.

        The signal handler only sets a flag; the drain itself — stop
        accepting, finish or journal in-flight work, close the service —
        runs on this thread, so a second signal cannot interleave two
        drains.  Returns 0 (the drain is best-effort by design; anything
        it could not finish is journalled).

        ``on_ready`` (if given) runs after the signal handlers are
        installed.  Announce the bound address there, not before this
        call: a supervisor that reads the announcement and SIGTERMs
        immediately must hit the graceful handler, never the default one.
        """
        self.start()
        previous: dict[int, object] = {}
        if handle_signals:

            def request_shutdown(signum, frame):
                self._shutdown_requested.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum, request_shutdown)
        if on_ready is not None:
            on_ready()
        try:
            while not self._shutdown_requested.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self.drain()
        return 0

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: shed new work, settle in-flight work, stop.

        Order matters and each step is bounded:

        1. the listener closes — ``readyz`` flips to 503 and new
           connections are refused by the kernel;
        2. live connections get the drain window to finish their current
           exchange, then their sockets are force-closed;
        3. the service closes on a helper thread joined with the remaining
           budget — with a journal it closes *without draining*, so queued
           and interrupted jobs stay journalled for the next daemon
           (``kill -9`` anywhere in here recovers identically); without a
           journal the backlog is cancelled, since nobody is left to read
           the results.

        Returns True iff everything settled inside the window.
        """
        if self._stopped.is_set():
            return True
        self._draining.set()
        window = self.limits.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + window
        if self._listener is not None:
            _close_socket(self._listener)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._connections:
                    break
                # Idle connections (no exchange in flight) can be cut right
                # away; only in-flight exchanges earn the grace period.
                if not (self._busy & set(self._connections)):
                    break
            time.sleep(0.02)
        with self._lock:
            leftover = list(self._connections.items())
            graceful = not (self._busy & {connection for connection, _ in leftover})
        for connection, _ in leftover:
            _close_socket(connection)
        for _, thread in leftover:
            thread.join(timeout=1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self.owns_service:
            graceful = self._close_service(max(0.5, deadline - time.monotonic())) and graceful
        self._stopped.set()
        return graceful

    def _close_service(self, budget: float) -> bool:
        """Close the shared service within ``budget`` seconds (best effort).

        ``service.close`` joins dispatcher threads, which finish their
        in-flight job first — that join is unbounded, so it runs on a
        helper thread we join with the budget.  If the budget expires the
        daemon exits anyway: with a journal the in-flight job is recorded
        as started-but-unfinished and the next daemon re-runs it.
        """
        if self.service.journal is None:
            # No durability: cancel everything unfinished (running jobs
            # stop at their next checkpoint) rather than verifying into
            # the void.
            for handle in self.service.jobs():
                if not handle.status().finished:
                    handle.cancel()

        def close() -> None:
            try:
                self.service.close(drain=self.service.journal is None)
            except Exception:  # pragma: no cover - close must never raise
                logger.exception("service close failed during drain")

        closer = threading.Thread(target=close, name="repro-net-closer", daemon=True)
        closer.start()
        closer.join(timeout=budget)
        if closer.is_alive():
            logger.warning(
                "drain window expired with jobs still settling; "
                "journalled work will be recovered by the next daemon"
            )
            return False
        return True

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def check_job_admission(self) -> None:
        """Raise :class:`OverloadedError` instead of growing the job queue."""
        retry_after = self.limits.retry_after_seconds
        if self._draining.is_set():
            raise OverloadedError("server is draining; submit elsewhere or retry later", retry_after)
        limit = self.limits.max_pending_jobs
        if limit and self.service.pending_count() >= limit:
            self._count("shed_jobs")
            raise OverloadedError(
                f"job queue is full ({limit} pending); retry later", retry_after
            )

    def _ping_payload(self) -> dict:
        with self._lock:
            connections = len(self._connections)
        return {
            "accepting": not self._draining.is_set(),
            "connections": connections,
            "pending_jobs": self.service.pending_count(),
        }

    def _count(self, event: str, locked: bool = False) -> None:
        """Bump a server counter and its process-global registry mirror."""
        if locked:
            self.statistics[event] += 1
        else:
            with self._lock:
                self.statistics[event] += 1
        _NET_EVENTS.inc(event=event)

    def statsz_payload(self) -> dict:
        """The per-server counters (connections, frames, shedding, drops)."""
        with self._lock:
            stats = dict(self.statistics)
            stats["open_connections"] = len(self._connections)
        stats["accepting"] = not self._draining.is_set()
        return stats

    def metrics_payload(self) -> dict:
        """The registry snapshot behind the ``metrics`` op and ``/metricsz``.

        The sharded router overrides this with a fleet-wide aggregate
        (every shard's snapshot labelled and merged with its own).
        """
        return REGISTRY.snapshot()

    # ------------------------------------------------------------------
    # Session factories (overridden by the sharded router)
    # ------------------------------------------------------------------

    def _make_session(self, writer: _ConnectionWriter, pump: _EventPump) -> ServeSession:
        """The JSON-lines session of one TCP connection."""
        return _NetSession(self, writer, pump)

    def _make_capture(self):
        """A response-capturing session (one HTTP request's op)."""
        return _CaptureSession(self)

    # ------------------------------------------------------------------
    # Accepting and sniffing
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                connection, addr = self._listener.accept()
            except OSError:
                return  # listener closed: the drain began
            peer = f"{addr[0]}:{addr[1]}"
            shed = "draining: the server is shutting down; retry elsewhere" if self._draining.is_set() else ""
            thread = None
            if not shed:
                with self._lock:
                    if len(self._connections) >= self.limits.max_connections:
                        shed = "overloaded: too many connections; retry later"
                    else:
                        thread = threading.Thread(
                            target=self._handle_connection,
                            args=(connection, peer),
                            name=f"repro-net-conn-{peer}",
                            daemon=True,
                        )
                        self._connections[connection] = thread
            if shed:
                self._count("shed_connections")
                threading.Thread(
                    target=self._shed_connection,
                    args=(connection, shed),
                    name=f"repro-net-shed-{peer}",
                    daemon=True,
                ).start()
            else:
                thread.start()

    def _shed_connection(self, connection: socket.socket, message: str) -> None:
        """Tell a turned-away client *why*, in its own protocol, then close."""
        retry_after = self.limits.retry_after_seconds
        try:
            connection.settimeout(min(2.0, self.limits.idle_timeout))
            try:
                prefix = connection.recv(8, socket.MSG_PEEK)
            except OSError:
                prefix = b""
            if _HTTP_PREFIX.match(prefix):
                body = json.dumps({"ok": False, "error": message, "retryable": True}) + "\n"
                data = (
                    f"HTTP/1.1 503 {_HTTP_REASONS[503]}\r\n"
                    f"content-type: application/json\r\n"
                    f"retry-after: {math.ceil(retry_after)}\r\n"
                    f"content-length: {len(body.encode('utf-8'))}\r\n"
                    f"connection: close\r\n\r\n{body}"
                ).encode("utf-8")
            else:
                data = (
                    json.dumps(
                        {
                            "type": "response",
                            "ok": False,
                            "error": message,
                            "overloaded": True,
                            "retryable": True,
                            "retry_after": retry_after,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                ).encode("utf-8")
            try:
                connection.sendall(data)
                # Half-close and drain whatever the client already sent (its
                # first request is usually in flight): closing with unread
                # bytes would RST the connection and could destroy the shed
                # response before the client reads it.
                connection.shutdown(socket.SHUT_WR)
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    if not connection.recv(65536):
                        break
            except OSError:
                pass
        finally:
            _close_socket(connection)

    def _handle_connection(self, connection: socket.socket, peer: str) -> None:
        self._count("connections")
        try:
            connection.settimeout(self.limits.idle_timeout)
            try:
                prefix = connection.recv(8, socket.MSG_PEEK)
            except OSError:
                return
            if not prefix:
                return
            if _HTTP_PREFIX.match(prefix):
                self._serve_http(connection, peer)
            else:
                self._serve_tcp(connection, peer)
        except Exception:
            logger.exception("connection handler for %s crashed", peer)
        finally:
            _close_socket(connection)
            with self._lock:
                self._connections.pop(connection, None)

    # ------------------------------------------------------------------
    # The JSON-lines protocol over TCP
    # ------------------------------------------------------------------

    def _serve_tcp(self, connection: socket.socket, peer: str) -> None:
        writer = _ConnectionWriter(connection, peer)
        pump = _EventPump(writer, self.limits.event_buffer, on_drop=self._count_dropped_event)
        session = self._make_session(writer, pump)
        bucket = None
        if self.limits.rate_limit > 0:
            bucket = _TokenBucket(self.limits.rate_limit, self.limits.rate_burst)
        buffer = bytearray()
        try:
            while True:
                line, overflow = self._read_frame(connection, buffer)
                if line is None:
                    break
                with self._lock:
                    self._count("frames", locked=True)
                    self._busy.add(connection)
                try:
                    fault = faults.fire("net.recv", peer=peer)
                    if fault is not None:
                        if fault.action == "drop":
                            continue
                        if fault.action == "delay":
                            time.sleep(fault.seconds)
                        elif fault.action in ("kill", "truncate"):
                            break
                    if overflow:
                        self._count("frame_errors")
                        session._fail(
                            None,
                            f"frame exceeds the {self.limits.max_frame_bytes}-byte limit "
                            "and was discarded",
                            frame_error=True,
                        )
                        continue
                    if bucket is not None and not bucket.take():
                        self._count("frame_errors")
                        session._fail(
                            None,
                            f"rate limit exceeded ({self.limits.rate_limit:g} frames/s); "
                            "slow down and retry",
                            overloaded=True,
                            retryable=True,
                            retry_after=max(
                                1.0 / self.limits.rate_limit, self.limits.retry_after_seconds
                            ),
                        )
                        continue
                    if session.handle_line(line):
                        break
                except OSError:
                    break  # the client is gone; responses have nowhere to go
                finally:
                    with self._lock:
                        self._busy.discard(connection)
        finally:
            # Teardown order is load-bearing for the no-leak guarantee:
            # withdraw the session's jobs, stop the pump, close the socket
            # (which unblocks a pump thread stuck writing to a stalled
            # client), then join the pump.
            with self._lock:
                self._busy.discard(connection)
            session.close_session()
            pump.close(timeout=1.0)
            _close_socket(connection)
            pump.join(timeout=5.0)

    def _read_frame(self, connection: socket.socket, buffer: bytearray) -> tuple[str | None, bool]:
        """One newline-terminated frame from the connection.

        Returns ``(frame, False)`` normally, ``("", True)`` for a frame
        that exceeded ``max_frame_bytes`` (its bytes are *discarded*, never
        buffered — a flood of giant frames costs one recv buffer, not the
        heap), and ``(None, False)`` on EOF, idle timeout or a dead socket.
        """
        limit = self.limits.max_frame_bytes
        discarding = False
        while True:
            index = buffer.find(b"\n")
            if index >= 0:
                frame = bytes(buffer[:index])
                del buffer[: index + 1]
                if discarding or index > limit:
                    return "", True
                return frame.decode("utf-8", "replace"), False
            if len(buffer) > limit:
                discarding = True
                buffer.clear()
            try:
                chunk = connection.recv(65536)
            except (TimeoutError, OSError):
                return None, False
            if not chunk:
                return None, False
            buffer += chunk

    def _count_dropped_event(self) -> None:
        self._count("events_dropped")

    # ------------------------------------------------------------------
    # The HTTP/1.1 adapter
    # ------------------------------------------------------------------

    def _serve_http(self, connection: socket.socket, peer: str) -> None:
        # An HTTP connection is one exchange; it is "busy" for the drain
        # logic from first byte to last.
        with self._lock:
            self._count("http_requests", locked=True)
            self._busy.add(connection)
        writer = _ConnectionWriter(connection, peer)
        try:
            try:
                request = self._read_http_request(connection)
            except OverloadedError as error:
                self._http_respond(
                    writer, 413, {"ok": False, "error": str(error)}, close_hint=True
                )
                return
            if request is None:
                return
            try:
                self._route_http(writer, request)
            except (BrokenPipeError, OSError):
                pass  # client went away mid-response
        finally:
            with self._lock:
                self._busy.discard(connection)

    def _read_http_request(self, connection: socket.socket) -> dict | None:
        data = bytearray()
        while b"\r\n\r\n" not in data:
            if len(data) > _MAX_HTTP_HEAD_BYTES:
                raise OverloadedError("request headers too large")
            try:
                chunk = connection.recv(4096)
            except (TimeoutError, OSError):
                return None
            if not chunk:
                return None
            data += chunk
        head, _, rest = bytes(data).partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = 0
        if length > self.limits.max_frame_bytes:
            raise OverloadedError(
                f"request body exceeds the {self.limits.max_frame_bytes}-byte limit"
            )
        body = bytearray(rest)
        while len(body) < length:
            try:
                chunk = connection.recv(min(65536, length - len(body)))
            except (TimeoutError, OSError):
                return None
            if not chunk:
                break
            body += chunk
        path, _, query_text = target.partition("?")
        return {
            "method": method.upper(),
            "path": path,
            "query": urllib.parse.parse_qs(query_text),
            "headers": headers,
            "body": bytes(body),
        }

    def _http_respond(
        self,
        writer: _ConnectionWriter,
        status: int,
        payload: dict | None,
        extra_headers: dict | None = None,
        close_hint: bool = False,
    ) -> None:
        body = b"" if payload is None else (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}",
            "content-type: application/json",
            f"content-length: {len(body)}",
            "connection: close",
        ]
        for key, value in (extra_headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write_bytes(("\r\n".join(lines) + "\r\n\r\n").encode("utf-8") + body, kind="http")
        if close_hint:
            writer.kill()

    def _healthz_payload(self) -> dict:
        """Liveness: the process answers, full stop (even mid-drain)."""
        return {"ok": True, "status": "alive"}

    def _readyz_payload(self) -> tuple[int, dict]:
        """Readiness as ``(status_code, payload)`` (503 while draining)."""
        if self._draining.is_set():
            return 503, {"ok": False, "status": "draining"}
        return 200, {"ok": True, "status": "ready", **self._ping_payload()}

    def _route_http(self, writer: _ConnectionWriter, request: dict) -> None:
        method, path, query = request["method"], request["path"], request["query"]
        if path == "/healthz":
            self._http_respond(writer, 200, self._healthz_payload())
            return
        if path == "/readyz":
            status, payload = self._readyz_payload()
            headers = None
            if status != 200:
                headers = {"retry-after": str(math.ceil(self.limits.retry_after_seconds))}
            self._http_respond(writer, status, payload, extra_headers=headers)
            return
        if path == "/statsz" and method == "GET":
            response = self._make_capture().call({"op": "stats"})
            self._http_respond(writer, 200 if response.get("ok") else 400, response)
            return
        if path == "/metricsz" and method == "GET":
            self._http_metrics(writer)
            return
        if path == "/jobs" and method == "POST":
            self._http_submit(writer, request)
            return
        if path == "/jobs" and method == "GET":
            response = self._make_capture().call({"op": "jobs"})
            self._http_respond(writer, 200 if response.get("ok") else 400, response)
            return
        match = re.fullmatch(r"/jobs/([^/]+)", path)
        if match:
            self._http_job(writer, method, match.group(1), query)
            return
        match = re.fullmatch(r"/jobs/([^/]+)/events", path)
        if match and method == "GET":
            self._http_events(writer, match.group(1), query)
            return
        self._http_respond(writer, 404, {"ok": False, "error": f"no route for {method} {path}"})

    def _http_metrics(self, writer: _ConnectionWriter) -> None:
        """``GET /metricsz``: the metrics snapshot as Prometheus text.

        The snapshot comes through the same captured ``metrics`` op the
        line protocol serves, so the router's fleet-wide aggregation is
        inherited for free; only the rendering differs from the JSON ops.
        """
        response = self._make_capture().call({"op": "metrics"})
        if not response.get("ok"):
            self._http_respond(writer, 400, response)
            return
        body = prometheus_text(response.get("metrics", {})).encode("utf-8")
        lines = [
            "HTTP/1.1 200 OK",
            "content-type: text/plain; version=0.0.4; charset=utf-8",
            f"content-length: {len(body)}",
            "connection: close",
        ]
        writer.write_bytes(("\r\n".join(lines) + "\r\n\r\n").encode("utf-8") + body, kind="http")

    def _http_submit(self, writer: _ConnectionWriter, request: dict) -> None:
        try:
            body = json.loads(request["body"].decode("utf-8") or "{}")
            if not isinstance(body, dict):
                raise ValueError("the request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self._http_respond(writer, 400, {"ok": False, "error": f"bad JSON body: {error}"})
            return
        body.pop("stream", None)  # inline streaming is the TCP protocol's job
        body.pop("op", None)
        response = self._make_capture().call({"op": "submit", **body})
        if response.get("ok"):
            self._http_respond(writer, 202, response)
        elif response.get("overloaded"):
            self._http_respond(
                writer,
                503,
                response,
                extra_headers={"retry-after": str(math.ceil(float(response.get("retry_after", 1.0))))},
            )
        else:
            self._http_respond(writer, 400, response)

    def _http_job(self, writer: _ConnectionWriter, method: str, job_id: str, query: dict) -> None:
        if method == "DELETE":
            response = self._make_capture().call({"op": "cancel", "job": job_id})
            self._http_respond(writer, 200 if response.get("ok") else 404, response)
            return
        if method != "GET":
            self._http_respond(writer, 405, {"ok": False, "error": f"method {method} not allowed"})
            return
        wait_text = (query.get("wait") or ["0"])[0]
        try:
            wait_seconds = float(wait_text)
        except ValueError:
            wait_seconds = 0.0
        capture = self._make_capture()
        if wait_seconds > 0:
            capture.call({"op": "wait", "job": job_id, "timeout": wait_seconds})
        status_response = capture.call({"op": "status", "job": job_id})
        if not status_response.get("ok"):
            self._http_respond(writer, 404, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        payload: dict = {
            "ok": True,
            "job": status_response.get("job", job_id),
            "kind": status_response.get("kind"),
            "status": status_response.get("status"),
            "events": status_response.get("events", 0),
        }
        if payload["status"] in _TERMINAL_STATUSES:
            response = capture.call({"op": "result", "job": job_id, "wait": False})
            if response.get("ok"):
                for key in ("report", "batch"):
                    if key in response:
                        payload[key] = response[key]
            else:
                payload["error"] = response.get("error", "")
        self._http_respond(writer, 200, payload)

    def _http_events(self, writer: _ConnectionWriter, job_id: str, query: dict) -> None:
        """Chunked NDJSON event stream, resumable via ``?since=<seq>``."""
        capture = self._make_capture()
        probe = capture.call({"op": "status", "job": job_id})
        if not probe.get("ok"):
            self._http_respond(writer, 404, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        try:
            since = int((query.get("since") or ["0"])[0])
        except ValueError:
            since = 0
        follow = (query.get("follow") or ["1"])[0] not in ("0", "false", "no")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "content-type: application/x-ndjson\r\n"
            "transfer-encoding: chunked\r\n"
            "connection: close\r\n\r\n"
        ).encode("utf-8")
        writer.write_bytes(head, kind="http")
        # Pull-based: this connection's thread polls the job's event log in
        # bounded long-poll slices, so a slow reader backpressures only
        # itself.  Stops once the job is terminal and the log is drained (or
        # immediately after one pass when ``follow`` is off).
        deadline = time.monotonic() + self.limits.idle_timeout
        cursor = since
        while True:
            request = {"op": "events", "job": job_id, "since": cursor}
            if follow:
                request["wait"] = True
                request["timeout"] = max(0.1, min(10.0, deadline - time.monotonic()))
            response = capture.call(request)
            if not response.get("ok"):
                break
            events = response.get("events", [])
            for event in events:
                line = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                chunk = f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n"
                writer.write_bytes(chunk, kind="event")
            cursor = response.get("next", cursor + len(events))
            if not follow:
                break
            if events:
                deadline = time.monotonic() + self.limits.idle_timeout
            elif response.get("status") in _TERMINAL_STATUSES or time.monotonic() >= deadline:
                break
        writer.write_bytes(b"0\r\n\r\n", kind="http")
