"""Input/output helpers: JSON serialisation of protocols and results."""

from repro.io.serialization import (
    protocol_from_dict,
    protocol_from_json,
    protocol_to_dict,
    protocol_to_json,
)

__all__ = [
    "protocol_to_dict",
    "protocol_from_dict",
    "protocol_to_json",
    "protocol_from_json",
]
