"""Lazy DPLL(T) solver for quantifier-free linear integer arithmetic.

The solver combines the CDCL SAT engine (:mod:`repro.smtlite.sat`) with a
theory solver for conjunctions of linear integer constraints
(:mod:`repro.smtlite.theory`) in the classical *lemmas on demand* style:

1. formulas are converted to CNF over fresh propositional variables, one per
   arithmetic atom (:mod:`repro.smtlite.cnf`);
2. the SAT solver proposes a complete boolean assignment;
3. the conjunction of arithmetic atoms implied by the assignment is checked
   by the theory backend;
4. on theory conflict, a blocking clause built from the conflict core is
   learned and the loop continues; on theory success the arithmetic model is
   returned.

Every model is re-checked against all asserted formulas with exact integer
arithmetic before it is handed to the caller.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import Enum

from repro.smtlite.cnf import CNFConverter
from repro.smtlite.formula import Atom, Formula
from repro.smtlite.sat import SatSolver
from repro.smtlite.terms import IntVar, LinearExpr
from repro.smtlite.theory import (
    TheoryConstraint,
    TheoryError,
    TheorySolverBase,
    default_theory_solver,
)


class SolverStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment: integer values plus boolean values."""

    def __init__(self, ints: dict[str, int], bools: dict[str, bool]):
        self._ints = dict(ints)
        self._bools = dict(bools)

    def value(self, item: LinearExpr | str) -> int:
        """Value of an integer variable (by name) or of a linear expression."""
        if isinstance(item, str):
            return self._ints.get(item, 0)
        return item.evaluate({name: self._ints.get(name, 0) for name in item.variables()})

    def bool_value(self, name: str) -> bool:
        return self._bools.get(name, False)

    def ints(self) -> dict[str, int]:
        return dict(self._ints)

    def bools(self) -> dict[str, bool]:
        return dict(self._bools)

    def __repr__(self) -> str:
        return f"Model(ints={self._ints!r}, bools={self._bools!r})"


@dataclass
class SolverResult:
    status: SolverStatus
    model: Model | None = None
    statistics: dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT


class Solver:
    """DPLL(T) solver over linear integer arithmetic.

    Integer variables default to the natural numbers (lower bound 0), which
    is the domain used throughout the paper; different bounds can be declared
    with :meth:`int_var`.
    """

    def __init__(
        self,
        theory: TheorySolverBase | str = "auto",
        max_theory_iterations: int = 200_000,
    ):
        self._converter = CNFConverter()
        self._sat = SatSolver()
        if isinstance(theory, str):
            self._theory = default_theory_solver(theory)
        else:
            self._theory = theory
        self._bounds: dict[str, tuple[int | None, int | None]] = {}
        self._formulas: list[Formula] = []
        self._trivially_unsat = False
        self._max_theory_iterations = max_theory_iterations
        self.statistics = {"sat_rounds": 0, "theory_conflicts": 0, "theory_checks": 0}

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        """Declare (or re-declare) an integer variable with bounds and return it."""
        self._bounds[name] = (lower, upper)
        return IntVar(name)

    def int_vars(self, names: Iterable[str], lower: int | None = 0, upper: int | None = None) -> list[LinearExpr]:
        return [self.int_var(name, lower, upper) for name in names]

    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas (conjunctively)."""
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"expected a Formula, got {formula!r}")
            self._formulas.append(formula)
            clauses, trivially_false = self._converter.convert(formula)
            if trivially_false:
                self._trivially_unsat = True
                return
            self._sat.ensure_vars(self._converter.variable_count)
            for clause in clauses:
                if not self._sat.add_clause(clause):
                    self._trivially_unsat = True
                    return

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self) -> SolverResult:
        """Decide satisfiability of the asserted formulas."""
        if self._trivially_unsat:
            return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))

        for _ in range(self._max_theory_iterations):
            self.statistics["sat_rounds"] += 1
            sat_answer = self._sat.solve()
            if sat_answer is False:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            if sat_answer is None:  # pragma: no cover - no conflict budget is set
                return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

            asserted, literals = self._asserted_constraints()
            bounds = self._effective_bounds(asserted)
            self.statistics["theory_checks"] += 1
            try:
                theory_result = self._theory.check(asserted, bounds)
            except TheoryError:
                return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

            if theory_result.satisfiable:
                model = self._build_model(theory_result.model or {})
                self._verify_model(model)
                return SolverResult(SolverStatus.SAT, model=model, statistics=dict(self.statistics))

            self.statistics["theory_conflicts"] += 1
            core = theory_result.core or list(range(len(asserted)))
            blocking_clause = [-literals[index] for index in core]
            if not blocking_clause:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            if not self._sat.add_clause(blocking_clause):
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
        return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _asserted_constraints(self) -> tuple[list[TheoryConstraint], list[int]]:
        """Theory constraints implied by the SAT model, with their SAT literals."""
        constraints: list[TheoryConstraint] = []
        literals: list[int] = []
        for atom, variable in self._converter.atom_to_var.items():
            value = self._sat.model_value(variable, default=False)
            expr = atom.expr if value else atom.negated().expr
            constraints.append(TheoryConstraint.from_expr(expr.coefficients, expr.constant))
            literals.append(variable if value else -variable)
        return constraints, literals

    def _effective_bounds(
        self, constraints: list[TheoryConstraint]
    ) -> dict[str, tuple[int | None, int | None]]:
        bounds = dict(self._bounds)
        for constraint in constraints:
            for name in constraint.variables():
                bounds.setdefault(name, (0, None))
        return bounds

    def _build_model(self, ints: dict[str, int]) -> Model:
        values = dict(ints)
        for formula in self._formulas:
            for name in formula.int_variables():
                if name not in values:
                    lower, _ = self._bounds.get(name, (0, None))
                    values[name] = 0 if lower is None else int(lower)
        bools = {
            name: self._sat.model_value(variable, default=False)
            for name, variable in self._converter.boolvar_to_var.items()
        }
        return Model(values, bools)

    def _verify_model(self, model: Model) -> None:
        """Exact sanity check: every asserted formula holds in the model."""
        ints = model.ints()
        bools = model.bools()
        for formula in self._formulas:
            if not formula.evaluate(ints, bools):
                raise RuntimeError(
                    "internal error: the produced model does not satisfy an asserted formula; "
                    f"formula={formula!r}"
                )
