"""Thread-local job instrumentation: progress events and cooperative cancellation.

The verification service runs each job on a dispatcher thread and *binds* the
thread to the job with :func:`bound_to_job`.  Everything that executes under
the binding — the engine scheduler, the serial refinement loops of the
verification layer — can then

* **emit progress events** without threading a callback through every
  signature (:func:`emit`); events are constructed lazily, so code running
  outside any job (the deprecated shims, plain library use) pays one
  thread-local lookup and nothing else;
* **observe cancellation requests** (:func:`check_cancelled`), raising
  :class:`JobCancelledError` at the cooperative checkpoints: engine wave
  boundaries, per-subproblem steps of the inline path, pattern/strategy
  iterations of the serial checks.

Because the binding is thread-local, concurrent jobs sharing one engine (and
one worker pool) cannot observe each other's events or cancellation flags:
the envelope's ``job_id`` and the emitting thread always agree.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from contextlib import contextmanager


class JobCancelledError(RuntimeError):
    """Raised at a cooperative checkpoint after a job's cancellation was requested."""

    def __init__(self, job_id: str, message: str | None = None):
        super().__init__(message or f"verification job {job_id!r} was cancelled")
        self.job_id = job_id


class JobDeadlineExceeded(JobCancelledError):
    """Raised at a cooperative checkpoint once the job's wall-clock budget is spent.

    A subclass of :class:`JobCancelledError` so every existing cancellation
    checkpoint doubles as a deadline checkpoint; the service catches it
    *before* the generic handler and converts the remaining properties to
    ``partial`` verdicts instead of cancelling the job.
    """

    def __init__(self, job_id: str, budget: float):
        super().__init__(
            job_id, f"verification job {job_id!r} exceeded its {budget}s budget"
        )
        self.budget = budget


class JobBinding:
    """What a bound thread knows about its job.

    ``record`` receives fully constructed
    :class:`~repro.service.events.ProgressEvent` objects (the service stamps
    sequence numbers and timestamps); ``should_cancel`` is polled at the
    cooperative checkpoints.
    """

    __slots__ = ("job_id", "record", "should_cancel", "deadline", "budget", "_backends_seen", "_waves")

    def __init__(
        self,
        job_id: str,
        record: Callable[[object], None],
        should_cancel: Callable[[], bool] = lambda: False,
        budget: float | None = None,
    ):
        self.job_id = job_id
        self.record = record
        self.should_cancel = should_cancel
        # Whole-job wall-clock budget (options.retry.job_timeout): the
        # monotonic deadline is fixed at binding time, before any work runs.
        self.budget = budget
        self.deadline = None if budget is None else time.monotonic() + budget
        self._backends_seen: set[tuple[str, str]] = set()
        self._waves = 0


_LOCAL = threading.local()


def current_binding() -> JobBinding | None:
    """The binding of the calling thread, or ``None`` outside any job."""
    return getattr(_LOCAL, "binding", None)


def current_job_id() -> str | None:
    """The job id the calling thread is working for, or ``None``."""
    binding = current_binding()
    return binding.job_id if binding is not None else None


@contextmanager
def bound_to_job(binding: JobBinding):
    """Bind the calling thread to a job for the duration of the block."""
    previous = getattr(_LOCAL, "binding", None)
    _LOCAL.binding = binding
    try:
        yield binding
    finally:
        _LOCAL.binding = previous


def emit(build_event: Callable[[str], object]) -> None:
    """Emit a progress event if (and only if) the thread is bound to a job.

    ``build_event(job_id)`` constructs the event lazily, so unbound callers —
    the deprecated shims, engine use outside the service — never pay for
    event construction.
    """
    binding = current_binding()
    if binding is not None:
        binding.record(build_event(binding.job_id))


def emit_backend_selected(backend: str, scope: str) -> None:
    """Emit one :class:`~repro.service.events.BackendSelected` per (backend, scope).

    Solver construction happens per pattern pair / per strategy attempt; the
    event stream reports each distinct selection once per job instead of
    once per solver instance.
    """
    binding = current_binding()
    if binding is None:
        return
    key = (backend, scope)
    if key in binding._backends_seen:
        return
    binding._backends_seen.add(key)
    from repro.service.events import BackendSelected

    binding.record(BackendSelected(job_id=binding.job_id, backend=backend, scope=scope))


def emit_backend_degraded(backend: str, fallback: str, reason: str) -> None:
    """Emit a :class:`~repro.service.events.BackendDegraded` for a solver crash."""
    binding = current_binding()
    if binding is None:
        return
    from repro.service.events import BackendDegraded

    binding.record(
        BackendDegraded(
            job_id=binding.job_id, backend=backend, fallback=fallback, reason=reason
        )
    )


def next_wave_index(fallback: int) -> int:
    """The bound job's own 1-based wave counter (``fallback`` when unbound).

    Concurrent jobs share one engine, whose global wave statistic interleaves
    their increments; event streams number waves *per job* so a consumer can
    follow one job's progression.
    """
    binding = current_binding()
    if binding is None:
        return fallback
    binding._waves += 1
    return binding._waves


def emit_refinement_found(kind: str, states, iteration: int) -> None:
    """Emit a :class:`~repro.service.events.RefinementFound` for a CEGAR step."""
    binding = current_binding()
    if binding is None:
        return
    from repro.service.events import RefinementFound

    binding.record(
        RefinementFound(
            job_id=binding.job_id,
            refinement=kind,
            states=sorted(map(repr, states)),
            iteration=iteration,
        )
    )


def check_cancelled() -> None:
    """Raise :class:`JobCancelledError` if the bound job asked to stop.

    A no-op outside any binding, so library code sprinkled with checkpoints
    behaves identically when used without the service.
    """
    binding = current_binding()
    if binding is None:
        return
    if binding.should_cancel():
        raise JobCancelledError(binding.job_id)
    if binding.deadline is not None and time.monotonic() >= binding.deadline:
        raise JobDeadlineExceeded(binding.job_id, binding.budget)
