"""Population protocols: syntax, semantics, simulation, and a protocol library."""

from repro.protocols.protocol import (
    Configuration,
    OrderedPartition,
    PopulationProtocol,
    Transition,
)
from repro.protocols.semantics import (
    enabled_transitions,
    fire,
    fire_sequence,
    is_consensus,
    is_terminal,
    output_of,
    reachability_graph,
    reachable_configurations,
    successors,
)
from repro.protocols.simulation import SimulationResult, Simulator, simulate

__all__ = [
    "Configuration",
    "OrderedPartition",
    "PopulationProtocol",
    "Transition",
    "enabled_transitions",
    "fire",
    "fire_sequence",
    "is_consensus",
    "is_terminal",
    "output_of",
    "reachability_graph",
    "reachable_configurations",
    "successors",
    "SimulationResult",
    "Simulator",
    "simulate",
]
