"""Section 6 extension: proving correctness after proving WS³ membership.

The paper reports (in prose) that after the well-specification check it
could also prove, for every benchmark family, that the protocol computes its
intended predicate, and that this check was usually faster than the
well-specification check (slower only for the remainder protocol).  Each
benchmark here runs the correctness check of a protocol against its
documented predicate.
"""

from __future__ import annotations

import pytest

from repro.protocols.library import (
    broadcast_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    remainder_protocol,
)
from repro.verification.correctness import check_correctness

from .conftest import run_once

CASES = {
    "majority": lambda: majority_protocol(),
    "broadcast": lambda: broadcast_protocol(),
    "flock-of-birds-c6": lambda: flock_of_birds_protocol(6),
    "flock-of-birds-threshold-n-c8": lambda: flock_of_birds_threshold_n_protocol(8),
    "remainder-m4": lambda: remainder_protocol(list(range(4)), 4, 1),
}

# The remainder-m4 correctness query mixes modular arithmetic with the
# product construction and takes minutes even on the incremental solver.
_SLOW_CASES = {"remainder-m4"}
CASE_PARAMS = [
    pytest.param(name, marks=pytest.mark.slow) if name in _SLOW_CASES else name
    for name in sorted(CASES)
]


@pytest.mark.parametrize("name", CASE_PARAMS)
def test_correctness_of_documented_predicate(benchmark, name):
    protocol = CASES[name]()
    predicate = protocol.metadata["predicate"]
    result = run_once(benchmark, check_correctness, protocol, predicate)
    assert result.holds
