"""StrongConsensus (Definition 14, Section 4.2) via the CEGAR loop of Section 6.

A protocol satisfies *StrongConsensus* if no initial configuration can
*potentially* reach (Definition 12: flow equations + trap/siphon constraints)
two terminal configurations whose outputs disagree.  Following the paper's
implementation we do not eagerly enumerate traps and siphons (there can be
exponentially many); instead we run a counterexample-guided refinement loop:

1. assert the flow equations, the initial/terminal/True/False constraints of
   Appendix D.2 and the trap/siphon constraints collected so far;
2. if unsatisfiable, StrongConsensus holds;
3. otherwise take the model ``(C0, C1, C2, x1, x2)``, compute (greedily, in
   polynomial time) the maximal ``U_j``-trap unpopulated in ``C_j`` and the
   maximal ``U_j``-siphon unpopulated in ``C0`` for ``j = 1, 2``;
4. if one of them witnesses a violated trap/siphon condition, add the
   corresponding constraint and repeat; otherwise the model is a genuine
   counterexample and StrongConsensus fails.

Constraint blocks are assembled by the shared IR builders
(:mod:`repro.constraints.builders`), normalised by the simplifier
(:mod:`repro.constraints.simplify`) and solved by whichever backend the
registry provides (:mod:`repro.constraints.backends`); structural artifacts
(terminal patterns, the trap/siphon basis) come from the per-protocol
:class:`~repro.constraints.context.AnalysisContext` so they are computed at
most once per protocol, however many properties a session checks.

Solving strategies
------------------

The paper hands the whole constraint system — whose only hard boolean
structure is the big conjunction-of-disjunctions ``Terminal(c)`` — to Z3.
Our from-scratch solvers are far weaker than Z3 at pruning that boolean
structure, so the default strategy factors it out combinatorially:
``Terminal(c)`` only constrains the *support* of ``c`` (it must be an
independent set of the "interaction conflict graph", with agents of a state
that reacts with itself capped at one), so we enumerate the maximal
independent sets once and solve one small, almost purely conjunctive system
per pair of candidate supports.  For all protocol families from the paper
the number of maximal independent sets is linear in the number of states.
The paper's monolithic encoding is kept as an alternative strategy (used by
the ablation benchmark and for small protocols).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.constraints.backends import create_solver, resolve_backend_name
from repro.constraints.builders import (  # noqa: F401  (re-exported legacy surface)
    ConstraintBuilder,
    TerminalPattern,
    terminal_support_patterns,
)
from repro.constraints.context import AnalysisContext
from repro.constraints.incremental import ScopedSimplifier, bump, resolve_incremental
from repro.constraints.simplify import SimplifyStats
from repro.constraints.simplify_cache import simplify_system_cached
from repro.engine import monitor
from repro.petri.traps_siphons import (
    maximal_siphon_with_support_outside,
    maximal_trap_with_support_outside,
)
from repro.protocols.protocol import Configuration, PopulationProtocol, Transition
from repro.smtlite.solver import SolverStatus
from repro.verification.results import RefinementStep, StrongConsensusCounterexample

#: Backwards-compatible alias: the builder used to be a private class here.
_ConstraintBuilder = ConstraintBuilder


@dataclass
class StrongConsensusResult:
    """Outcome of the StrongConsensus check."""

    holds: bool
    counterexample: StrongConsensusCounterexample | None = None
    refinements: list[RefinementStep] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


# ----------------------------------------------------------------------
# Trap/siphon refinement
# ----------------------------------------------------------------------


def find_refinement(
    protocol: PopulationProtocol,
    source: Configuration,
    target: Configuration,
    flow: dict[Transition, int],
    supports=None,
) -> RefinementStep | None:
    """Find a trap/siphon constraint of Definition 12 violated by a model.

    Because traps (siphons) are closed under union it suffices to inspect the
    maximal trap unpopulated in the target (the maximal siphon unpopulated in
    the source).  ``supports`` is the optional precomputed trap/siphon basis
    (:attr:`AnalysisContext.transition_supports`).
    """
    support = [t for t, occurrences in flow.items() if occurrences > 0]
    if not support:
        return None
    empty_target = {state for state in protocol.states if target[state] == 0}
    trap = maximal_trap_with_support_outside(protocol, support, empty_target, supports=supports)
    if trap:
        feeds_trap = any(set(t.post.support()) & trap for t in support)
        if feeds_trap:
            return RefinementStep(kind="trap", states=frozenset(trap), iteration=-1)
    empty_source = {state for state in protocol.states if source[state] == 0}
    siphon = maximal_siphon_with_support_outside(protocol, support, empty_source, supports=supports)
    if siphon:
        drains_siphon = any(set(t.pre.support()) & siphon for t in support)
        if drains_siphon:
            return RefinementStep(kind="siphon", states=frozenset(siphon), iteration=-1)
    return None


# ----------------------------------------------------------------------
# Main entry point
# ----------------------------------------------------------------------


def check_strong_consensus_impl(
    protocol: PopulationProtocol,
    theory: str = "auto",
    strategy: str = "auto",
    max_refinements: int = 10_000,
    max_pattern_pairs: int = 250_000,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> StrongConsensusResult:
    """Decide StrongConsensus with the trap/siphon refinement loop of Section 6.

    ``strategy`` is one of ``"auto"``, ``"patterns"`` (enumerate terminal
    support patterns, the default for anything non-trivial) or
    ``"monolithic"`` (the paper's single constraint system with the
    ``Terminal`` disjunctions left to the solver).

    ``backend`` names a registered solver backend
    (:func:`repro.constraints.backends.available_backends`); ``context`` is
    an optional shared :class:`AnalysisContext` — a
    :class:`repro.api.Verifier` session passes the same one to every
    property check of a protocol.

    With ``jobs > 1`` (or a parallel ``engine``, a
    :class:`repro.engine.scheduler.VerificationEngine`), the independent
    pattern pairs of the ``"patterns"`` strategy are fanned out over worker
    processes; ``jobs=1`` runs the single-process persistent-solver path
    unchanged.  Verdicts and counterexamples are identical either way.
    """
    start = time.perf_counter()
    if strategy not in ("auto", "patterns", "monolithic"):
        raise ValueError(f"unknown StrongConsensus strategy {strategy!r}")
    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    if context is None:
        context = AnalysisContext(protocol)
    owned_engine = False
    if engine is None and jobs > 1:
        from repro.engine.scheduler import VerificationEngine

        engine = VerificationEngine(jobs=jobs)
        owned_engine = True
    chosen = strategy
    patterns: list[TerminalPattern] | None = None
    if strategy in ("auto", "patterns"):
        patterns = context.terminal_patterns
        true_patterns = [p for p in patterns if p.admits_output(protocol, 1)]
        false_patterns = [p for p in patterns if p.admits_output(protocol, 0)]
        num_pairs = len(true_patterns) * len(false_patterns)
        if strategy == "auto":
            chosen = "patterns" if num_pairs <= max_pattern_pairs else "monolithic"
        else:
            chosen = "patterns"

    try:
        if chosen == "patterns":
            if engine is not None and engine.parallel:
                result = _check_with_patterns_engine(
                    protocol, true_patterns, false_patterns, theory, max_refinements, engine,
                    backend, context, incremental=incremental,
                )
            else:
                result = _check_with_patterns(
                    protocol, true_patterns, false_patterns, theory, max_refinements,
                    backend, context, incremental=incremental,
                )
        else:
            result = _check_monolithic(protocol, theory, max_refinements, backend, context)
    finally:
        if owned_engine:
            engine.shutdown()
    result.statistics["strategy"] = chosen
    result.statistics["backend"] = resolve_backend_name(backend)
    result.statistics.setdefault("incremental", resolve_incremental(incremental))
    result.statistics["time"] = time.perf_counter() - start
    if patterns is not None:
        result.statistics["patterns"] = len(patterns)
    return result


def check_strong_consensus(
    protocol: PopulationProtocol,
    theory: str = "auto",
    strategy: str = "auto",
    max_refinements: int = 10_000,
    max_pattern_pairs: int = 250_000,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
    incremental: bool | None = None,
) -> StrongConsensusResult:
    """Deprecated: use :class:`repro.api.Verifier` instead.

    ``Verifier().check(protocol, properties=["strong_consensus"])`` returns
    the same verdict and counterexample in report form; this shim delegates
    to the same implementation, so verdicts are identical.
    """
    import warnings

    warnings.warn(
        "check_strong_consensus() is deprecated; use repro.api.Verifier"
        " (Verifier().check(protocol, properties=['strong_consensus']))",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_strong_consensus_impl(
        protocol,
        theory=theory,
        strategy=strategy,
        max_refinements=max_refinements,
        max_pattern_pairs=max_pattern_pairs,
        jobs=jobs,
        engine=engine,
        backend=backend,
        incremental=incremental,
    )


# ----------------------------------------------------------------------
# Strategy 1: terminal-support-pattern enumeration
# ----------------------------------------------------------------------


def _consensus_variables(builder: ConstraintBuilder) -> tuple:
    """The shared variable families ``(c0, c1, c2, x1, x2)`` of Appendix D.2."""
    return builder.consensus_variables()


def _assert_consensus_base(
    builder: ConstraintBuilder, solver, variables: tuple, simplifier: SimplifyStats | None = None
) -> None:
    """Assert the pair-independent block (initial population, non-negativity).

    Bound tightening stays off: the persistent solver reuses this block
    across the whole pattern sweep, and folding the off-initial constraints
    into bounds would perturb the theory backend's solution trajectory —
    the refinement sequence must stay reproducible across worker counts.
    """
    system = builder.consensus_base_system(variables)
    simplify_system_cached(system, tighten_bounds=False, simplifier=simplifier).assert_into(solver)


def _general_consensus_cuts(
    builder: ConstraintBuilder, variables: tuple, step: RefinementStep
) -> tuple:
    """The pair-independent (``target_support=None``) form of a cut, both sides.

    Equivalence with the specialized per-pair form (the one that intersects
    the marked states with ``pattern.allowed``) holds *inside a pair's
    scope*: pattern membership forces every off-pattern state of the
    terminal configuration to zero, and non-negativity is part of the base,
    so the marked sums agree on every model the scope admits.  Siphon cuts
    never used ``target_support`` to begin with.  Asserting the general form
    at base level is therefore sound for every pair (a Definition-12
    refinement is pair-independent) and equivalent under each pair's scope.
    """
    c0, c1, c2, x1, x2 = variables
    return (
        builder.refinement_constraint(step, c0, c1, x1),
        builder.refinement_constraint(step, c0, c2, x2),
    )


def _check_with_patterns(
    protocol: PopulationProtocol,
    true_patterns: list[TerminalPattern],
    false_patterns: list[TerminalPattern],
    theory: str,
    max_refinements: int,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> StrongConsensusResult:
    if context is None:
        context = AnalysisContext(protocol)
    builder = context.builder
    refinements: list[RefinementStep] = []
    simplifier = SimplifyStats()
    statistics = {"iterations": 0, "traps": 0, "siphons": 0, "pattern_pairs": 0, "solver_instances": 1}
    use_incremental = resolve_incremental(incremental)
    statistics["incremental"] = use_incremental

    # One persistent solver for all pattern pairs.  The pair-independent
    # constraints (initial configuration, flow non-negativity) are asserted
    # once; the per-pair constraints live in a push/pop scope.  Learned
    # lemmas — blocking clauses and memoized theory checks over the shared
    # atoms — survive across pairs, so later pairs start warm.
    solver = create_solver(backend, theory=theory)
    variables = builder.consensus_variables()
    c0, c1, c2, x1, x2 = variables

    scoped: ScopedSimplifier | None = None
    pattern_memo: dict[tuple[int, TerminalPattern], object] = {}
    output_memo = {1: builder.has_output(c1, 1), 0: builder.has_output(c2, 0)}
    if use_incremental:
        # Incremental path: the base block and every cut discovered so far
        # live at base level (in general form); a pair's scope carries only
        # its pattern membership and output formulas.  The ScopedSimplifier
        # mirrors the solver's scope stack and dedups/subsumes deltas online
        # instead of re-simplifying the full pair system per pair.
        scoped = ScopedSimplifier(
            builder.consensus_base_system(variables), tighten_bounds=False, stats=simplifier
        )
        scoped.system.assert_into(solver)
    else:
        _assert_consensus_base(builder, solver, variables, simplifier)

    def promote_cuts(new_steps: list[RefinementStep]) -> None:
        """Assert a pair's newly discovered cuts once, at base level.

        ``find_refinement`` can never rediscover a cut whose general form is
        already active (the model would have to violate it), so promotion
        introduces no duplicates across pairs — but the index still guards
        against textual repeats from symmetric pairs.
        """
        for step in new_steps:
            for cut in _general_consensus_cuts(builder, variables, step):
                for formula in scoped.add_delta(cut):
                    solver.add(formula)
            bump("cuts_promoted_to_base")

    def pair_delta(pattern_true: TerminalPattern, pattern_false: TerminalPattern) -> list:
        true_member = pattern_memo.get((1, pattern_true))
        if true_member is None:
            true_member = builder.pattern(c1, pattern_true)
            pattern_memo[(1, pattern_true)] = true_member
        false_member = pattern_memo.get((0, pattern_false))
        if false_member is None:
            false_member = builder.pattern(c2, pattern_false)
            pattern_memo[(0, pattern_false)] = false_member
        return [true_member, false_member, output_memo[1], output_memo[0]]

    def side_feasible(flow_config, pattern, output) -> bool:
        """Cheap theory-only pre-check of one side of a pattern pair.

        The conjunction (initial population, derived non-negativity, support
        pattern, output presence) is a subset of the pair's full constraint
        system, so infeasibility here soundly rules out every pair using this
        side.  The same false-pattern side recurs across pairs, so the
        underlying theory query is answered from the solver's memo cache
        after the first time.
        """
        result = solver.check_conjunction(
            [
                builder.initial(c0),
                builder.non_negative(flow_config),
                builder.pattern(flow_config, pattern),
                builder.has_output(flow_config, output),
            ]
        )
        return result.status is not SolverStatus.UNSAT

    for pattern_true in true_patterns:
        true_side_ok = side_feasible(c1, pattern_true, 1)
        for pattern_false in false_patterns:
            # Cooperative checkpoint of the serial sweep: a cancelled
            # service job stops between pattern pairs.
            monitor.check_cancelled()
            statistics["pattern_pairs"] += 1
            if not true_side_ok or not side_feasible(c2, pattern_false, 0):
                statistics["pruned_pairs"] = statistics.get("pruned_pairs", 0) + 1
                continue
            pair_start = len(refinements)
            solver.push()
            if scoped is not None:
                scoped.push()
            try:
                outcome = _solve_pattern_pair(
                    protocol,
                    builder,
                    solver,
                    (c0, c1, c2, x1, x2),
                    pattern_true,
                    pattern_false,
                    max_refinements,
                    refinements,
                    statistics,
                    context=context,
                    simplifier=simplifier,
                    scoped=scoped,
                    delta_formulas=pair_delta(pattern_true, pattern_false) if scoped else None,
                )
            finally:
                solver.pop()
                if scoped is not None:
                    scoped.pop()
            if scoped is not None:
                promote_cuts(refinements[pair_start:])
            if outcome is not None:
                statistics["solver"] = dict(solver.statistics)
                statistics["simplifier"] = simplifier.to_dict()
                if scoped is not None:
                    statistics["scoped_simplifier"] = scoped.savings_summary()
                return StrongConsensusResult(
                    holds=False,
                    counterexample=outcome,
                    refinements=refinements,
                    statistics=statistics,
                )
    statistics["solver"] = dict(solver.statistics)
    statistics["simplifier"] = simplifier.to_dict()
    if scoped is not None:
        statistics["scoped_simplifier"] = scoped.savings_summary()
    return StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)


def _solve_pattern_pair(
    protocol: PopulationProtocol,
    builder: ConstraintBuilder,
    solver,
    variables: tuple,
    pattern_true: TerminalPattern,
    pattern_false: TerminalPattern,
    max_refinements: int,
    refinements: list[RefinementStep],
    statistics: dict,
    context: AnalysisContext | None = None,
    simplifier: SimplifyStats | None = None,
    scoped: ScopedSimplifier | None = None,
    delta_formulas: list | None = None,
) -> StrongConsensusCounterexample | None:
    """Run the refinement loop for one pattern pair inside an open scope.

    Non-incremental (``scoped is None``): the per-pair block — pattern
    memberships, output presence and the trap/siphon constraints discovered
    while solving earlier pairs (they are valid refinements of Definition 12
    for any pair and often cut the counterexample space immediately) — is
    built as one IR system and simplified (without bound tightening: the
    scope is retractable, bounds are not) before being asserted.

    Incremental (``scoped`` given): earlier pairs' cuts already live at base
    level in general form, so the scope's delta is just ``delta_formulas``
    (pattern memberships + output presence), normalised against the
    persistent index; cuts found *during* this pair are asserted in general
    form inside the scope (the caller re-promotes them to base after pop).
    """
    c0, c1, c2, x1, x2 = variables
    supports = context.transition_supports if context is not None else None
    if scoped is not None:
        for formula in scoped.add_delta(*delta_formulas):
            solver.add(formula)
    else:
        system = builder.consensus_pair_system(variables, pattern_true, pattern_false, refinements)
        simplify_system_cached(system, tighten_bounds=False, simplifier=simplifier).assert_into(solver)

    for _ in range(max_refinements):
        statistics["iterations"] += 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            return None
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the StrongConsensus query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal_true = builder.configuration_from_model(model, c1)
        terminal_false = builder.configuration_from_model(model, c2)
        flow_true = builder.flow_from_model(model, x1)
        flow_false = builder.flow_from_model(model, x2)

        step = find_refinement(protocol, initial, terminal_true, flow_true, supports=supports)
        if step is None:
            step = find_refinement(protocol, initial, terminal_false, flow_false, supports=supports)
        if step is None:
            return StrongConsensusCounterexample(
                initial=initial,
                terminal_true=terminal_true,
                terminal_false=terminal_false,
                flow_true=flow_true,
                flow_false=flow_false,
            )
        step = RefinementStep(kind=step.kind, states=step.states, iteration=statistics["iterations"])
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        monitor.emit_refinement_found(step.kind, step.states, step.iteration)
        # Incremental: cuts are asserted in the form that is cheapest for
        # the solver.  When the trap misses the pair's allowed support the
        # specialized constraint collapses to a two-literal clause (FALSE
        # consequent) — pruning the general form only recovers through
        # repeated theory checks.  Otherwise the general form is used: it
        # is textually identical across pairs and iterations, so the
        # solver's memoized theory checks stay warm, and it matches the cut
        # later promoted to base level.
        if scoped is not None:
            for target, flow, pattern in ((c1, x1, pattern_true), (c2, x2, pattern_false)):
                if step.kind == "trap" and not (set(step.states) & set(pattern.allowed)):
                    cut = builder.refinement_constraint(
                        step, c0, target, flow, target_support=pattern.allowed
                    )
                else:
                    cut = builder.refinement_constraint(step, c0, target, flow)
                for formula in scoped.add_delta(cut):
                    solver.add(formula)
        else:
            solver.add(
                builder.refinement_constraint(step, c0, c1, x1, target_support=pattern_true.allowed)
            )
            solver.add(
                builder.refinement_constraint(step, c0, c2, x2, target_support=pattern_false.allowed)
            )
    raise RuntimeError(
        f"StrongConsensus refinement did not converge within {max_refinements} iterations"
    )


# ----------------------------------------------------------------------
# Pattern pairs as engine subproblems
# ----------------------------------------------------------------------


@dataclass
class PairOutcome:
    """Worker-side outcome of one pattern-pair subproblem.

    ``verdict`` is ``"unsat"`` (the pair admits no counterexample),
    ``"sat"`` (a genuine counterexample exists) or ``"pruned"`` (one side of
    the pair is infeasible on its own, so the pair was never solved).
    ``new_refinements`` are the trap/siphon steps discovered beyond the
    seeded ones — the coordinator merges them and seeds later waves.
    """

    verdict: str
    new_refinements: list[RefinementStep]
    statistics: dict
    counterexample: StrongConsensusCounterexample | None = None


#: Per-process memo of side-feasibility answers, keyed by protocol content
#: hash.  The same (pattern, output) side recurs across the pairs a worker
#: solves; feasibility is a mathematical property of the side alone, so the
#: cached answer is exactly what a fresh solver would compute.  Bounded
#: (FIFO) so a long-lived worker pool cannot grow without limit.
_SIDE_FEASIBILITY_CACHE: dict[tuple, bool] = {}
_MAX_SIDE_FEASIBILITY_CACHE = 4096


def _side_is_feasible(
    builder: ConstraintBuilder,
    solver,
    c0: dict,
    flow_config: dict,
    pattern: TerminalPattern,
    output: int,
    cache_key: tuple | None,
) -> bool:
    if cache_key is not None:
        cached = _SIDE_FEASIBILITY_CACHE.get(cache_key)
        if cached is not None:
            return cached
    result = solver.check_conjunction(
        [
            builder.initial(c0),
            builder.non_negative(flow_config),
            builder.pattern(flow_config, pattern),
            builder.has_output(flow_config, output),
        ]
    )
    feasible = result.status is not SolverStatus.UNSAT
    if cache_key is not None:
        if len(_SIDE_FEASIBILITY_CACHE) >= _MAX_SIDE_FEASIBILITY_CACHE:
            _SIDE_FEASIBILITY_CACHE.pop(next(iter(_SIDE_FEASIBILITY_CACHE)))
        _SIDE_FEASIBILITY_CACHE[cache_key] = feasible
    return feasible


def solve_pattern_pair_subproblem(
    protocol: PopulationProtocol,
    pattern_true: TerminalPattern,
    pattern_false: TerminalPattern,
    seed_refinements: Iterable[RefinementStep],
    theory: str = "auto",
    max_refinements: int = 10_000,
    protocol_key: str | None = None,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> PairOutcome:
    """Solve one pattern pair in isolation (the worker-process entry point).

    A fresh solver is built per pair, so the outcome — verdict, discovered
    refinements, counterexample model — depends only on the arguments, never
    on which other subproblems the hosting process solved before.  That is
    what makes parallel runs reproducible: the coordinator's wave plan fixes
    every seed, so scheduling timing cannot leak into the results.

    In incremental mode the seeded cuts are asserted once at base level in
    general form (see :func:`_general_consensus_cuts`) and the pair's
    pattern/output block lives in a scoped delta — the same shape as the
    serial persistent-solver path, so verdicts are identical.
    """
    if context is None:
        context = AnalysisContext(protocol)
    builder = context.builder
    solver = create_solver(backend, theory=theory)
    variables = builder.consensus_variables()
    c0, c1, c2, _x1, _x2 = variables
    statistics = {"iterations": 0, "traps": 0, "siphons": 0}
    use_incremental = resolve_incremental(incremental)

    backend_name = resolve_backend_name(backend)
    true_key = (protocol_key, backend_name, theory, "true", pattern_true) if protocol_key else None
    false_key = (protocol_key, backend_name, theory, "false", pattern_false) if protocol_key else None
    if not _side_is_feasible(builder, solver, c0, c1, pattern_true, 1, true_key) or not (
        _side_is_feasible(builder, solver, c0, c2, pattern_false, 0, false_key)
    ):
        return PairOutcome(verdict="pruned", new_refinements=[], statistics=statistics)

    refinements = list(seed_refinements)
    seeded = len(refinements)
    scoped: ScopedSimplifier | None = None
    delta_formulas: list | None = None
    if use_incremental:
        scoped = ScopedSimplifier(builder.consensus_base_system(variables), tighten_bounds=False)
        scoped.system.assert_into(solver)
        for step in refinements:
            for cut in _general_consensus_cuts(builder, variables, step):
                for formula in scoped.add_delta(cut):
                    solver.add(formula)
        solver.push()
        scoped.push()
        delta_formulas = [
            builder.pattern(c1, pattern_true),
            builder.pattern(c2, pattern_false),
            builder.has_output(c1, 1),
            builder.has_output(c2, 0),
        ]
    else:
        _assert_consensus_base(builder, solver, variables)
    try:
        counterexample = _solve_pattern_pair(
            protocol,
            builder,
            solver,
            variables,
            pattern_true,
            pattern_false,
            max_refinements,
            refinements,
            statistics,
            context=context,
            scoped=scoped,
            delta_formulas=delta_formulas,
        )
    finally:
        if scoped is not None:
            solver.pop()
            scoped.pop()
            statistics["scoped_simplifier"] = scoped.savings_summary()
    statistics["solver"] = dict(solver.statistics)
    new_refinements = refinements[seeded:]
    if counterexample is not None:
        return PairOutcome(
            verdict="sat",
            new_refinements=new_refinements,
            statistics=statistics,
            counterexample=counterexample,
        )
    return PairOutcome(verdict="unsat", new_refinements=new_refinements, statistics=statistics)


def consensus_pair_subproblems(
    protocol: PopulationProtocol,
    pairs: list[tuple[TerminalPattern, TerminalPattern]],
    seed_refinements: list[RefinementStep],
    theory: str,
    max_refinements: int,
    first_index: int,
    protocol_data: dict,
    protocol_key: str,
    backend: str | None = None,
    context_data: dict | None = None,
    incremental: bool | None = None,
) -> list:
    """Package a slice of the pattern-pair enumeration as engine subproblems."""
    from repro.engine.subproblem import Subproblem

    return [
        Subproblem(
            kind="consensus-pair",
            index=first_index + offset,
            protocol_key=protocol_key,
            protocol_data=protocol_data,
            params={
                "pattern_true": pattern_true,
                "pattern_false": pattern_false,
                "refinements": tuple(seed_refinements),
                "theory": theory,
                "max_refinements": max_refinements,
                "backend": backend,
                "context": context_data or {},
                "incremental": incremental,
            },
        )
        for offset, (pattern_true, pattern_false) in enumerate(pairs)
    ]


def _check_with_patterns_engine(
    protocol: PopulationProtocol,
    true_patterns: list[TerminalPattern],
    false_patterns: list[TerminalPattern],
    theory: str,
    max_refinements: int,
    engine,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> StrongConsensusResult:
    """Fan the pattern pairs over the engine's worker pool, wave by wave.

    Each wave dispatches ``jobs`` pairs seeded with every trap/siphon
    refinement merged so far (cross-worker sharing through the
    coordinator); new discoveries are merged back in deterministic pair
    order, so the wave plan — and hence the result — is independent of
    worker timing.  The first SAT pair stops dispatch and cancels queued
    siblings; the counterexample itself is then re-derived by the serial
    path, which both pins the reported model to the ``jobs=1`` one and
    keeps falsification answers canonical across worker counts.  (The
    serial re-run stops at its own first SAT pair, so it re-solves only the
    pair prefix up to the counterexample — cheap, since falsified protocols
    fail on an early pair.)

    The coordinator's already-computed analysis artifacts travel to the
    workers inside the subproblem envelopes (``params["context"]``), so no
    worker re-enumerates terminal patterns.
    """
    from repro.engine.scheduler import run_refinement_sweep
    from repro.io.serialization import protocol_to_dict

    if context is None:
        context = AnalysisContext(protocol)
    pairs = [(t, f) for t in true_patterns for f in false_patterns]
    protocol_data = protocol_to_dict(protocol)
    protocol_key = context.protocol_key
    context_data = context.export_data()
    statistics = {
        "iterations": 0,
        "traps": 0,
        "siphons": 0,
        "pattern_pairs": 0,
        "jobs": engine.jobs,
        "waves": 0,
        "solver_instances": 0,
    }
    sat_seen, refinements = run_refinement_sweep(
        engine,
        len(pairs),
        lambda start, end, seed: consensus_pair_subproblems(
            protocol,
            pairs[start:end],
            seed,
            theory,
            max_refinements,
            start,
            protocol_data,
            protocol_key,
            backend,
            context_data,
            incremental,
        ),
        statistics,
    )

    if sat_seen:
        serial = _check_with_patterns(
            protocol, true_patterns, false_patterns, theory, max_refinements, backend, context,
            incremental=incremental,
        )
        serial.statistics["parallel"] = {
            "jobs": engine.jobs,
            "waves": statistics["waves"],
            "fallback": "serial-rerun",
        }
        return serial
    return StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)


# ----------------------------------------------------------------------
# Strategy 2: the paper's monolithic encoding
# ----------------------------------------------------------------------


def _check_monolithic(
    protocol: PopulationProtocol,
    theory: str,
    max_refinements: int,
    backend: str | None = None,
    context: AnalysisContext | None = None,
) -> StrongConsensusResult:
    if context is None:
        context = AnalysisContext(protocol)
    builder = context.builder
    supports = context.transition_supports
    solver = create_solver(backend, theory=theory)
    simplifier = SimplifyStats()

    variables = builder.consensus_variables()
    c0, c1, c2, x1, x2 = variables

    # The flow equations are substituted away: c1 and c2 are expressions over
    # c0 and the flow vectors rather than fresh variables.  The whole
    # monolithic block benefits from the simplifier: transitions sharing a
    # pre multiset produce duplicate ``Terminal`` clauses, which are now
    # asserted once.
    system = builder.consensus_base_system(variables)
    system.add(builder.terminal(c1))
    system.add(builder.terminal(c2))
    system.add(builder.has_output(c1, 1))
    system.add(builder.has_output(c2, 0))
    simplify_system_cached(system, simplifier=simplifier).assert_into(solver)

    refinements: list[RefinementStep] = []
    statistics = {"iterations": 0, "traps": 0, "siphons": 0}

    def finish(result: StrongConsensusResult) -> StrongConsensusResult:
        statistics["solver"] = dict(solver.statistics)
        statistics["simplifier"] = simplifier.to_dict()
        return result

    for iteration in range(max_refinements):
        monitor.check_cancelled()
        statistics["iterations"] = iteration + 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            return finish(
                StrongConsensusResult(holds=True, refinements=refinements, statistics=statistics)
            )
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the StrongConsensus query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal_true = builder.configuration_from_model(model, c1)
        terminal_false = builder.configuration_from_model(model, c2)
        flow_true = builder.flow_from_model(model, x1)
        flow_false = builder.flow_from_model(model, x2)

        step = find_refinement(protocol, initial, terminal_true, flow_true, supports=supports)
        if step is None:
            step = find_refinement(protocol, initial, terminal_false, flow_false, supports=supports)
        if step is None:
            counterexample = StrongConsensusCounterexample(
                initial=initial,
                terminal_true=terminal_true,
                terminal_false=terminal_false,
                flow_true=flow_true,
                flow_false=flow_false,
            )
            return finish(
                StrongConsensusResult(
                    holds=False,
                    counterexample=counterexample,
                    refinements=refinements,
                    statistics=statistics,
                )
            )

        step = RefinementStep(kind=step.kind, states=step.states, iteration=iteration)
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        monitor.emit_refinement_found(step.kind, step.states, step.iteration)
        solver.add(builder.refinement_constraint(step, c0, c1, x1))
        solver.add(builder.refinement_constraint(step, c0, c2, x2))

    raise RuntimeError(
        f"StrongConsensus refinement did not converge within {max_refinements} iterations"
    )
