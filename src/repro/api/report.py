"""Unified, lossless verification reports.

Every check run through the :class:`~repro.api.verifier.Verifier` produces a
:class:`VerificationReport`: one :class:`PropertyResult` per requested
property, each carrying a :class:`Verdict` plus the full evidence — layered
termination certificates (including rational ranking weights),
StrongConsensus/correctness counterexamples (configurations and transition
flows), the trap/siphon refinement trail and the solver statistics.

Reports round-trip **losslessly** through ``to_dict``/``from_dict`` and
``to_json``/``from_json``: artifacts are serialised with the shared codecs
of :mod:`repro.io.serialization`, and a decoded report compares equal to the
one that was encoded.  The same dictionaries are what the result cache
stores and what ``repro-verify --json`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.io.serialization import (
    certificate_from_dict,
    certificate_to_dict,
    counterexample_from_dict,
    counterexample_to_dict,
    refinement_step_from_dict,
    refinement_step_to_dict,
)

#: Version tag of the report wire format; bumped on schema changes.
REPORT_SCHEMA = "repro-verification-report/1"


class Verdict(str, Enum):
    """Outcome of checking one property.

    ``PARTIAL`` marks a property the run did not get to decide — typically
    because the job exhausted its wall-clock budget (``retry.job_timeout``)
    after earlier properties completed.  It claims nothing in either
    direction: a partial report is never cached, and ``report.ok`` treats
    it like ``SKIPPED`` (only ``FAILS`` refutes).
    """

    HOLDS = "holds"
    FAILS = "fails"
    SKIPPED = "skipped"
    PARTIAL = "partial"

    @property
    def holds(self) -> bool:
        return self is Verdict.HOLDS

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.value


def _jsonable(value):
    """Deep-copy a value into JSON-clean form (keys stringified, tuples listed).

    Applied to statistics and detail payloads when a result is constructed,
    so the in-memory object already equals its JSON round-trip.
    """
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


@dataclass
class PropertyResult:
    """Verdict and evidence for one property of one protocol.

    ``certificate`` is a positive witness (currently: a
    :class:`~repro.verification.results.LayeredTerminationCertificate`);
    ``counterexample`` a negative one (StrongConsensus or correctness);
    ``refinements`` the trap/siphon CEGAR trail; ``parts`` the sub-results
    of composite properties (WS³ = layered termination + strong consensus);
    ``details`` a JSON-clean property-specific payload (e.g. the per-input
    verdicts of the explicit-state baseline).
    """

    property: str
    verdict: Verdict
    reason: str = ""
    certificate: object | None = None
    counterexample: object | None = None
    refinements: list = field(default_factory=list)
    parts: list["PropertyResult"] = field(default_factory=list)
    details: dict = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.verdict = Verdict(self.verdict)
        self.details = _jsonable(self.details)
        self.statistics = _jsonable(self.statistics)

    @property
    def holds(self) -> bool:
        return self.verdict.holds

    def part(self, name: str) -> "PropertyResult | None":
        """The sub-result for a property name, searched recursively."""
        for candidate in self.parts:
            if candidate.property == name:
                return candidate
            nested = candidate.part(name)
            if nested is not None:
                return nested
        return None

    def to_dict(self) -> dict:
        return {
            "property": self.property,
            "verdict": self.verdict.value,
            "reason": self.reason,
            "certificate": (
                certificate_to_dict(self.certificate) if self.certificate is not None else None
            ),
            "counterexample": (
                counterexample_to_dict(self.counterexample)
                if self.counterexample is not None
                else None
            ),
            "refinements": [refinement_step_to_dict(step) for step in self.refinements],
            "parts": [part.to_dict() for part in self.parts],
            "details": self.details,
            "statistics": self.statistics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PropertyResult":
        return cls(
            property=data["property"],
            verdict=Verdict(data["verdict"]),
            reason=data.get("reason", ""),
            certificate=(
                certificate_from_dict(data["certificate"])
                if data.get("certificate") is not None
                else None
            ),
            counterexample=(
                counterexample_from_dict(data["counterexample"])
                if data.get("counterexample") is not None
                else None
            ),
            refinements=[refinement_step_from_dict(step) for step in data.get("refinements", [])],
            parts=[cls.from_dict(part) for part in data.get("parts", [])],
            details=data.get("details", {}),
            statistics=data.get("statistics", {}),
        )

    # -- display -----------------------------------------------------------

    def describe(self, indent: str = "  ") -> list[str]:
        """Human-readable lines for :meth:`VerificationReport.summary`."""
        lines: list[str] = []
        if self.verdict is Verdict.PARTIAL:
            # Budget exhaustion reads the same for every property.
            lines.append(
                f"{indent}{self.property}: PARTIAL"
                + (f" ({self.reason})" if self.reason else "")
            )
        elif self.property == "ws3":
            lines.append(f"{indent}WS3 membership: {_verdict_word(self.verdict)}")
        elif self.property == "layered_termination":
            detail = ""
            if self.certificate is not None:
                detail = (
                    f" ({self.certificate.num_layers} layer(s), "
                    f"strategy {self.certificate.strategy})"
                )
            elif self.reason:
                detail = f" ({self.reason})"
            word = "holds" if self.holds else ("skipped" if self.verdict is Verdict.SKIPPED else "not established")
            lines.append(f"{indent}LayeredTermination: {word}{detail}")
        elif self.property == "strong_consensus":
            if self.verdict is Verdict.SKIPPED:
                lines.append(f"{indent}StrongConsensus: skipped")
            else:
                lines.append(
                    f"{indent}StrongConsensus: {'holds' if self.holds else 'fails'}"
                    f" ({len(self.refinements)} trap/siphon refinement(s))"
                )
        elif self.property == "correctness":
            predicate = self.details.get("predicate")
            suffix = f" of {predicate}" if predicate else ""
            if self.verdict is Verdict.SKIPPED:
                lines.append(f"{indent}Correctness: skipped ({self.reason})")
            else:
                lines.append(f"{indent}Correctness{suffix}: {'holds' if self.holds else 'fails'}")
        else:
            lines.append(
                f"{indent}{self.property}: {_verdict_word(self.verdict)}"
                + (f" ({self.reason})" if self.reason else "")
            )
        if self.counterexample is not None:
            lines.append(f"{indent}  counterexample: {self.counterexample.describe()}")
        for part in self.parts:
            lines.extend(part.describe(indent + "  "))
        return lines


def _verdict_word(verdict: Verdict) -> str:
    return {
        "holds": "YES",
        "fails": "NOT PROVEN",
        "skipped": "skipped",
        "partial": "PARTIAL",
    }[verdict.value]


@dataclass
class VerificationReport:
    """The complete, serialisable outcome of one ``Verifier.check`` call."""

    protocol_name: str
    protocol_hash: str
    properties: list[PropertyResult]
    options: dict = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)
    schema: str = REPORT_SCHEMA

    def __post_init__(self) -> None:
        self.options = _jsonable(self.options)
        self.statistics = _jsonable(self.statistics)

    # -- queries -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff no requested property failed (skipped ones are fine)."""
        return all(result.verdict is not Verdict.FAILS for result in self.properties)

    @property
    def partial(self) -> bool:
        """True iff any property (or sub-part) carries a ``partial`` verdict."""

        def any_partial(results) -> bool:
            return any(
                result.verdict is Verdict.PARTIAL or any_partial(result.parts)
                for result in results
            )

        return any_partial(self.properties)

    @property
    def is_ws3(self) -> bool:
        """Convenience: did the WS³ membership check succeed?"""
        result = self.result_for("ws3")
        return result is not None and result.holds

    def result_for(self, name: str) -> PropertyResult | None:
        """The result for a property, searching composite parts too."""
        for result in self.properties:
            if result.property == name:
                return result
        for result in self.properties:
            nested = result.part(name)
            if nested is not None:
                return nested
        return None

    def holds(self, name: str) -> bool:
        result = self.result_for(name)
        return result is not None and result.holds

    def verdict_of(self, name: str) -> Verdict | None:
        result = self.result_for(name)
        return result.verdict if result is not None else None

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "protocol": self.protocol_name,
            "protocol_hash": self.protocol_hash,
            "options": self.options,
            "properties": [result.to_dict() for result in self.properties],
            "statistics": self.statistics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationReport":
        schema = data.get("schema", REPORT_SCHEMA)
        if schema != REPORT_SCHEMA:
            raise ValueError(f"unsupported report schema {schema!r} (expected {REPORT_SCHEMA!r})")
        return cls(
            protocol_name=data["protocol"],
            protocol_hash=data["protocol_hash"],
            properties=[PropertyResult.from_dict(entry) for entry in data["properties"]],
            options=data.get("options", {}),
            statistics=data.get("statistics", {}),
            schema=schema,
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VerificationReport":
        return cls.from_dict(json.loads(text))

    # -- display -----------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable rendering (the CLI's text output)."""
        ws3 = self.result_for("ws3")
        if ws3 is not None and any(r.property == "ws3" for r in self.properties):
            header = (
                f"WS3 membership check for {self.protocol_name}: "
                f"{_verdict_word(ws3.verdict)}"
            )
        else:
            header = (
                f"Verification report for {self.protocol_name}: "
                f"{'OK' if self.ok else 'FAILED'}"
            )
        lines = [header]
        for result in self.properties:
            if result.property == "ws3":
                for part in result.parts:
                    lines.extend(part.describe())
            else:
                lines.extend(result.describe())
        time_seconds = self.statistics.get("time")
        if time_seconds is not None:
            lines.append(f"  total time: {time_seconds:.3f}s")
        return "\n".join(lines)
