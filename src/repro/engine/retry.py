"""Retry, timeout and backoff policy of the verification engine.

"The Complexity of Verifying Population Protocols" shows single instances
can be intractably expensive, and a production service additionally loses
workers to OOM kills and pre-emption — so deadlines, bounded retries and
partial results are correctness features of the service tier, not
conveniences.  :class:`RetryPolicy` is the one validated bundle of those
knobs; it rides on :class:`~repro.api.options.VerificationOptions` (and
therefore through ``Verifier``/``VerificationService``/the CLI) and is
consumed by :class:`~repro.engine.scheduler.VerificationEngine`.

The policy is deliberately execution-only: retrying a subproblem or
bounding its wall clock never changes a verdict (a timed-out check either
completes on retry with the same deterministic answer, or surfaces as a
``partial`` verdict that claims nothing), so the policy is excluded from
result-cache keys exactly like the worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats lost subproblems and runaway wall clocks.

    Parameters
    ----------
    max_retries:
        How often a subproblem lost to a worker death (or to its own
        deadline) is resubmitted before the engine gives up with an
        :class:`~repro.engine.scheduler.EngineError`.  ``0`` disables
        retrying — the pre-policy behaviour.
    backoff_seconds:
        Base delay before the first resubmission; each further attempt
        multiplies it by ``backoff_factor`` (bounded exponential backoff),
        capped at ``max_backoff_seconds``.
    subproblem_timeout:
        Per-subproblem wall-clock deadline in seconds (measured from
        dispatch).  A subproblem exceeding it is killed with its worker and
        counts as lost (i.e. it is retried, then surfaced).  ``None``
        disables the deadline.
    job_timeout:
        Whole-job wall-clock budget in seconds, enforced at the cooperative
        checkpoints.  A job exhausting it reports the properties completed
        so far and a ``partial`` verdict for the rest instead of crashing.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    subproblem_timeout: float | None = None
    job_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ValueError(f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_backoff_seconds < 0:
            raise ValueError(
                f"max_backoff_seconds must be >= 0, got {self.max_backoff_seconds}"
            )
        if self.subproblem_timeout is not None and self.subproblem_timeout <= 0:
            raise ValueError(
                f"subproblem_timeout must be > 0 or None, got {self.subproblem_timeout}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0 or None, got {self.job_timeout}")

    @property
    def enabled(self) -> bool:
        """True iff lost subproblems are resubmitted at all."""
        return self.max_retries > 0

    def backoff_delay(self, attempt: int) -> float:
        """Quarantine delay before resubmission number ``attempt`` (1-based)."""
        if attempt < 1 or self.backoff_seconds <= 0:
            return 0.0
        delay = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        return min(delay, self.max_backoff_seconds)

    def replace(self, **overrides) -> "RetryPolicy":
        """A copy with the given fields replaced (and re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict:
        """Lossless plain-dictionary form (JSON-clean)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown retry-policy fields: {sorted(unknown)}")
        return cls(**data)


#: The pre-policy behaviour: no retries, no deadlines.  Bare engines
#: (constructed without an explicit policy) default to this, so library use
#: of :class:`~repro.engine.scheduler.VerificationEngine` is unchanged.
NO_RETRY = RetryPolicy(max_retries=0)

#: The service-tier default carried by ``VerificationOptions``.
DEFAULT_RETRY = RetryPolicy()
