"""Unit tests of the durable job journal and its service-level replay."""

from __future__ import annotations

import json

import pytest

from repro.service import JobJournal, VerificationService
from repro.protocols.library import broadcast_protocol, majority_protocol


class TestJobJournal:
    def test_append_validates_records(self, tmp_path):
        journal = JobJournal(tmp_path)
        with pytest.raises(ValueError, match="'record' kind"):
            journal.append({"record": "bogus", "job": "job-1"})
        with pytest.raises(ValueError, match="'job' id"):
            journal.append({"record": "submitted"})

    def test_load_merges_last_wins(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "submitted", "job": "job-1", "kind": "check"})
        journal.append({"record": "started", "job": "job-1"})
        journal.append({"record": "finished", "job": "job-1", "status": "done", "error": ""})
        states = journal.load()
        assert list(states) == ["job-1"]
        state = states["job-1"]
        assert state["started"] is True
        assert state["finished"] is True
        assert state["status"] == "done"

    def test_submitted_only_job_is_unfinished(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "submitted", "job": "job-3", "kind": "check"})
        state = journal.load()["job-3"]
        assert state["started"] is False
        assert "finished" not in state

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "submitted", "job": "job-1", "kind": "check"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "finished", "job": "job-1", "sta')  # torn mid-append
        states = journal.load()
        assert "finished" not in states["job-1"]
        assert journal.statistics["torn"] == 1
        assert len(journal) == 1

    def test_records_for_unknown_jobs_are_dropped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "started", "job": "job-9"})
        assert journal.load() == {}

    def test_replay_is_idempotent(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "submitted", "job": "job-1", "kind": "check"})
        journal.append({"record": "started", "job": "job-1"})
        assert journal.load() == journal.load()

    def test_submission_order_is_preserved(self, tmp_path):
        journal = JobJournal(tmp_path)
        for job_id in ("job-2", "job-1", "job-5"):
            journal.append({"record": "submitted", "job": job_id, "kind": "check"})
        assert list(journal.load()) == ["job-2", "job-1", "job-5"]

    def test_lines_are_compact_json(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"record": "submitted", "job": "job-1", "kind": "check"})
        line = journal.path.read_text(encoding="utf-8").splitlines()[0]
        assert json.loads(line)["job"] == "job-1"
        assert ": " not in line  # compact separators


class TestServiceReplay:
    def test_finished_results_survive_restart(self, tmp_path):
        with VerificationService(journal_dir=tmp_path) as service:
            handle = service.submit(majority_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
            report = handle.result()
        with VerificationService(journal_dir=tmp_path) as restarted:
            assert restarted.statistics["recovered"] == 1
            recovered = restarted.job(handle.job_id)
            assert recovered.status().value == "done"
            assert recovered.result().is_ws3 == report.is_ws3
            assert recovered.result().protocol_hash == report.protocol_hash

    def test_restart_appends_nothing(self, tmp_path):
        """Recovery must not re-journal what is already journalled."""
        with VerificationService(journal_dir=tmp_path) as service:
            handle = service.submit(majority_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
        length = len(JobJournal(tmp_path))
        for _ in range(2):
            VerificationService(journal_dir=tmp_path).close()
            assert len(JobJournal(tmp_path)) == length

    def test_unfinished_job_is_resumed_and_run(self, tmp_path):
        journal = JobJournal(tmp_path)
        from repro.io.serialization import protocol_to_dict

        journal.append(
            {
                "record": "submitted",
                "job": "job-4",
                "kind": "check",
                "priority": 0,
                "properties": ["ws3"],
                "protocol_name": "majority",
                "protocol": protocol_to_dict(majority_protocol()),
            }
        )
        journal.append({"record": "started", "job": "job-4"})
        with VerificationService(journal_dir=tmp_path) as service:
            assert service.statistics["resumed"] == 1
            handle = service.job("job-4")
            assert handle.wait(timeout=300)
            assert handle.result().is_ws3
            trail = [event.TYPE for event in handle.events_so_far()]
            assert trail[:2] == ["job_queued", "job_recovered"]
            recovered = [e for e in handle.events_so_far() if e.TYPE == "job_recovered"]
            assert recovered[0].had_started is True
            # Fresh ids continue past every journalled id.
            fresh = service.submit(broadcast_protocol(), ["ws3"])
            assert fresh.job_id == "job-5"
            assert fresh.wait(timeout=300)

    def test_resume_false_restores_results_but_not_the_queue(self, tmp_path):
        journal = JobJournal(tmp_path)
        from repro.io.serialization import protocol_to_dict

        journal.append(
            {
                "record": "submitted",
                "job": "job-1",
                "kind": "check",
                "properties": ["ws3"],
                "protocol": protocol_to_dict(majority_protocol()),
            }
        )
        with VerificationService(journal_dir=tmp_path, resume=False) as service:
            assert service.statistics["resumed"] == 0
            assert service.pending_count() == 0
            with pytest.raises(KeyError):
                service.job("job-1")

    def test_batch_results_survive_restart(self, tmp_path):
        protocols = [majority_protocol(), broadcast_protocol()]
        with VerificationService(journal_dir=tmp_path) as service:
            handle = service.submit_batch(protocols, ["ws3"])
            assert handle.wait(timeout=300)
            original = handle.result()
        with VerificationService(journal_dir=tmp_path) as restarted:
            recovered = restarted.job(handle.job_id).result()
            assert len(recovered) == len(original)
            assert [item.ok for item in recovered] == [item.ok for item in original]
            assert [item.protocol_hash for item in recovered] == [
                item.protocol_hash for item in original
            ]

    def test_failed_jobs_recover_as_failed(self, tmp_path):
        from repro.service import JobFailedError

        journal = JobJournal(tmp_path)
        from repro.io.serialization import protocol_to_dict

        journal.append(
            {
                "record": "submitted",
                "job": "job-1",
                "kind": "check",
                "properties": ["ws3"],
                "protocol": protocol_to_dict(majority_protocol()),
            }
        )
        journal.append(
            {
                "record": "finished",
                "job": "job-1",
                "status": "failed",
                "error": "RuntimeError: solver exploded",
            }
        )
        with VerificationService(journal_dir=tmp_path) as service:
            handle = service.job("job-1")
            assert handle.status().value == "failed"
            with pytest.raises(JobFailedError, match="solver exploded"):
                handle.result()


class TestCompaction:
    def fill(self, journal, jobs=5, finishes=3):
        for index in range(jobs):
            job = f"job-{index + 1}"
            journal.append({"record": "submitted", "job": job, "kind": "check", "priority": index})
            journal.append({"record": "started", "job": job})
            for _ in range(finishes):
                # Superseded finishes (e.g. re-runs after recovery): only
                # the last one matters.
                journal.append({"record": "finished", "job": job, "status": "failed", "error": "old"})
            journal.append({"record": "finished", "job": job, "status": "done", "error": ""})

    def test_compact_preserves_replay_exactly(self, tmp_path):
        journal = JobJournal(tmp_path)
        self.fill(journal)
        before = journal.load()
        result = journal.compact()
        assert journal.load() == before
        assert result["jobs"] == 5
        assert result["after_bytes"] < result["before_bytes"]
        assert journal.statistics["compacted"] == 1

    def test_compact_drops_superseded_and_torn_lines(self, tmp_path):
        journal = JobJournal(tmp_path)
        self.fill(journal, jobs=2)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "submitted", "job": "job-9", "ki')  # torn tail
        journal.compact()
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        # Exactly submitted + started + finished per job, nothing else.
        assert len(lines) == 2 * 3
        records = [json.loads(line) for line in lines]
        assert all(record["record"] in ("submitted", "started", "finished") for record in records)
        assert {record["job"] for record in records} == {"job-1", "job-2"}

    def test_compact_keeps_unfinished_jobs_resumable(self, tmp_path):
        journal = JobJournal(tmp_path)
        from repro.io.serialization import protocol_to_dict

        journal.append(
            {
                "record": "submitted",
                "job": "job-1",
                "kind": "check",
                "properties": ["ws3"],
                "protocol": protocol_to_dict(majority_protocol()),
                "priority": 0,
                "predicate": None,
            }
        )
        journal.append({"record": "started", "job": "job-1"})
        journal.compact()
        with VerificationService(journal_dir=tmp_path) as service:
            assert service.statistics["resumed"] == 1
            handle = service.job("job-1")
            assert handle.wait(timeout=300)
            assert handle.result().is_ws3

    def test_auto_compaction_at_startup_threshold(self, tmp_path):
        journal = JobJournal(tmp_path)
        self.fill(journal, jobs=3, finishes=20)
        size = journal.size_bytes()
        # Reopening with a threshold below the current size compacts; the
        # default (8 MiB) leaves this small file alone.
        untouched = JobJournal(tmp_path)
        assert untouched.size_bytes() == size
        compacted = JobJournal(tmp_path, compact_threshold_bytes=100)
        assert compacted.size_bytes() < size
        assert compacted.statistics["compacted"] == 1
        assert compacted.load() == journal.load()

    def test_compaction_disabled_with_none(self, tmp_path):
        journal = JobJournal(tmp_path)
        self.fill(journal, jobs=1, finishes=10)
        size = journal.size_bytes()
        reopened = JobJournal(tmp_path, compact_threshold_bytes=None)
        assert reopened.size_bytes() == size

    def test_compact_empty_journal_is_a_noop(self, tmp_path):
        journal = JobJournal(tmp_path)
        result = journal.compact()
        assert result["jobs"] == 0

    def test_service_survives_compaction_between_runs(self, tmp_path):
        def normalized(report_dict):
            # Recovery re-stamps statistics["events"] with the restart's
            # own (synthetic) trail even without compaction; everything
            # else must survive byte-identically.
            clone = json.loads(json.dumps(report_dict))
            clone.get("statistics", {}).pop("events", None)
            return clone

        with VerificationService(journal_dir=tmp_path) as service:
            handle = service.submit(broadcast_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
            original = handle.result().to_dict()
        JobJournal(tmp_path).compact()
        with VerificationService(journal_dir=tmp_path) as restarted:
            recovered = restarted.job(handle.job_id).result().to_dict()
            assert normalized(recovered) == normalized(original)
