"""The remainder protocol of Angluin et al. [1] (Section 5 of the paper).

The protocol computes the predicate ``sum_i a_i * x_i ≡ c (mod m)``.  Agents
either carry a numerical value in ``[0, m)`` or a pure opinion
(``"true"``/``"false"``).  Two numerical agents merge their values modulo
``m`` (one of them becomes an opinion holder); a numerical agent overwrites
the opinion of any opinion holder it meets.  The ordered partition from the
proof of Proposition 26 is attached as the partition hint.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.presburger.predicates import RemainderPredicate
from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition

TRUE_STATE = "true"
FALSE_STATE = "false"


def remainder_protocol(
    coefficients: Sequence[int] | Mapping[str, int],
    m: int,
    c: int,
) -> PopulationProtocol:
    """Build the remainder protocol for ``sum_i a_i * x_i ≡ c (mod m)``.

    Parameters
    ----------
    coefficients:
        Either a sequence of integers (symbols are named ``x1, x2, ...``) or
        a mapping from symbol names to coefficients.
    m:
        The modulus (at least 2).
    c:
        The target residue; reduced modulo ``m``.
    """
    if m < 2:
        raise ValueError("the modulus m must be at least 2")
    if isinstance(coefficients, Mapping):
        symbol_coefficients = dict(coefficients)
    else:
        symbol_coefficients = {f"x{i + 1}": value for i, value in enumerate(coefficients)}
    if not symbol_coefficients:
        raise ValueError("the remainder predicate needs at least one variable")
    c = c % m

    def opinion_state(value: int) -> str:
        return TRUE_STATE if value == c else FALSE_STATE

    states = list(range(m)) + [TRUE_STATE, FALSE_STATE]
    transitions: list[Transition] = []
    for n in range(m):
        for n_prime in range(n, m):
            merged = (n + n_prime) % m
            transitions.append(
                Transition.make((n, n_prime), (merged, opinion_state(merged)), name=f"merge_{n}_{n_prime}")
            )
        for opinion in (TRUE_STATE, FALSE_STATE):
            transitions.append(
                Transition.make((n, opinion), (n, opinion_state(n)), name=f"convince_{n}_{opinion}")
            )

    protocol = PopulationProtocol(
        states=states,
        transitions=transitions,
        input_alphabet=list(symbol_coefficients),
        input_map={symbol: value % m for symbol, value in symbol_coefficients.items()},
        output_map={
            **{value: 1 if value == c else 0 for value in range(m)},
            TRUE_STATE: 1,
            FALSE_STATE: 0,
        },
        name=f"remainder[m={m}, c={c}]",
        metadata={
            "predicate": RemainderPredicate(symbol_coefficients, m, c),
            "source": "Angluin et al. [1]; Section 5",
            "m": m,
            "c": c,
        },
    )
    hint = _proposition_26_partition(protocol)
    if hint is not None and hint.covers(protocol.transitions):
        protocol.partition_hint = hint
    return protocol


def _proposition_26_partition(protocol: PopulationProtocol) -> OrderedPartition | None:
    """The two-layer partition from the proof of Proposition 26.

    Layer 1: interactions between two numerical agents and between a
    numerical agent and a ``false`` opinion holder.  Layer 2: interactions
    between a numerical agent and a ``true`` opinion holder.
    """
    first_layer = []
    second_layer = []
    for transition in protocol.transitions:
        if TRUE_STATE in transition.pre.support():
            second_layer.append(transition)
        else:
            first_layer.append(transition)
    if not second_layer:
        return OrderedPartition.of(first_layer) if first_layer else OrderedPartition(())
    if not first_layer:
        return OrderedPartition.of(second_layer)
    return OrderedPartition.of(first_layer, second_layer)
