"""Diagnosis of protocols that are *not* in WS³.

The paper's conclusion lists the diagnosis problem — explaining *why* a
protocol fails verification — as future work.  The verifier already produces
useful diagnostic artefacts: a counterexample to StrongConsensus is a pair of
potentially-reachable terminal configurations with contradicting outputs, and
a LayeredTermination failure names the non-terminating layer.  This example
runs the verifier on two deliberately broken protocols and prints what it
finds.

Run with::

    python examples/diagnose_faulty_protocols.py
"""

from __future__ import annotations

from repro.protocols.library import (
    coin_flip_protocol,
    exclusive_majority_protocol,
    majority_protocol,
    oscillating_majority_protocol,
)
from repro.verification.correctness import check_correctness
from repro.verification.explicit import verify_single_input
from repro.verification.ws3 import verify_ws3


def main() -> None:
    print("=== coin-flip: not well-specified ===")
    coin_flip = coin_flip_protocol()
    result = verify_ws3(coin_flip, check_consensus_first=True)
    print(result.summary())
    counterexample = result.strong_consensus.counterexample
    print(f"diagnosis: {counterexample.describe()}")
    explicit = verify_single_input(coin_flip, {"x": 2})
    print(f"confirmed by explicit model checking: {explicit.reason}")
    print()

    print("=== oscillating majority: well-specified but not silent ===")
    oscillating = oscillating_majority_protocol()
    result = verify_ws3(oscillating)
    print(result.summary())
    print(
        "diagnosis: no ordered partition exists because two agents can swap between "
        "b and b' forever; the protocol is outside WS2/WS3 even though each input stabilises."
    )
    explicit = verify_single_input(oscillating, {"A": 1, "B": 2})
    print(f"explicit check of one input: well specified={explicit.well_specified}, output={explicit.output}")
    print()

    print("=== strict majority: in WS3 but computes a different predicate ===")
    strict = exclusive_majority_protocol()
    result = verify_ws3(strict)
    print(result.summary())
    wrong_predicate = majority_protocol().metadata["predicate"]  # "#B >= #A"
    correctness = check_correctness(strict, wrong_predicate)
    print(f"does it compute {wrong_predicate.describe()}?  {correctness.holds}")
    if correctness.counterexample is not None:
        print(f"diagnosis: {correctness.counterexample.describe()}")
    right_predicate = strict.metadata["predicate"]
    correctness = check_correctness(strict, right_predicate)
    print(f"does it compute {right_predicate.describe()}?  {correctness.holds}")


if __name__ == "__main__":
    main()
