"""Theory solvers for conjunctions of linear integer constraints.

The DPLL(T) loop (:mod:`repro.smtlite.solver`) repeatedly asks: *is this
conjunction of linear constraints over integer variables satisfiable?*  and,
when it is not, *which small subset of the constraints is already
contradictory?* (the conflict core, which becomes a learned clause).

Two interchangeable backends are provided:

* :class:`ExactTheorySolver` — branch-and-bound over the exact rational
  simplex (pure Python, no dependencies, always available);
* :class:`ScipyTheorySolver` — scipy's HiGHS MILP solver
  (:mod:`repro.smtlite.scipy_backend`), much faster on larger systems.

Both re-verify candidate models with exact integer arithmetic before
returning them, so an inexact backend can never report a wrong "sat".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.smtlite.branch_and_bound import ILPStatus, solve_integer_feasibility


@dataclass(frozen=True)
class TheoryConstraint:
    """The linear constraint ``sum coefficients * variables + constant <= 0``."""

    coefficients: tuple[tuple[str, int], ...]
    constant: int

    @classmethod
    def from_expr(cls, coefficients: Mapping[str, int], constant: int) -> "TheoryConstraint":
        items = tuple(sorted((name, int(value)) for name, value in coefficients.items() if value != 0))
        return cls(items, int(constant))

    def coefficient_dict(self) -> dict[str, int]:
        return dict(self.coefficients)

    def variables(self) -> set[str]:
        return {name for name, _ in self.coefficients}

    def satisfied_by(self, assignment: Mapping[str, int]) -> bool:
        total = self.constant
        for name, value in self.coefficients:
            total += value * assignment.get(name, 0)
        return total <= 0

    def __repr__(self) -> str:
        terms = " + ".join(f"{value}*{name}" for name, value in self.coefficients) or "0"
        return f"TheoryConstraint({terms} + {self.constant} <= 0)"


Bounds = Mapping[str, tuple[int | None, int | None]]


@dataclass
class TheoryResult:
    """Outcome of a theory check."""

    satisfiable: bool
    model: dict[str, int] | None = None
    #: Indices (into the checked constraint sequence) of an unsatisfiable
    #: subset; always a valid core (possibly the full set) when unsat.
    core: list[int] | None = None
    statistics: dict[str, int] = field(default_factory=dict)


class TheoryError(RuntimeError):
    """Raised when no backend can decide a theory query."""


def verify_model(
    constraints: Sequence[TheoryConstraint], bounds: Bounds, model: Mapping[str, int]
) -> bool:
    """Exact check that ``model`` satisfies every constraint and bound."""
    for name, (lower, upper) in bounds.items():
        value = model.get(name, 0)
        if lower is not None and value < lower:
            return False
        if upper is not None and value > upper:
            return False
    return all(constraint.satisfied_by(model) for constraint in constraints)


class TheorySolverBase:
    """Interface of theory backends."""

    name = "base"

    def __init__(self) -> None:
        # The DPLL(T) loop re-poses near-identical conjunctions, so the
        # per-constraint ILP rows are assembled once and reused across calls.
        self._ilp_row_cache: dict[TheoryConstraint, tuple] = {}

    def check(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> TheoryResult:
        raise NotImplementedError

    def is_satisfiable(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> bool:
        """Plain feasibility test (no model, no conflict core).

        Used by core minimisation, where extracting (and recursively
        minimising) cores of every trial subset would multiply the work.
        Backends override this with their cheapest feasibility check.
        """
        return self.check(constraints, bounds).satisfiable

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _as_ilp(self, constraints: Sequence[TheoryConstraint]):
        cache = self._ilp_row_cache
        rows = []
        for constraint in constraints:
            row = cache.get(constraint)
            if row is None:
                row = (constraint.coefficient_dict(), "<=", -constraint.constant)
                cache[constraint] = row
            rows.append(row)
        return rows

    def minimize_core(
        self,
        constraints: Sequence[TheoryConstraint],
        bounds: Bounds,
        candidate: Sequence[int],
        max_checks: int = 64,
    ) -> list[int]:
        """Deletion-based minimisation of an unsatisfiable core.

        Starting from ``candidate`` (indices of an unsatisfiable subset), try
        to drop constraints one at a time while the remainder stays
        unsatisfiable.  Each test is one backend feasibility call;
        ``max_checks`` caps the effort for very large cores.
        """
        core = list(candidate)
        if len(core) <= 1:
            return core
        checks = 0
        position = 0
        while position < len(core) and checks < max_checks:
            trial = core[:position] + core[position + 1 :]
            subset = [constraints[index] for index in trial]
            checks += 1
            if not self.is_satisfiable(subset, bounds):
                core = trial
            else:
                position += 1
        return core


class ExactTheorySolver(TheorySolverBase):
    """Branch-and-bound over the exact rational simplex."""

    name = "exact"

    def __init__(self, max_nodes: int = 4000):
        super().__init__()
        self.max_nodes = max_nodes

    def is_satisfiable(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> bool:
        result = solve_integer_feasibility(self._as_ilp(constraints), bounds, max_nodes=self.max_nodes)
        if result.status is ILPStatus.UNKNOWN:
            raise TheoryError("exact branch-and-bound exhausted its node budget")
        return result.status is ILPStatus.FEASIBLE

    def check(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> TheoryResult:
        result = solve_integer_feasibility(
            self._as_ilp(constraints), bounds, max_nodes=self.max_nodes
        )
        if result.status is ILPStatus.FEASIBLE:
            model = dict(result.values or {})
            if not verify_model(constraints, bounds, model):  # pragma: no cover - exact backend
                raise TheoryError("exact backend produced a model that fails verification")
            return TheoryResult(True, model=model, statistics={"nodes": result.nodes_explored})
        if result.status is ILPStatus.INFEASIBLE:
            core = result.infeasible_rows if result.infeasible_rows else list(range(len(constraints)))
            core = [index for index in core if index < len(constraints)]
            if not core:
                core = list(range(len(constraints)))
            if len(core) < len(constraints):
                # Soundness: an invalid core would make the DPLL(T) loop learn
                # a wrong clause, so re-verify the subset before returning it.
                subset = [constraints[index] for index in core]
                verification = solve_integer_feasibility(
                    self._as_ilp(subset), bounds, max_nodes=self.max_nodes
                )
                if verification.status is not ILPStatus.INFEASIBLE:
                    core = list(range(len(constraints)))
            return TheoryResult(False, core=core, statistics={"nodes": result.nodes_explored})
        raise TheoryError(
            f"exact branch-and-bound exhausted its node budget ({self.max_nodes}) "
            "without deciding feasibility"
        )


def default_theory_solver(prefer: str = "auto") -> TheorySolverBase:
    """Pick a theory backend.

    ``prefer`` may be ``"exact"``, ``"scipy"`` or ``"auto"`` (scipy when
    importable, exact otherwise).
    """
    if prefer == "exact":
        return ExactTheorySolver()
    try:
        from repro.smtlite.scipy_backend import ScipyTheorySolver
    except ImportError:
        if prefer == "scipy":
            raise
        return ExactTheorySolver()
    if prefer in ("scipy", "auto"):
        return ScipyTheorySolver()
    raise ValueError(f"unknown theory backend preference {prefer!r}")
