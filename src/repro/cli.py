"""Command-line front end (the Peregrine-style "repro-verify" tool).

Examples
--------
Verify a library protocol::

    repro-verify family majority
    repro-verify family flock-of-birds --parameter 10

Verify a protocol stored as JSON::

    repro-verify file my_protocol.json --simulate "A=3,B=5"

List the available families::

    repro-verify list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.io.serialization import protocol_from_json
from repro.protocols.library import PROTOCOL_FAMILIES
from repro.protocols.simulation import Simulator
from repro.verification.correctness import check_correctness
from repro.verification.ws3 import verify_ws3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Decide WS3 membership (well-specification) of population protocols.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the built-in protocol families")

    family_parser = subparsers.add_parser("family", help="verify a built-in protocol family")
    family_parser.add_argument("name", choices=sorted(PROTOCOL_FAMILIES), help="family name")
    family_parser.add_argument(
        "--parameter", type=int, default=None, help="primary size parameter (where applicable)"
    )
    _add_common_options(family_parser)

    file_parser = subparsers.add_parser("file", help="verify a protocol stored as JSON")
    file_parser.add_argument("path", help="path to the protocol JSON file")
    _add_common_options(file_parser)

    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "hint", "single", "scc", "smt"],
        help="partition-search strategy for LayeredTermination",
    )
    parser.add_argument(
        "--theory",
        default="auto",
        choices=["auto", "scipy", "exact"],
        help="constraint-solver backend",
    )
    parser.add_argument(
        "--check-correctness",
        action="store_true",
        help="also check the protocol against its documented predicate (if any)",
    )
    parser.add_argument(
        "--simulate",
        metavar="INPUT",
        default=None,
        help='simulate one run on an input such as "A=3,B=5"',
    )
    parser.add_argument("--json", action="store_true", help="print the verdict as JSON")


def _parse_input(text: str) -> dict:
    population = {}
    for part in text.split(","):
        symbol, _, count = part.partition("=")
        population[symbol.strip()] = int(count)
    return population


def _load_protocol(args):
    if args.command == "family":
        factory = PROTOCOL_FAMILIES[args.name]
        return factory(args.parameter) if args.parameter is not None else factory()
    with open(args.path, encoding="utf-8") as handle:
        return protocol_from_json(handle.read())


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-verify`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(PROTOCOL_FAMILIES):
            print(name)
        return 0

    protocol = _load_protocol(args)
    result = verify_ws3(protocol, strategy=args.strategy, theory=args.theory)

    correctness = None
    if args.check_correctness:
        predicate = protocol.metadata.get("predicate")
        if predicate is None:
            print("no documented predicate attached to this protocol; skipping correctness check")
        else:
            correctness = check_correctness(protocol, predicate, theory=args.theory)

    if args.json:
        payload = {
            "protocol": protocol.name,
            "states": protocol.num_states,
            "transitions": protocol.num_transitions,
            "is_ws3": result.is_ws3,
            "layered_termination": result.layered_termination.holds,
            "strong_consensus": (
                result.strong_consensus.holds if result.strong_consensus is not None else None
            ),
            "time_seconds": result.statistics["time"],
        }
        if correctness is not None:
            payload["computes_documented_predicate"] = correctness.holds
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        if correctness is not None:
            predicate = protocol.metadata["predicate"]
            verdict = "computes" if correctness.holds else "DOES NOT compute"
            print(f"  correctness: {verdict} the predicate {predicate.describe()}")
            if correctness.counterexample is not None:
                print(f"    {correctness.counterexample.describe()}")

    if args.simulate:
        simulator = Simulator(protocol, seed=0)
        run = simulator.run(input_population=_parse_input(args.simulate))
        print(
            f"  simulation of {args.simulate}: output={run.output} after {run.steps} interactions "
            f"(converged={run.converged})"
        )

    return 0 if result.is_ws3 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
