"""Petri-net substrate tour: invariants, traps/siphons, and the WS² hardness reduction.

Population protocols are conservative Petri nets, and the paper's machinery
(flow equations, traps, siphons) comes from Petri-net theory, while its
hardness result (Proposition 3) reduces Petri-net reachability to WS²
membership.  This example

1. converts the majority protocol into a Petri net and computes its place
   invariants (the number of agents is always conserved),
2. analyses traps and siphons of the net,
3. builds the Proposition 3 reduction for a small net and model-checks the
   resulting protocol on a few inputs.

Run with::

    python examples/petri_net_analysis.py
"""

from __future__ import annotations

from repro.datatypes.multiset import Multiset
from repro.petri.analysis import invariant_value, place_invariants
from repro.petri.net import PetriNet, PetriTransition
from repro.petri.protocol_conversion import (
    petri_net_from_protocol,
    protocol_from_reachability_instance,
)
from repro.petri.reachability import explore
from repro.petri.traps_siphons import is_siphon, is_trap, maximal_trap_inside
from repro.protocols.library import majority_protocol
from repro.verification.explicit import verify_single_input


def main() -> None:
    print("--- the majority protocol as a Petri net")
    protocol = majority_protocol()
    net = petri_net_from_protocol(protocol)
    print(net.describe())
    invariants = place_invariants(net)
    print(f"place invariants ({len(invariants)}):")
    marking = Multiset({"A": 2, "B": 3})
    for invariant in invariants:
        rendered = " + ".join(f"{weight}*{place}" for place, weight in sorted(invariant.items(), key=repr))
        print(f"  {rendered} = {invariant_value(invariant, marking)} (for the marking {marking.pretty()})")
    print(f"{{A, b}} is a trap of the net: {is_trap(net, {'A', 'b'})}")
    print(f"{{A, B}} is a siphon of the net: {is_siphon(net, {'A', 'B'})}")
    print(f"maximal trap inside {{A, B, b}}: {sorted(maximal_trap_inside(net, {'A', 'B', 'b'}))}")
    print()

    print("--- the Proposition 3 reduction (Petri net reachability -> WS2 membership)")
    net = PetriNet(
        places=["p", "q", "r"],
        transitions=[
            PetriTransition.make("t1", {"p": 1}, {"q": 1}),
            PetriTransition.make("t2", {"q": 2}, {"r": 1}),
        ],
        name="toy",
    )
    reduction = protocol_from_reachability_instance(net, Multiset({"p": 2}), target_place="r")
    reduced = reduction.protocol
    print(
        f"reduced protocol: {reduced.num_states} states, {reduced.num_transitions} transitions, "
        f"accepting state {reduction.source_place!r}"
    )
    graph = explore(net, Multiset({"p": 2}))
    print(f"markings reachable in the original net: {len(graph)}")
    some_input = {reduced.input_alphabet[0]: 2}
    verdict = verify_single_input(reduced, some_input, max_configurations=20_000)
    print(
        f"explicit check of the reduced protocol on {some_input}: "
        f"well specified={verdict.well_specified}, output={verdict.output}"
    )


if __name__ == "__main__":
    main()
