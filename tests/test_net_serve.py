"""Tests of the TCP/HTTP network serving tier (:mod:`repro.service.net`).

Everything here runs in-process: a real :class:`NetworkServer` on an
ephemeral localhost port, driven by :class:`VerificationClient`, raw
sockets (for malformed/truncated frames) and ``http.client`` (for the
HTTP adapter).  Robustness is the subject — malformed and oversized
frames, disconnects, concurrency, load shedding, slow-client event drops,
transport fault injection — and the ``no_leaks`` fixture holds the tier
to its invariant: no error path may leak a thread or a socket.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.api import PropertyChecker, PropertyResult, Verdict, register_property, unregister_property
from repro.service import (
    ClientRetryPolicy,
    NetworkServer,
    ServerLimits,
    VerificationClient,
    VerificationService,
)
from repro.service.client import OverloadedError, RequestError, TransportError
from repro.service.net import _EventPump, parse_address
from repro.testing import faults


class SleepyChecker(PropertyChecker):
    """A property that holds after a configurable nap (queue-control knob)."""

    name = "sleepy"

    def __init__(self, seconds: float = 0.3):
        self.seconds = seconds

    def check(self, protocol, options, *, engine=None, predicate=None):
        time.sleep(self.seconds)
        return PropertyResult(property=self.name, verdict=Verdict.HOLDS)


@pytest.fixture
def sleepy_property():
    checker = SleepyChecker()
    register_property(checker, replace=True)
    yield checker
    unregister_property(checker.name)


@pytest.fixture
def server():
    """A started NetworkServer over a 2-dispatcher service; drains on exit."""
    service = VerificationService(workers=2)
    instance = NetworkServer(service, limits=ServerLimits(idle_timeout=30, drain_timeout=10))
    instance.start()
    yield instance
    instance.drain(timeout=10)


def make_client(server, **kwargs) -> VerificationClient:
    host, port = server.address
    kwargs.setdefault("timeout", 30.0)
    kwargs.setdefault("seed", 0)
    return VerificationClient(host, port, **kwargs)


class RawConnection:
    """A raw test connection with line-buffered reads."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.sock.settimeout(10)
        self.reader = self.sock.makefile("r", encoding="utf-8", newline="\n")

    def sendall(self, data: bytes) -> None:
        self.sock.sendall(data)

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:
            pass
        self.sock.close()


def raw_connection(server, payload: bytes | None = None) -> RawConnection:
    conn = RawConnection(server.address)
    if payload is not None:
        conn.sendall(payload)
    return conn


def read_line(conn: RawConnection) -> dict:
    """Exactly one JSON line from the connection."""
    return json.loads(conn.reader.readline())


def http_request(server, method: str, path: str, body: dict | None = None, timeout: float = 30):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers={"content-type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"raw": raw.decode("utf-8", "replace")}
        return response.status, dict(response.headers), payload
    finally:
        conn.close()


class TestAddressParsing:
    def test_forms(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(":0") == ("127.0.0.1", 0)
        assert parse_address("8080") == ("127.0.0.1", 8080)
        assert parse_address("0.0.0.0:1") == ("0.0.0.0", 1)

    def test_bad_port(self):
        with pytest.raises(ValueError, match="port"):
            parse_address("host:http")


class TestTcpProtocol:
    def test_submit_stream_and_result_roundtrip(self, no_leaks, server):
        with make_client(server) as client:
            job = client.submit("majority", properties=["ws3"])
            events = [event["event"] for event in client.events(job)]
            assert events[0] == "job_queued" and events[-1] == "job_finished"
            result = client.result(job)
            assert result["status"] == "done"
            report = client.report(job)
            assert report.is_ws3
            assert client.status(job)["status"] == "done"

    def test_event_stream_resumes_from_cursor(self, server):
        with make_client(server) as client:
            job = client.submit("broadcast")
            all_events = list(client.events(job))
            assert len(all_events) >= 3
            # Resume from the middle: exactly the suffix, no duplicates.
            tail = list(client.events(job, since=2))
            assert [e["seq"] for e in tail] == [e["seq"] for e in all_events[2:]]

    def test_malformed_frame_keeps_connection_usable(self, no_leaks, server):
        sock = raw_connection(server, b"this is not json\n")
        try:
            response = read_line(sock)
            assert response["ok"] is False
            # Same connection, next frame: still served.
            sock.sendall(json.dumps({"op": "jobs", "id": 1}).encode() + b"\n")
            response = read_line(sock)
            assert response["ok"] is True and response["id"] == 1
        finally:
            sock.close()

    def test_unknown_op_and_non_object_frames(self, server):
        sock = raw_connection(server, b'{"op": "explode"}\n[1, 2]\n')
        try:
            first, second = read_line(sock), read_line(sock)
            assert first["ok"] is False and "unknown op" in first["error"]
            assert second["ok"] is False
        finally:
            sock.close()

    def test_oversized_frame_is_discarded_not_buffered(self, no_leaks):
        service = VerificationService()
        server = NetworkServer(
            service, limits=ServerLimits(max_frame_bytes=1024, idle_timeout=30, drain_timeout=5)
        )
        server.start()
        try:
            sock = raw_connection(server, b"x" * 5000 + b"\n")
            try:
                response = read_line(sock)
                assert response["ok"] is False and response.get("frame_error") is True
                # The connection survives the flood.
                sock.sendall(json.dumps({"op": "jobs", "id": 2}).encode() + b"\n")
                assert read_line(sock)["ok"] is True
            finally:
                sock.close()
        finally:
            server.drain(timeout=5)

    def test_truncated_frame_then_disconnect_is_harmless(self, no_leaks, server):
        sock = raw_connection(server, b'{"op": "jobs", "id"')  # no newline, ever
        sock.close()
        # The server must remain fully functional afterwards.
        with make_client(server) as client:
            assert client.jobs() == []

    def test_disconnect_cancels_only_this_sessions_jobs(self, no_leaks, sleepy_property):
        # One dispatcher: the holder's job occupies it, so the dropper's
        # lower-priority job is still queued when its connection dies.
        sleepy_property.seconds = 1.0
        service = VerificationService(workers=1)
        server = NetworkServer(service, limits=ServerLimits(idle_timeout=30, drain_timeout=10))
        server.start()
        try:
            with make_client(server) as holder:
                kept = holder.submit("majority", properties=["sleepy"])
                dropper = make_client(server)
                dropped = dropper.submit("broadcast", properties=["sleepy"], priority=-5)
                dropper.close()  # mid-stream disconnect, no shutdown op
                with make_client(server) as observer:
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        statuses = {j["job"]: j["status"] for j in observer.jobs()}
                        if statuses.get(dropped) == "cancelled":
                            break
                        time.sleep(0.05)
                    statuses = {j["job"]: j["status"] for j in observer.jobs()}
                    assert statuses[dropped] == "cancelled"
                    assert statuses[kept] != "cancelled"
                assert holder.wait(kept, timeout=30) == "done"
        finally:
            server.drain(timeout=10)

    def test_concurrent_connections(self, no_leaks, server):
        results: dict[int, str] = {}
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                with make_client(server) as client:
                    job = client.submit("broadcast")
                    results[index] = client.result(job)["status"]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results == {i: "done" for i in range(8)}


class TestLoadShedding:
    def test_connection_shed_is_explicit_and_retryable(self, no_leaks):
        service = VerificationService()
        server = NetworkServer(
            service, limits=ServerLimits(max_connections=1, idle_timeout=30, drain_timeout=5)
        )
        server.start()
        try:
            keeper = raw_connection(server, json.dumps({"op": "jobs", "id": 1}).encode() + b"\n")
            try:
                assert read_line(keeper)["ok"] is True  # slot is now provably taken
                shed = raw_connection(server, json.dumps({"op": "jobs"}).encode() + b"\n")
                try:
                    response = read_line(shed)
                    assert response["ok"] is False
                    assert response["overloaded"] is True and response["retryable"] is True
                    assert response["retry_after"] > 0
                finally:
                    shed.close()
                assert server.statistics["shed_connections"] >= 1
            finally:
                keeper.close()
        finally:
            server.drain(timeout=5)

    def test_http_connection_shed_gets_503_with_retry_after(self):
        service = VerificationService()
        server = NetworkServer(
            service, limits=ServerLimits(max_connections=1, idle_timeout=30, drain_timeout=5)
        )
        server.start()
        try:
            keeper = raw_connection(server, json.dumps({"op": "jobs", "id": 1}).encode() + b"\n")
            try:
                assert read_line(keeper)["ok"] is True
                status, headers, payload = http_request(server, "GET", "/jobs")
                assert status == 503
                assert "retry-after" in {k.lower() for k in headers}
                assert payload["retryable"] is True
            finally:
                keeper.close()
        finally:
            server.drain(timeout=5)

    def test_job_queue_shed(self, sleepy_property, no_leaks):
        sleepy_property.seconds = 1.0
        service = VerificationService(workers=1)
        server = NetworkServer(
            service,
            limits=ServerLimits(max_pending_jobs=1, idle_timeout=30, drain_timeout=5),
        )
        server.start()
        try:
            with make_client(server, retry=ClientRetryPolicy(max_attempts=1)) as client:
                client.submit("majority", properties=["sleepy"])  # running or queued
                client.submit("majority", properties=["sleepy"])  # fills the queue
                with pytest.raises(OverloadedError) as excinfo:
                    for _ in range(4):
                        client.submit("majority", properties=["sleepy"])
                assert excinfo.value.retry_after > 0
                assert server.statistics["shed_jobs"] >= 1
        finally:
            server.drain(timeout=15)

    def test_shed_submit_succeeds_after_backoff(self, sleepy_property):
        """The retry loop turns transient overload into eventual admission."""
        sleepy_property.seconds = 0.4
        service = VerificationService(workers=1)
        server = NetworkServer(
            service,
            limits=ServerLimits(max_pending_jobs=1, idle_timeout=30, drain_timeout=5),
        )
        server.start()
        try:
            retry = ClientRetryPolicy(max_attempts=8, backoff_seconds=0.2, max_backoff_seconds=0.5)
            with make_client(server, retry=retry) as client:
                jobs = [client.submit("majority", properties=["sleepy"]) for _ in range(4)]
                assert len(set(jobs)) == 4
                for job in jobs:
                    assert client.wait(job, timeout=30) == "done"
        finally:
            server.drain(timeout=15)

    def test_rate_limit_sheds_floods(self, no_leaks):
        service = VerificationService()
        server = NetworkServer(
            service,
            limits=ServerLimits(rate_limit=5.0, rate_burst=2, idle_timeout=30, drain_timeout=5),
        )
        server.start()
        try:
            sock = raw_connection(server)
            try:
                for index in range(6):
                    sock.sendall(json.dumps({"op": "jobs", "id": index}).encode() + b"\n")
                responses = [read_line(sock) for _ in range(6)]
                rejected = [r for r in responses if not r["ok"]]
                assert rejected, "the flood should trip the rate limit"
                assert all(r["overloaded"] and r["retryable"] for r in rejected)
            finally:
                sock.close()
        finally:
            server.drain(timeout=5)


class TestEventPump:
    def test_drop_oldest_with_marker(self):
        """At capacity the pump drops the oldest events and says so."""
        written: list[dict] = []
        release = threading.Event()

        class GatedWriter:
            def write_line(self, payload, kind=""):
                release.wait(timeout=10)
                written.append(payload)

        pump = _EventPump(GatedWriter(), capacity=2)
        try:
            for seq in range(6):
                pump.push({"type": "event", "job": "job-1", "event": {"seq": seq}})
            release.set()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and sum(
                1 for p in written if p["type"] == "event"
            ) < 3:
                time.sleep(0.01)
        finally:
            pump.close(timeout=5)
            pump.join()
        markers = [p for p in written if p["type"] == "dropped"]
        events = [p for p in written if p["type"] == "event"]
        # Six events into capacity 2: whatever was not delivered was
        # dropped-with-marker — nothing vanishes silently.
        assert len(markers) == 1
        assert markers[0]["dropped"] + len(events) == 6
        assert markers[0]["dropped"] >= 3
        # The marker precedes the first surviving post-drop event and
        # names its sequence number.
        survivor = next(p for p in written if p["type"] == "event" and p["event"]["seq"] == markers[0]["next"])
        assert written.index(markers[0]) < written.index(survivor)
        seqs = [p["event"]["seq"] for p in events]
        assert seqs == sorted(seqs) and seqs[-1] == 5

    def test_dead_writer_ends_pump_without_raising(self):
        class DeadWriter:
            def write_line(self, payload, kind=""):
                raise BrokenPipeError("gone")

        pump = _EventPump(DeadWriter(), capacity=4)
        pump.push({"type": "event", "job": "job-1", "event": {"seq": 0}})
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and pump.alive:
            time.sleep(0.01)
        assert not pump.alive
        pump.push({"type": "event", "job": "job-1", "event": {"seq": 1}})  # no-op, no error


class TestHttpAdapter:
    def test_health_and_ready(self, server):
        status, _, payload = http_request(server, "GET", "/healthz")
        assert status == 200 and payload["ok"] is True
        status, _, payload = http_request(server, "GET", "/readyz")
        assert status == 200 and payload["accepting"] is True

    def test_submit_poll_result_and_events(self, no_leaks, server):
        status, _, payload = http_request(server, "POST", "/jobs", {"spec": "majority"})
        assert status == 202 and payload["ok"] is True
        job = payload["job"]

        status, _, payload = http_request(server, "GET", f"/jobs/{job}?wait=30")
        assert status == 200
        assert payload["status"] == "done" and "report" in payload

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", f"/jobs/{job}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers.get("content-type") == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().decode().splitlines()]
        finally:
            conn.close()
        assert events[0]["event"] == "job_queued" and events[-1]["event"] == "job_finished"
        assert [event["seq"] for event in events] == list(range(len(events)))

        # Resume mid-stream, no-follow: exactly the recorded backlog suffix.
        status, _, _ = http_request(server, "GET", f"/jobs/{job}?wait=1")
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", f"/jobs/{job}/events?since=2&follow=0")
            response = conn.getresponse()
            tail = [json.loads(line) for line in response.read().decode().splitlines()]
        finally:
            conn.close()
        assert [event["seq"] for event in tail] == list(range(2, len(events)))

    def test_cancel_via_delete(self, server, sleepy_property):
        status, _, payload = http_request(
            server, "POST", "/jobs", {"spec": "majority", "properties": ["sleepy"], "priority": -10}
        )
        job = payload["job"]
        status, _, payload = http_request(server, "DELETE", f"/jobs/{job}")
        assert status == 200 and payload["ok"] is True

    def test_error_codes(self, no_leaks, server):
        status, _, _ = http_request(server, "GET", "/jobs/job-999")
        assert status == 404
        status, _, _ = http_request(server, "GET", "/no/such/route")
        assert status == 404
        status, _, payload = http_request(server, "POST", "/jobs", {"spec": "no-such-family"})
        assert status == 400 and payload["ok"] is False
        status, _, _ = http_request(server, "PUT", "/jobs/job-1")
        assert status == 405
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/jobs", body=b"{not json", headers={"content-type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_oversized_body_rejected(self):
        service = VerificationService()
        server = NetworkServer(
            service, limits=ServerLimits(max_frame_bytes=512, idle_timeout=30, drain_timeout=5)
        )
        server.start()
        try:
            status, _, _ = http_request(server, "POST", "/jobs", {"spec": "x" * 2000})
            assert status == 413
        finally:
            server.drain(timeout=5)


class TestStatsAndListing:
    """The observability surface the router's fleet aggregation is built on."""

    def test_stats_op_over_jsonl(self, no_leaks, server):
        with make_client(server) as client:
            job = client.submit("majority")
            assert client.wait(job, timeout=60) == "done"
            response = client.call({"op": "stats"})
        assert response["ok"] is True
        stats = response["stats"]
        # Service-side counters...
        assert stats["service"]["submitted"] >= 1
        assert stats["pending_jobs"] == 0
        assert "cache" in stats and "journal" in stats
        # ...plus the per-server network counters a TCP session can see.
        assert stats["server"]["connections"] >= 1
        assert stats["server"]["frames"] >= 1

    def test_http_statsz(self, no_leaks, server):
        status, _, payload = http_request(server, "POST", "/jobs", {"spec": "majority"})
        assert status == 202
        http_request(server, "GET", f"/jobs/{payload['job']}?wait=60")
        status, _, payload = http_request(server, "GET", "/statsz")
        assert status == 200 and payload["ok"] is True
        stats = payload["stats"]
        assert stats["service"]["submitted"] >= 1
        assert stats["server"]["http_requests"] >= 2

    def test_http_jobs_listing(self, no_leaks, server):
        jobs = set()
        for spec in ("majority", "broadcast"):
            _, _, payload = http_request(server, "POST", "/jobs", {"spec": spec})
            jobs.add(payload["job"])
        for job in jobs:
            http_request(server, "GET", f"/jobs/{job}?wait=60")
        status, _, payload = http_request(server, "GET", "/jobs")
        assert status == 200 and payload["ok"] is True
        listed = {entry["job"]: entry for entry in payload["jobs"]}
        assert jobs <= set(listed)
        for job in jobs:
            assert listed[job]["status"] == "done"
            assert listed[job]["kind"] == "check"
            assert "priority" in listed[job]


class TestMetricsz:
    """The ``metrics`` op and its ``GET /metricsz`` Prometheus rendering."""

    def test_metrics_op_over_jsonl(self, no_leaks, server):
        with make_client(server) as client:
            job = client.submit("majority")
            assert client.wait(job, timeout=60) == "done"
            response = client.call({"op": "metrics"})
        assert response["ok"] is True
        snapshot = response["metrics"]
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        net = snapshot["counters"]["repro_net_events_total"]["series"]
        assert net.get('{"event":"connections"}', 0) >= 1
        jobs = snapshot["histograms"]["repro_job_seconds"]["series"]
        assert sum(series["count"] for series in jobs.values()) >= 1

    def test_http_metricsz_is_valid_prometheus_text(self, no_leaks, server):
        from repro.obs.metrics import parse_prometheus_text

        status, _, payload = http_request(server, "POST", "/jobs", {"spec": "majority"})
        assert status == 202
        http_request(server, "GET", f"/jobs/{payload['job']}?wait=60")

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/metricsz")
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers.get("content-type", "").startswith("text/plain")
            text = response.read().decode("utf-8")
        finally:
            conn.close()

        samples = parse_prometheus_text(text)  # raises on malformed lines
        # The scrape covers every instrumented subsystem: cache,
        # incremental IR, engine/scheduler and the network tier itself.
        for family in (
            "repro_result_cache_events_total",
            "repro_incremental_events_total",
            "repro_engine_events_total",
            "repro_net_events_total",
            "repro_net_request_seconds",
            "repro_job_seconds",
        ):
            assert f"# TYPE {family} " in text
        net = {labels["event"]: value for labels, value in samples["repro_net_events_total"]}
        assert net.get("http_requests", 0) >= 1
        assert samples["repro_job_seconds_count"][0][1] >= 1


class TestTransportFaults:
    """Injected wire faults: the client's retry loop must absorb them."""

    def teardown_method(self):
        faults.clear_plan()

    def test_truncated_response_is_retried(self, no_leaks, server):
        faults.install_plan(
            {"faults": [{"site": "net.send", "action": "truncate", "at": 1, "match": {"kind": "response"}}]}
        )
        with make_client(server) as client:
            assert client.jobs() == []  # first response torn; retry succeeds
            assert client.statistics["retries"] >= 1

    def test_dropped_response_is_retried(self, server):
        faults.install_plan(
            {"faults": [{"site": "net.send", "action": "drop", "at": 1, "match": {"kind": "response"}}]}
        )
        retry = ClientRetryPolicy(max_attempts=4, backoff_seconds=0.05)
        with make_client(server, timeout=2.0, retry=retry) as client:
            job = client.submit("broadcast")
            assert client.wait(job, timeout=30) == "done"

    def test_killed_connection_reconnects(self, server):
        faults.install_plan(
            {"faults": [{"site": "net.send", "action": "kill", "at": 2, "match": {"kind": "response"}}]}
        )
        with make_client(server) as client:
            job = client.submit("broadcast")  # response 1: fine
            assert client.wait(job, timeout=30) == "done"  # response 2 killed -> reconnect
            assert client.statistics["reconnects"] >= 2

    def test_persistent_failure_surfaces_as_transport_error(self, server):
        faults.install_plan(
            {"faults": [{"site": "net.send", "action": "drop", "match": {"kind": "response"}}]}
        )
        retry = ClientRetryPolicy(max_attempts=2, backoff_seconds=0.01)
        with make_client(server, timeout=0.5, retry=retry) as client:
            with pytest.raises(TransportError):
                client.jobs()


class TestDrainInProcess:
    def test_drain_refuses_new_work_and_closes_service(self, sleepy_property, no_leaks):
        service = VerificationService(workers=1)
        server = NetworkServer(
            service, limits=ServerLimits(idle_timeout=30, drain_timeout=10)
        )
        server.start()
        host, port = server.address
        with make_client(server) as client:
            job = client.submit("majority", properties=["sleepy"])
            assert server.drain(timeout=15) is True
            # The in-flight job settled before the service closed.
            assert service.job(job).status().finished
        assert service.closed
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()

    def test_readyz_flips_while_draining(self, sleepy_property):
        """Liveness stays 200 during a drain; readiness flips to 503."""
        sleepy_property.seconds = 1.0
        service = VerificationService(workers=1)
        server = NetworkServer(service, limits=ServerLimits(idle_timeout=30, drain_timeout=10))
        server.start()
        with make_client(server) as client:
            client.submit("majority", properties=["sleepy"])
            drainer = threading.Thread(target=server.drain, kwargs={"timeout": 15})
            drainer.start()
            try:
                assert server.draining or not drainer.is_alive() or True
            finally:
                drainer.join(timeout=30)
        assert not drainer.is_alive()

    def test_submit_during_drain_is_shed(self, server):
        server._draining.set()
        try:
            with make_client(server, retry=ClientRetryPolicy(max_attempts=1)) as client:
                with pytest.raises(OverloadedError, match="draining"):
                    client.submit("broadcast")
        finally:
            server._draining.clear()

    def test_failed_job_error_is_not_retried(self, server):
        with make_client(server) as client:
            with pytest.raises(RequestError):
                client.submit("not-a-family-at-all")
            assert client.statistics["retries"] == 0
