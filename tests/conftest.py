"""Shared pytest fixtures: small protocols used across the test suite."""

from __future__ import annotations

import pytest

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import PopulationProtocol, Transition


def build_majority_protocol() -> PopulationProtocol:
    """The majority protocol of Example 1, built by hand (no library import).

    States A, B, a, b; computes "#B >= #A".
    """
    transitions = [
        Transition.make(("A", "B"), ("a", "b"), name="tAB"),
        Transition.make(("A", "b"), ("A", "a"), name="tAb"),
        Transition.make(("B", "a"), ("B", "b"), name="tBa"),
        Transition.make(("b", "a"), ("b", "b"), name="tba"),
    ]
    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=transitions,
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="majority(handmade)",
    )


@pytest.fixture
def majority_protocol() -> PopulationProtocol:
    return build_majority_protocol()


@pytest.fixture
def broadcast_protocol() -> PopulationProtocol:
    """One-transition broadcast protocol: (1, 0) -> (1, 1); computes x_1 >= 1."""
    return PopulationProtocol(
        states=[0, 1],
        transitions=[Transition.make((1, 0), (1, 1), name="spread")],
        input_alphabet=["zero", "one"],
        input_map={"zero": 0, "one": 1},
        output_map={0: 0, 1: 1},
        name="broadcast(handmade)",
    )


@pytest.fixture
def config() -> Multiset:
    return Multiset({"A": 2, "B": 3})
