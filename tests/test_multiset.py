"""Unit and property-based tests for :mod:`repro.datatypes.multiset`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datatypes.multiset import Multiset

elements = st.sampled_from(["a", "b", "c", "d", "e"])
multisets = st.dictionaries(elements, st.integers(min_value=0, max_value=6)).map(Multiset)


class TestConstruction:
    def test_from_mapping_drops_zero_counts(self):
        m = Multiset({"a": 2, "b": 0})
        assert m["a"] == 2
        assert "b" not in m
        assert m.support() == frozenset({"a"})

    def test_from_iterable_counts_occurrences(self):
        m = Multiset(["x", "y", "x", "x"])
        assert m["x"] == 3
        assert m["y"] == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"a": -1})

    def test_non_integer_count_rejected(self):
        with pytest.raises(TypeError):
            Multiset({"a": 1.5})

    def test_singleton_and_empty(self):
        assert Multiset.empty().is_empty()
        assert Multiset.singleton("q", 3)["q"] == 3

    def test_from_pairs_sums_duplicates(self):
        m = Multiset.from_pairs([("a", 1), ("a", 2), ("b", 1)])
        assert m["a"] == 3
        assert m["b"] == 1


class TestQueries:
    def test_size_and_len(self):
        m = Multiset({"a": 2, "b": 3})
        assert m.size() == 5
        assert len(m) == 2

    def test_missing_element_is_zero(self):
        assert Multiset({"a": 1})["zzz"] == 0

    def test_total_over_subset(self):
        m = Multiset({"a": 2, "b": 3, "c": 1})
        assert m.total(["a", "c"]) == 3
        assert m.total([]) == 0

    def test_elements_iterates_occurrences(self):
        m = Multiset({"a": 2, "b": 1})
        assert sorted(m.elements()) == ["a", "a", "b"]


class TestAlgebra:
    def test_addition(self):
        assert Multiset({"a": 1}) + Multiset({"a": 2, "b": 1}) == Multiset({"a": 3, "b": 1})

    def test_subtraction_exact(self):
        assert Multiset({"a": 3, "b": 1}) - Multiset({"a": 1, "b": 1}) == Multiset({"a": 2})

    def test_subtraction_raises_when_not_included(self):
        with pytest.raises(ValueError):
            Multiset({"a": 1}) - Multiset({"a": 2})

    def test_monus_saturates(self):
        assert Multiset({"a": 1, "b": 2}).monus(Multiset({"a": 5})) == Multiset({"b": 2})

    def test_scale(self):
        assert Multiset({"a": 2}).scale(3) == Multiset({"a": 6})
        assert Multiset({"a": 2}).scale(0).is_empty()
        with pytest.raises(ValueError):
            Multiset({"a": 1}).scale(-1)

    def test_union_intersection(self):
        m1 = Multiset({"a": 2, "b": 1})
        m2 = Multiset({"a": 1, "c": 4})
        assert m1.union(m2) == Multiset({"a": 2, "b": 1, "c": 4})
        assert m1.intersection(m2) == Multiset({"a": 1})

    def test_restrict(self):
        assert Multiset({"a": 2, "b": 1}).restrict(["a"]) == Multiset({"a": 2})


class TestComparison:
    def test_inclusion(self):
        assert Multiset({"a": 1}) <= Multiset({"a": 2, "b": 1})
        assert not Multiset({"a": 3}) <= Multiset({"a": 2})
        assert Multiset({"a": 1}) < Multiset({"a": 2})
        assert Multiset({"a": 2}) >= Multiset({"a": 2})
        assert not Multiset({"a": 2}) > Multiset({"a": 2})

    def test_disjoint(self):
        assert Multiset({"a": 1}).disjoint(Multiset({"b": 2}))
        assert not Multiset({"a": 1}).disjoint(Multiset({"a": 2}))

    def test_hash_consistency(self):
        assert hash(Multiset({"a": 1, "b": 2})) == hash(Multiset({"b": 2, "a": 1}))
        assert Multiset({"a": 1}) in {Multiset({"a": 1})}


class TestPrinting:
    def test_repr_deterministic(self):
        assert repr(Multiset({"b": 1, "a": 2})) == "Multiset({'a': 2, 'b': 1})"

    def test_pretty(self):
        assert Multiset().pretty() == "{}"
        assert Multiset({"a": 2, "b": 1}).pretty() == "{2*a, b}"


class TestProperties:
    @given(multisets, multisets)
    def test_addition_commutative(self, m1, m2):
        assert m1 + m2 == m2 + m1

    @given(multisets, multisets, multisets)
    def test_addition_associative(self, m1, m2, m3):
        assert (m1 + m2) + m3 == m1 + (m2 + m3)

    @given(multisets)
    def test_empty_is_identity(self, m):
        assert m + Multiset() == m

    @given(multisets, multisets)
    def test_monus_then_add_dominates(self, m1, m2):
        # (m1 ∸ m2) + m2 >= m1 and equals m1 when m2 <= m1
        assert m1 <= m1.monus(m2) + m2
        if m2 <= m1:
            assert m1.monus(m2) + m2 == m1
            assert m1 - m2 == m1.monus(m2)

    @given(multisets, multisets)
    def test_size_additive(self, m1, m2):
        assert (m1 + m2).size() == m1.size() + m2.size()

    @given(multisets, multisets)
    def test_inclusion_iff_monus_empty(self, m1, m2):
        assert (m1 <= m2) == m1.monus(m2).is_empty()

    @given(multisets, multisets)
    def test_union_is_lub(self, m1, m2):
        union = m1.union(m2)
        assert m1 <= union and m2 <= union

    @given(multisets, multisets)
    def test_intersection_is_glb(self, m1, m2):
        inter = m1.intersection(m2)
        assert inter <= m1 and inter <= m2

    @given(multisets)
    def test_support_matches_positive_counts(self, m):
        assert m.support() == frozenset(e for e in m if m[e] > 0)

    @given(multisets, st.integers(min_value=0, max_value=5))
    def test_scale_size(self, m, k):
        assert m.scale(k).size() == k * m.size()
