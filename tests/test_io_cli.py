"""Tests for JSON serialisation and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io.serialization import (
    protocol_from_dict,
    protocol_from_json,
    protocol_to_dict,
    protocol_to_json,
)
from repro.protocols.library import majority_protocol, threshold_protocol


class TestSerialization:
    def test_round_trip_simple_protocol(self, majority_protocol):
        data = protocol_to_json(majority_protocol)
        restored = protocol_from_json(data)
        assert restored.states == majority_protocol.states
        assert set(restored.transitions) == set(majority_protocol.transitions)
        assert restored.input_map == majority_protocol.input_map
        assert restored.output_map == majority_protocol.output_map

    def test_round_trip_with_tuple_states_and_hint(self):
        protocol = threshold_protocol({"x": 1, "y": -1}, 1)
        restored = protocol_from_json(protocol_to_json(protocol))
        assert restored.states == protocol.states
        assert set(restored.transitions) == set(protocol.transitions)
        assert restored.partition_hint is not None
        assert restored.partition_hint.covers(restored.transitions)

    def test_round_trip_library_majority_hint(self):
        protocol = majority_protocol()
        restored = protocol_from_dict(protocol_to_dict(protocol))
        assert restored.partition_hint is not None
        assert len(restored.partition_hint) == len(protocol.partition_hint)

    def test_json_is_deterministic(self, majority_protocol):
        assert protocol_to_json(majority_protocol) == protocol_to_json(majority_protocol)

    def test_dict_contains_expected_keys(self, majority_protocol):
        data = protocol_to_dict(majority_protocol)
        assert {"states", "transitions", "input_alphabet", "input_map", "output_map"} <= set(data)


class TestCLI:
    def test_list_families(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "majority" in output
        assert "flock-of-birds" in output

    def test_verify_majority_family(self, capsys):
        exit_code = main(["family", "majority", "--simulate", "A=2,B=3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "WS3 membership check" in output
        assert "simulation of A=2,B=3" in output

    def test_verify_family_json_output_is_a_lossless_report(self, capsys):
        from repro.api import VerificationReport

        exit_code = main(["family", "broadcast", "--json"])
        raw = capsys.readouterr().out
        payload = json.loads(raw)
        assert exit_code == 0
        assert payload["protocol"] == "broadcast"
        assert payload["schema"].startswith("repro-verification-report/")
        report = VerificationReport.from_json(raw)
        assert report.is_ws3
        assert report.holds("layered_termination")
        assert report.result_for("layered_termination").certificate is not None

    def test_verify_family_with_parameter_and_correctness(self, capsys):
        exit_code = main(
            ["family", "flock-of-birds", "--parameter", "3", "--check-correctness", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        correctness = [p for p in payload["properties"] if p["property"] == "correctness"]
        assert correctness and correctness[0]["verdict"] == "holds"

    def test_verify_single_property_selection(self, capsys):
        exit_code = main(["family", "broadcast", "--property", "layered_termination", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert [p["property"] for p in payload["properties"]] == ["layered_termination"]

    def test_verify_protocol_from_file(self, tmp_path, capsys, majority_protocol):
        path = tmp_path / "majority.json"
        path.write_text(protocol_to_json(majority_protocol), encoding="utf-8")
        exit_code = main(["file", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "LayeredTermination" in output

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["family", "does-not-exist"])

    def test_verify_family_with_jobs(self, capsys):
        from repro.api import VerificationReport

        exit_code = main(["family", "broadcast", "--jobs", "2", "--json"])
        report = VerificationReport.from_json(capsys.readouterr().out)
        assert exit_code == 0
        assert report.is_ws3


class TestBatchCLI:
    def test_batch_mixed_specs_and_exit_code(self, tmp_path, capsys, majority_protocol):
        path = tmp_path / "majority.json"
        path.write_text(protocol_to_json(majority_protocol), encoding="utf-8")
        exit_code = main(
            ["batch", "broadcast", str(path), "--cache-dir", str(tmp_path / "cache")]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "broadcast" in output
        assert "2 verified, 0 cache hit(s)" in output

    def test_batch_second_run_is_served_from_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", "broadcast", "majority", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["batch", "broadcast", "majority", "--cache-dir", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "0 verified, 2 cache hit(s)" in output
        assert output.count("[cache]") == 2

    def test_batch_json_output_with_jobs(self, tmp_path, capsys):
        exit_code = main(
            [
                "batch",
                "broadcast",
                "--jobs",
                "2",
                "--json",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["statistics"]["jobs"] == 2
        assert payload["protocols"][0]["is_ws3"] is True
        assert len(payload["protocols"][0]["hash"]) == 64

    def test_batch_failing_protocol_sets_exit_code(self, tmp_path, capsys):
        from repro.protocols.library import coin_flip_protocol

        path = tmp_path / "coin.json"
        path.write_text(protocol_to_json(coin_flip_protocol()), encoding="utf-8")
        exit_code = main(["batch", "broadcast", str(path), "--no-cache"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "NOT PROVEN" in output

    def test_batch_unknown_spec_sets_loader_exit_code(self, capsys):
        exit_code = main(["batch", "no-such-family-or-file", "--no-cache"])
        assert exit_code == 2
        assert "unknown protocol family or file" in capsys.readouterr().err


class TestObservabilityCLI:
    def test_trace_flag_writes_single_rooted_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        exit_code = main(
            ["family", "broadcast", "--jobs", "2", "--trace", str(trace_path), "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        json.loads(captured.out)  # --json stdout stays machine-parseable
        assert "span(s) written" in captured.err

        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        ids = {event["args"]["span_id"] for event in events}
        roots = [event for event in events if event["args"]["parent_id"] not in ids]
        assert len(roots) == 1 and roots[0]["name"] == "job"
        names = {event["name"] for event in events}
        assert {"job", "property", "engine.wave", "subproblem"} <= names

    def test_trace_subcommand_pretty_prints(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        assert main(["family", "broadcast", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "1 root(s)" in output
        assert "property" in output  # hottest spans by self-time

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "not-a-trace.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["trace", str(path)]) == 2
        assert "no repro spans" in capsys.readouterr().err

    def test_profile_flag_reports_to_stderr_only(self, capsys):
        exit_code = main(["family", "broadcast", "--profile", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert "profile" in payload["statistics"]
        assert "profile: phase" in captured.err

    def test_progress_lines_go_to_stderr_not_stdout(self, capsys):
        # Regression for the satellite fix: --progress chatter must never
        # interleave with --json stdout.
        exit_code = main(["family", "broadcast", "--progress", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        json.loads(captured.out)  # one clean JSON document
        assert "job_queued" in captured.err or "queued" in captured.err
