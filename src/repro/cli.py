"""Command-line front end (the Peregrine-style "repro-verify" tool).

A thin shell over the unified :class:`repro.api.Verifier` session API: every
command builds one ``Verifier``, runs the requested properties, and prints
either the human-readable report summary or — with ``--json`` — the lossless
report dictionary (``VerificationReport.to_dict()``), which round-trips back
into report objects via ``VerificationReport.from_json``.

Examples
--------
Verify a library protocol::

    repro-verify family majority
    repro-verify family flock-of-birds --parameter 10

Check specific properties of a protocol stored as JSON::

    repro-verify file my_protocol.json --property layered_termination
    repro-verify file my_protocol.json --simulate "A=3,B=5"

Verify a whole batch on four worker processes, with the result cache::

    repro-verify batch majority broadcast flock-of-birds:6 my_protocol.json \
        --jobs 4 --cache-dir .repro-cache

Stream progress events while a check runs (``--progress`` writes one line
per event to stderr; add ``--progress-json`` for machine-readable events)::

    repro-verify family majority --progress

Run the JSON-lines verification daemon (submit/status/events/cancel/result
requests on stdin, responses and streamed events on stdout — the protocol
reference is in :mod:`repro.service.serve`)::

    repro-verify serve --jobs 4 --workers 2

List the available families::

    repro-verify list

Exit codes: 0 — no requested property failed (a property can also be
*skipped*, e.g. correctness on a protocol without a documented predicate:
the report says so explicitly and the run is not considered a failure);
1 — a property failed; 2 — a protocol spec or file could not be loaded.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import VerificationOptions, Verifier, available_properties
from repro.constraints.backends import available_backends
from repro.io.loading import ProtocolLoadError, load_protocol_file, resolve_protocol_spec
from repro.protocols.library import PROTOCOL_FAMILIES
from repro.protocols.simulation import Simulator


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify population protocols (WS3 membership and related properties).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the built-in protocol families")

    subparsers.add_parser("properties", help="list the registered verifiable properties")

    family_parser = subparsers.add_parser("family", help="verify a built-in protocol family")
    family_parser.add_argument("name", choices=sorted(PROTOCOL_FAMILIES), help="family name")
    family_parser.add_argument(
        "--parameter", type=int, default=None, help="primary size parameter (where applicable)"
    )
    _add_common_options(family_parser)

    file_parser = subparsers.add_parser("file", help="verify a protocol stored as JSON")
    file_parser.add_argument("path", help="path to the protocol JSON file")
    _add_common_options(file_parser)

    batch_parser = subparsers.add_parser(
        "batch",
        help="verify many protocols at once (process-pool fan-out + result cache)",
    )
    batch_parser.add_argument(
        "specs",
        nargs="+",
        metavar="SPEC",
        help=(
            "a protocol: either 'family' or 'family:parameter' (e.g. flock-of-birds:6), "
            "or a path to a protocol JSON file"
        ),
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="directory of the content-addressed result cache (default: .repro-cache)",
    )
    batch_parser.add_argument(
        "--no-cache", action="store_true", help="verify everything, touching no cache"
    )
    _add_verifier_options(batch_parser)
    _add_progress_options(batch_parser)
    _add_observability_options(batch_parser)
    batch_parser.add_argument("--json", action="store_true", help="print the verdicts as JSON")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the JSON-lines verification daemon on stdin/stdout",
    )
    _add_verifier_options(serve_parser)
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="jobs allowed to run concurrently (dispatcher threads; default: 1)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the content-addressed result cache (default: no cache)",
    )
    serve_parser.add_argument(
        "--journal-dir",
        default=None,
        help=(
            "directory of the durable job journal; a daemon restarted on the "
            "same journal resumes its unfinished jobs and still serves its "
            "finished results (default: no journal)"
        ),
    )
    serve_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="with --journal-dir: restore finished results but do not re-enqueue unfinished jobs",
    )
    serve_parser.add_argument(
        "--compact-threshold",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "with --journal-dir: journal size that triggers auto-compaction "
            "(default: 8 MiB; 0 disables auto-compaction)"
        ),
    )
    serve_parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve over TCP instead of stdin/stdout; port 0 picks a free port "
            "(the bound address is announced as a {\"type\": \"listening\"} line "
            "on stdout).  The listener also answers HTTP on the same port."
        ),
    )
    serve_parser.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve the HTTP adapter (POST /jobs, GET /jobs/<id>, "
            "GET /jobs/<id>/events, /healthz, /readyz); the listener also "
            "speaks the JSON-lines protocol — with --tcp both must name the "
            "same address (one dual-protocol listener)"
        ),
    )
    serve_parser.add_argument(
        "--max-connections",
        type=_positive_int,
        default=None,
        help="live connections before new ones are shed with 'overloaded' (default: 64)",
    )
    serve_parser.add_argument(
        "--max-pending-jobs",
        type=_positive_int,
        default=None,
        help="queued jobs before submits are shed with 'overloaded' (default: 256)",
    )
    serve_parser.add_argument(
        "--max-frame-bytes",
        type=_positive_int,
        default=None,
        help="largest accepted request frame/body in bytes (default: 1 MiB)",
    )
    serve_parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="reap connections idle longer than this (default: 300)",
    )
    serve_parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="FRAMES_PER_SECOND",
        help="per-connection request rate limit (default: unlimited)",
    )
    serve_parser.add_argument(
        "--event-buffer",
        type=_positive_int,
        default=None,
        help=(
            "buffered event lines per connection; a slower client loses the "
            "oldest with an explicit 'dropped' marker (default: 256)"
        ),
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="graceful-drain window on SIGTERM/SIGINT (default: 30)",
    )

    route_parser = subparsers.add_parser(
        "route",
        help=(
            "run the sharded routing tier: N supervised serve replicas "
            "behind one content-hash job router"
        ),
    )
    route_parser.add_argument(
        "--replicas",
        type=_positive_int,
        default=2,
        help="daemon replicas to spawn and shard over (default: 2)",
    )
    route_parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help=(
            "the router's bind address; port 0 picks a free port "
            "(announced as a {\"type\": \"listening\"} line on stdout)"
        ),
    )
    route_parser.add_argument(
        "--state-dir",
        default=".repro-fleet",
        help=(
            "fleet state root: shard i keeps its journal, cache and log under "
            "STATE_DIR/s<i>/ (default: .repro-fleet); restarting the router on "
            "the same directory resumes every shard's journalled backlog"
        ),
    )
    route_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="dispatcher threads per replica (default: 1)",
    )
    route_parser.add_argument(
        "--compact-threshold",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-shard journal auto-compaction threshold (default: 8 MiB; 0 disables)",
    )
    route_parser.add_argument(
        "--max-connections",
        type=_positive_int,
        default=None,
        help="live router connections before new ones are shed (default: 64)",
    )
    route_parser.add_argument(
        "--max-pending-jobs",
        type=_positive_int,
        default=None,
        help="pending jobs per shard before submits are shed (default: 256)",
    )
    route_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="graceful fleet-drain window on SIGTERM/SIGINT (default: 30)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="pretty-print a Chrome-trace JSON written by --trace",
    )
    trace_parser.add_argument("path", help="path to the trace JSON file")
    trace_parser.add_argument(
        "--top",
        type=_positive_int,
        default=20,
        metavar="N",
        help="span rows to show, hottest self-time first (default: 20)",
    )

    return parser


def _add_verifier_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every verifying command (they feed VerificationOptions)."""
    parser.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "hint", "single", "scc", "smt"],
        help="partition-search strategy for LayeredTermination",
    )
    parser.add_argument(
        "--theory",
        default="auto",
        choices=["auto", "scipy", "exact"],
        help="theory-solver preference inside the backend",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=sorted(available_backends()),
        help=(
            "solver backend from the registry (default: $REPRO_BACKEND or smtlite); "
            "smtlite = DPLL(T), scipy-ilp = direct ILP case splitting, "
            "portfolio = cheapest-first race of the two"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the parallel verification engine (default: 1, serial)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help=(
            "disable the incremental constraint IR (scoped deltas and base-level "
            "cut reuse in the CEGAR loops); same verdicts, rebuild-per-scope "
            "performance (also: REPRO_INCREMENTAL=0)"
        ),
    )
    parser.add_argument(
        "--property",
        dest="properties",
        action="append",
        choices=sorted(available_properties()),
        default=None,
        metavar="NAME",
        help="property to check (repeatable; default: ws3)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "resubmissions of a subproblem whose worker died or timed out "
            "(default: 2; 0 disables retries)"
        ),
    )
    parser.add_argument(
        "--subproblem-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per subproblem; exceeding it counts as a retryable failure",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per verification job; when it runs out the "
            "unfinished properties are reported as PARTIAL"
        ),
    )


def _add_progress_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream progress events (one human-readable line each) to stderr",
    )
    parser.add_argument(
        "--progress-json",
        action="store_true",
        help="stream progress events as JSON lines to stderr (implies --progress)",
    )


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a hierarchical span tree of the run (job → property → "
            "subproblem → solver check) and write it as Chrome-trace JSON to "
            "PATH; inspect with 'repro-verify trace PATH' or chrome://tracing"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile the run: per-property wall/CPU phase timings and the "
            "cProfile top functions, printed to stderr after the report"
        ),
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    _add_verifier_options(parser)
    _add_progress_options(parser)
    _add_observability_options(parser)
    parser.add_argument(
        "--check-correctness",
        action="store_true",
        help="also check the protocol against its documented predicate (if any)",
    )
    parser.add_argument(
        "--simulate",
        metavar="INPUT",
        default=None,
        help='simulate one run on an input such as "A=3,B=5"',
    )
    parser.add_argument("--json", action="store_true", help="print the verdict as JSON")


def _parse_input(text: str) -> dict:
    population = {}
    for part in text.split(","):
        symbol, _, count = part.partition("=")
        population[symbol.strip()] = int(count)
    return population


def _options_from_args(args) -> VerificationOptions:
    overrides = {"strategy": args.strategy, "theory": args.theory, "jobs": args.jobs}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if getattr(args, "no_incremental", False):
        overrides["incremental"] = False
    retry_overrides = {}
    if getattr(args, "max_retries", None) is not None:
        retry_overrides["max_retries"] = args.max_retries
    if getattr(args, "subproblem_timeout", None) is not None:
        retry_overrides["subproblem_timeout"] = args.subproblem_timeout
    if getattr(args, "job_timeout", None) is not None:
        retry_overrides["job_timeout"] = args.job_timeout
    if retry_overrides:
        from repro.engine.retry import DEFAULT_RETRY

        overrides["retry"] = DEFAULT_RETRY.replace(**retry_overrides)
    if getattr(args, "trace", None):
        overrides["trace"] = True
    if getattr(args, "profile", False):
        overrides["profile"] = True
    return VerificationOptions(**overrides)


def _properties_from_args(args) -> list[str]:
    properties = list(args.properties) if args.properties else ["ws3"]
    if getattr(args, "check_correctness", False) and "correctness" not in properties:
        properties.append("correctness")
    return properties


def _load_protocol(args):
    if args.command == "family":
        # Route through the spec loader so bad parameters surface as
        # ProtocolLoadError (exit code 2), exactly like batch specs.
        spec = args.name if args.parameter is None else f"{args.name}:{args.parameter}"
        return resolve_protocol_spec(spec)
    return load_protocol_file(args.path)


def _event_printer(args):
    """The ``--progress`` subscriber: one line per event on stderr, or None."""
    if not (getattr(args, "progress", False) or getattr(args, "progress_json", False)):
        return None
    from repro.service.events import describe_event

    if getattr(args, "progress_json", False):
        return lambda event: print(json.dumps(event.to_dict(), sort_keys=True), file=sys.stderr)
    return lambda event: print(describe_event(event), file=sys.stderr)


def _write_trace(args, spans) -> None:
    """Write the run's spans (``--trace PATH``) as Chrome-trace JSON."""
    path = getattr(args, "trace", None)
    if not path:
        return
    from repro.obs.trace import chrome_trace

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle)
    print(f"trace: {len(spans)} span(s) written to {path}", file=sys.stderr)


def _print_profile(args, statistics) -> None:
    """Render the ``--profile`` phase timings and hot functions on stderr."""
    if not getattr(args, "profile", False):
        return
    profile = statistics.get("profile") or {}
    phases = profile.get("phases") or {}
    for name, row in sorted(phases.items(), key=lambda kv: -kv[1]["wall_seconds"]):
        print(
            f"profile: phase {name:<24s} wall {row['wall_seconds']:8.3f}s  "
            f"cpu {row['cpu_seconds']:8.3f}s  x{row['calls']}",
            file=sys.stderr,
        )
    top = profile.get("top_functions") or []
    if top:
        print("profile: hottest functions (cumulative):", file=sys.stderr)
    for row in top[:15]:
        print(
            f"profile: {row['cumulative_seconds']:9.3f}s cum "
            f"{row['total_seconds']:9.3f}s self {row['calls']:>9} calls  {row['function']}",
            file=sys.stderr,
        )


def _run_single(args) -> int:
    protocol = _load_protocol(args)
    properties = _properties_from_args(args)
    # A missing documented predicate surfaces as a SKIPPED correctness
    # verdict in the report itself, so no ad-hoc message is printed here
    # (it would also pollute --json output).
    with Verifier(_options_from_args(args)) as verifier:
        report = verifier.check(protocol, properties=properties, on_event=_event_printer(args))

    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    _write_trace(args, report.statistics.get("trace") or [])
    _print_profile(args, report.statistics)

    if args.simulate:
        simulator = Simulator(protocol, seed=0)
        run = simulator.run(input_population=_parse_input(args.simulate))
        print(
            f"  simulation of {args.simulate}: output={run.output} after {run.steps} interactions "
            f"(converged={run.converged})"
        )

    return 0 if report.ok else 1


def _run_batch(args) -> int:
    protocols = [resolve_protocol_spec(spec) for spec in args.specs]
    properties = _properties_from_args(args)
    options = _options_from_args(args)
    if not args.no_cache:
        options = options.replace(cache_dir=args.cache_dir)
    with Verifier(options) as verifier:
        batch = verifier.check_many(protocols, properties=properties, on_event=_event_printer(args))
    cache_stats = batch.statistics.get("cache") or {"hits": 0, "misses": 0}
    ws3_requested = "ws3" in properties
    if args.json:
        payload = {
            "protocols": [
                {
                    "protocol": item.protocol_name,
                    "hash": item.protocol_hash,
                    "ok": item.ok,
                    "is_ws3": item.is_ws3 if ws3_requested else None,
                    "from_cache": item.from_cache,
                    "time_seconds": item.time_seconds,
                    "report": item.report.to_dict(),
                }
                for item in batch
            ],
            "statistics": batch.statistics,
        }
        print(json.dumps(payload, indent=2))
    else:
        for item in batch:
            if ws3_requested:
                verdict = "WS3" if item.is_ws3 else "NOT PROVEN"
            else:
                verdict = "OK" if item.ok else "FAILED"
            source = "cache" if item.from_cache else f"{item.time_seconds:.3f}s"
            print(f"{item.protocol_name:40s} {verdict:11s} [{source}]")
        print(
            f"batch: {len(batch)} protocol(s), {batch.statistics['verified']} verified, "
            f"{cache_stats['hits']} cache hit(s), jobs={batch.statistics['jobs']}, "
            f"total {batch.statistics['time']:.3f}s"
        )
    if getattr(args, "trace", None):
        spans = []
        for item in batch:
            spans.extend(item.report.statistics.get("trace") or [])
        _write_trace(args, spans)
    if getattr(args, "profile", False):
        for item in batch:
            if item.report.statistics.get("profile"):
                print(f"profile: --- {item.protocol_name} ---", file=sys.stderr)
                _print_profile(args, item.report.statistics)
    return 0 if batch.all_ok else 1


def _run_serve(args) -> int:
    from repro.service import ServeSession, VerificationService

    options = _options_from_args(args)
    if args.cache_dir is not None:
        options = options.replace(cache_dir=args.cache_dir)
    service = VerificationService(
        options,
        workers=args.workers,
        journal_dir=args.journal_dir,
        resume=not args.no_resume,
        journal_compact_threshold=args.compact_threshold,
    )
    if args.tcp or args.http:
        from repro.service.net import NetworkServer, ServerLimits, parse_address

        if args.tcp and args.http and args.tcp != args.http:
            print(
                "repro-verify: --tcp and --http share one dual-protocol listener; "
                "give them the same address (or only one of them)",
                file=sys.stderr,
            )
            service.close(wait=False)
            return 2
        host, port = parse_address(args.tcp or args.http)
        overrides = {
            name: value
            for name, value in (
                ("max_connections", args.max_connections),
                ("max_pending_jobs", args.max_pending_jobs),
                ("max_frame_bytes", args.max_frame_bytes),
                ("idle_timeout", args.idle_timeout),
                ("rate_limit", args.rate_limit),
                ("event_buffer", args.event_buffer),
                ("drain_timeout", args.drain_timeout),
            )
            if value is not None
        }
        server = NetworkServer(service, host, port, limits=ServerLimits(**overrides))
        bound_host, bound_port = server.start()

        # Announced on stdout so wrappers (tests, the supervisor, the load
        # harness) learn the ephemeral port of a --tcp HOST:0 daemon.  The
        # announcement runs via on_ready — after the SIGTERM handler is in
        # place — so a wrapper may drain us the instant it reads the line.
        def announce_listening():
            print(
                json.dumps(
                    {
                        "type": "listening",
                        "host": bound_host,
                        "port": bound_port,
                        "protocols": ["jsonl", "http"],
                    }
                ),
                flush=True,
            )

        return server.serve_forever(on_ready=announce_listening)
    return ServeSession(service, sys.stdin, sys.stdout).run()


def _run_route(args) -> int:
    from repro.service.net import ServerLimits, parse_address
    from repro.service.replicas import ReplicaError, ReplicaSupervisor
    from repro.service.router import JobRouter, RouterServer, announce

    host, port = parse_address(args.tcp)
    serve_args: tuple[str, ...] = ()
    if args.compact_threshold is not None:
        serve_args = ("--compact-threshold", str(args.compact_threshold))
    supervisor = ReplicaSupervisor(
        args.replicas,
        args.state_dir,
        workers=args.workers,
        serve_args=serve_args,
    )
    try:
        supervisor.start()
    except ReplicaError as error:
        print(f"repro-verify: {error}", file=sys.stderr)
        supervisor.drain(timeout=10.0)
        return 2
    overrides = {
        name: value
        for name, value in (
            ("max_connections", args.max_connections),
            ("max_pending_jobs", args.max_pending_jobs),
            ("drain_timeout", args.drain_timeout),
        )
        if value is not None
    }
    router = JobRouter(supervisor)
    server = RouterServer(router, host, port, limits=ServerLimits(**overrides))
    server.start()
    return server.serve_forever(on_ready=lambda: print(announce(server), flush=True))


def _run_trace(args) -> int:
    """Pretty-print a ``--trace`` file: the hottest spans by self-time."""
    from repro.obs.trace import self_times, spans_from_chrome_trace

    try:
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"repro-verify: cannot read trace {args.path!r}: {error}", file=sys.stderr)
        return 2
    spans = spans_from_chrome_trace(payload)
    if not spans:
        print(f"repro-verify: {args.path!r} contains no repro spans", file=sys.stderr)
        return 2
    roots = sum(
        1
        for span_dict in spans
        if span_dict.get("parent_id") not in {s["span_id"] for s in spans}
    )
    total = max(s.get("end", s["start"]) for s in spans) - min(s["start"] for s in spans)
    print(f"{len(spans)} span(s), {roots} root(s), {total:.3f}s wall")
    by_id = {span_dict["span_id"]: span_dict for span_dict in spans}
    self_time = self_times(spans)
    print(f"{'self':>9s} {'total':>9s}  span")
    for span_id, seconds in sorted(self_time.items(), key=lambda kv: -kv[1])[: args.top]:
        span_dict = by_id[span_id]
        duration = max(0.0, span_dict.get("end", span_dict["start"]) - span_dict["start"])
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span_dict.get("attrs", {}).items())
        )
        label = span_dict["name"] + (f" [{attrs}]" if attrs else "")
        print(f"{seconds:8.3f}s {duration:8.3f}s  {label}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-verify`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(PROTOCOL_FAMILIES):
            print(name)
        return 0

    if args.command == "properties":
        for name in available_properties():
            print(name)
        return 0

    if args.command == "serve":
        # The daemon answers loader failures as error responses, not exits.
        return _run_serve(args)

    if args.command == "route":
        return _run_route(args)

    if args.command == "trace":
        return _run_trace(args)

    # Loader failures are library exceptions (ProtocolLoadError); only here,
    # at the process boundary, do they become exit codes.
    try:
        if args.command == "batch":
            return _run_batch(args)
        return _run_single(args)
    except ProtocolLoadError as error:
        print(f"repro-verify: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
