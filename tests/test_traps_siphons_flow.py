"""Tests for traps, siphons, flow equations and potential reachability."""

from __future__ import annotations

import pytest

from repro.datatypes.multiset import Multiset
from repro.verification.flow import (
    PotentialReachabilityWitness,
    apply_flow,
    check_potential_reachability,
    flow_from_transition_sequence,
    satisfies_flow_equations,
)
from repro.petri.traps_siphons import (
    all_minimal_siphons,
    is_siphon,
    is_trap,
    maximal_siphon_with_support_outside,
    maximal_trap_with_support_outside,
    post_transitions,
    pre_transitions,
)


@pytest.fixture
def majority_by_name(majority_protocol):
    return {t.name: t for t in majority_protocol.transitions}


class TestTrapsAndSiphons:
    def test_example_13_trap(self, majority_protocol, majority_by_name):
        # {A, b} is a U-trap for U = {tAB, tAb} (Example 13 of the paper).
        U = [majority_by_name["tAB"], majority_by_name["tAb"]]
        assert is_trap(majority_protocol, {"A", "b"}, U)

    def test_not_a_trap_for_full_transition_set(self, majority_protocol):
        # tBa removes from {A, b}?  No: tBa = (B,a)->(B,b) adds to it.  But
        # tAb = (A,b)->(A,a) removes b without adding, so {b} alone is not a trap.
        assert not is_trap(majority_protocol, {"b"}, majority_protocol.transitions)

    def test_whole_state_set_is_trap_and_siphon(self, majority_protocol):
        assert is_trap(majority_protocol, majority_protocol.states, majority_protocol.transitions)
        assert is_siphon(majority_protocol, majority_protocol.states, majority_protocol.transitions)

    def test_siphon_example(self, majority_protocol):
        # {A, B} is a siphon: no transition ever creates A or B.
        assert is_siphon(majority_protocol, {"A", "B"}, majority_protocol.transitions)
        # {a} is not a siphon: tAb produces a without consuming from {a}.
        assert not is_siphon(majority_protocol, {"a"}, majority_protocol.transitions)

    def test_pre_post_transitions(self, majority_protocol, majority_by_name):
        pre = pre_transitions(majority_protocol, {"b"})
        assert majority_by_name["tAB"] in pre and majority_by_name["tBa"] in pre
        post = post_transitions(majority_protocol, {"A"})
        assert majority_by_name["tAB"] in post and majority_by_name["tAb"] in post

    def test_maximal_trap_computation(self, majority_protocol, majority_by_name):
        U = [majority_by_name["tAB"], majority_by_name["tAb"]]
        # Candidate states: those unpopulated in the target Ha, aI.
        candidates = {"A", "B", "b"}
        trap = maximal_trap_with_support_outside(majority_protocol, U, candidates)
        assert set(trap) >= {"A", "b"}
        assert is_trap(majority_protocol, trap, U)

    def test_maximal_trap_empty_when_everything_leaks(self, majority_protocol):
        trap = maximal_trap_with_support_outside(
            majority_protocol, majority_protocol.transitions, {"a"}
        )
        assert trap == frozenset()

    def test_maximal_siphon_computation(self, majority_protocol):
        # {A, B, a} is itself a siphon (every transition producing a also
        # consumes A or B), so the greedy fixed point keeps all three states.
        siphon = maximal_siphon_with_support_outside(
            majority_protocol, majority_protocol.transitions, {"A", "B", "a"}
        )
        assert siphon == frozenset({"A", "B", "a"})
        assert is_siphon(majority_protocol, siphon, majority_protocol.transitions)
        # Inside {a, b} nothing survives: tAB produces both a and b but
        # consumes neither.
        assert maximal_siphon_with_support_outside(
            majority_protocol, majority_protocol.transitions, {"a", "b"}
        ) == frozenset()

    def test_all_minimal_siphons(self, majority_protocol):
        siphons = all_minimal_siphons(majority_protocol)
        assert frozenset({"A"}) in siphons
        assert frozenset({"B"}) in siphons
        assert all(is_siphon(majority_protocol, s, majority_protocol.transitions) for s in siphons)

    def test_trap_marking_is_preserved(self, majority_protocol, majority_by_name):
        # Dynamic meaning of a trap (Observation 11): once marked, stays marked.
        U = [majority_by_name["tAB"], majority_by_name["tAb"]]
        trap = {"A", "b"}
        config = Multiset({"A": 1, "B": 1})
        assert config.total(trap) > 0
        for transition in U:
            if transition.enabled_at(config):
                successor = transition.fire(config)
                assert successor.total(trap) > 0


class TestFlowEquations:
    def test_apply_flow_matches_firing(self, majority_protocol, majority_by_name):
        config = Multiset({"A": 2, "B": 3})
        sequence = [majority_by_name["tAB"], majority_by_name["tBa"]]
        flow = flow_from_transition_sequence(sequence)
        final = config
        for transition in sequence:
            final = transition.fire(final)
        assert satisfies_flow_equations(config, final, flow)
        predicted = apply_flow(config, flow)
        assert all(predicted.get(state, 0) == final[state] for state in majority_protocol.states)

    def test_flow_equation_counterexample(self, majority_by_name):
        # Example 9: the flow equations alone admit HA,BI -> Ha,aI.
        flow = {majority_by_name["tAB"]: 1, majority_by_name["tAb"]: 1}
        assert satisfies_flow_equations(Multiset({"A": 1, "B": 1}), Multiset({"a": 2}), flow)

    def test_negative_flow_rejected(self, majority_by_name):
        with pytest.raises(ValueError):
            apply_flow(Multiset({"A": 1, "B": 1}), {majority_by_name["tAB"]: -1})

    def test_potential_reachability_rejects_example_13(self, majority_protocol, majority_by_name):
        # Example 13: the trap {A, b} rules out HA,BI ~~> Ha,aI.
        witness = PotentialReachabilityWitness(
            source=Multiset({"A": 1, "B": 1}),
            target=Multiset({"a": 2}),
            flow={majority_by_name["tAB"]: 1, majority_by_name["tAb"]: 1},
        )
        ok, reason = check_potential_reachability(majority_protocol, witness)
        assert not ok
        assert "trap" in reason

    def test_potential_reachability_accepts_real_execution(self, majority_protocol, majority_by_name):
        source = Multiset({"A": 1, "B": 2})
        sequence = [majority_by_name["tAB"], majority_by_name["tBa"]]
        target = source
        for transition in sequence:
            target = transition.fire(target)
        witness = PotentialReachabilityWitness(
            source=source, target=target, flow=flow_from_transition_sequence(sequence)
        )
        ok, reason = check_potential_reachability(majority_protocol, witness)
        assert ok, reason

    def test_flow_equations_violated(self, majority_by_name):
        assert not satisfies_flow_equations(
            Multiset({"A": 1, "B": 1}), Multiset({"A": 1, "B": 1}), {majority_by_name["tAB"]: 1}
        )
