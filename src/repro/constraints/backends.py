"""Pluggable solver backends behind a single registry.

The verification layer never constructs a concrete solver any more: it asks
the registry for one (:func:`create_solver`), names travel through
:class:`~repro.api.options.VerificationOptions` / the CLI ``--backend``
flag / the engine's subproblem envelopes, and new backends (a z3 adapter,
say) plug in with :func:`register_backend` without touching a property
check.

Three backends ship by default:

``smtlite``
    The lazy DPLL(T) solver of :mod:`repro.smtlite.solver` — CNF + CDCL SAT
    engine + theory checks on demand.  The right choice for systems with
    real boolean structure (the monolithic StrongConsensus encoding, the
    Appendix D.1 partition search).
``scipy-ilp``
    The direct-ILP loop of :mod:`repro.constraints.direct`: the few
    disjunctions of a pattern-factored system are split combinatorially and
    each case goes straight to integer feasibility (HiGHS MILP via scipy
    when available, the exact branch-and-bound otherwise).  Falls back to a
    DPLL(T) mirror if the case product outgrows its budget, so verdicts
    never depend on the budget.
``portfolio``
    A cheapest-first race: a tightly budgeted direct-ILP attempt answers
    the near-conjunctive queries immediately, and anything structurally
    heavier is handed to a persistent DPLL(T) solver.  (The two runners
    share each query sequentially rather than on threads — both are pure
    Python, so a wall-clock race under the GIL would only add overhead;
    under the parallel engine each worker process races its own pair.)

Every backend returns objects implementing the :class:`ConstraintSolver`
protocol, which is exactly the incremental surface the verification layer
uses; parity across backends is asserted by the cross-backend tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.constraints.direct import CaseBudgetExceeded, DirectILPSolver
from repro.smtlite.formula import Formula
from repro.smtlite.solver import Solver, SolverResult, SolverStatus
from repro.smtlite.terms import LinearExpr


@runtime_checkable
class ConstraintSolver(Protocol):
    """The incremental solver surface the verification layer relies on."""

    statistics: dict

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr: ...

    def add(self, *formulas: Formula) -> None: ...

    def push(self) -> None: ...

    def pop(self) -> None: ...

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult: ...

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult: ...


class SolverBackend(Protocol):
    """A named factory of :class:`ConstraintSolver` instances."""

    name: str

    def create_solver(self, theory: str = "auto") -> ConstraintSolver: ...


# ----------------------------------------------------------------------
# The built-in backends
# ----------------------------------------------------------------------


class SmtliteBackend:
    """The lazy DPLL(T) solver (CNF + CDCL SAT + theory lemmas on demand)."""

    name = "smtlite"

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return Solver(theory=theory)


class ScipyILPBackend:
    """Direct ILP case splitting with a DPLL(T) escape hatch."""

    name = "scipy-ilp"

    def __init__(self, max_cases: int = 512):
        self.max_cases = max_cases

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return DirectILPSolver(theory=theory, max_cases=self.max_cases, fallback=True)


class PortfolioSolver:
    """Cheapest-first structural race between direct ILP and DPLL(T).

    Assertions are mirrored into both runners; each :meth:`check` first
    gives the tightly budgeted direct-ILP runner a shot (it answers the
    near-conjunctive queries of the pattern strategies with a handful of
    feasibility calls) and hands everything heavier to the persistent
    DPLL(T) solver, whose learned lemmas accumulate across the session.
    ``statistics`` records which runner answered each query.
    """

    def __init__(self, theory: str = "auto", direct_max_cases: int = 64):
        self._direct = DirectILPSolver(
            theory=theory, max_cases=direct_max_cases, fallback=False
        )
        self._dpllt = Solver(theory=theory)
        self.statistics = {"checks": 0, "direct_wins": 0, "dpllt_wins": 0}

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        self._dpllt.int_var(name, lower=lower, upper=upper)
        return self._direct.int_var(name, lower=lower, upper=upper)

    def add(self, *formulas: Formula) -> None:
        self._direct.add(*formulas)
        self._dpllt.add(*formulas)

    def push(self) -> None:
        self._direct.push()
        self._dpllt.push()

    def pop(self) -> None:
        self._direct.pop()
        self._dpllt.pop()

    @property
    def num_scopes(self) -> int:
        return self._direct.num_scopes

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        self.statistics["checks"] += 1
        try:
            result = self._direct.check(assumptions=assumptions)
        except CaseBudgetExceeded:
            self.statistics["dpllt_wins"] += 1
            return self._dpllt.check(assumptions=assumptions)
        if result.status is SolverStatus.UNKNOWN:
            # Theory budget exhausted on the direct path; give the DPLL(T)
            # runner its shot before reporting UNKNOWN.
            self.statistics["dpllt_wins"] += 1
            return self._dpllt.check(assumptions=assumptions)
        self.statistics["direct_wins"] += 1
        return result

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        return self._direct.check_conjunction(formulas)


class PortfolioBackend:
    """The portfolio runner (direct ILP raced against DPLL(T))."""

    name = "portfolio"

    def __init__(self, direct_max_cases: int = 64):
        self.direct_max_cases = direct_max_cases

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return PortfolioSolver(theory=theory, direct_max_cases=self.direct_max_cases)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Register a backend under its ``name``; duplicate names need ``replace=True``."""
    name = getattr(backend, "name", "")
    if not name:
        raise ValueError(f"backend {backend!r} must define a name")
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; unknown names raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


#: The backend used when nothing is specified anywhere.
DEFAULT_BACKEND = "smtlite"


def resolve_backend_name(name: str | None) -> str:
    """Map ``None`` (and the empty string) to the default backend name.

    The default honours the ``REPRO_BACKEND`` environment variable (the CI
    backend-matrix hook), so the unified API and the deprecated per-property
    shims resolve to the same backend in the same process.
    """
    if name:
        return name
    import os

    return os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND


def create_solver(backend: str | None = None, theory: str = "auto") -> ConstraintSolver:
    """The one place the verification layer obtains solvers from."""
    return get_backend(resolve_backend_name(backend)).create_solver(theory=theory)


for _backend in (SmtliteBackend(), ScipyILPBackend(), PortfolioBackend()):
    register_backend(_backend)
del _backend

# The z3 adapter is registered only when its optional dependency imports —
# gated exactly like the scipy theory backend.  With z3 absent, "z3" is
# simply not an available backend name (VerificationOptions rejects it with
# the standard unknown-backend message); with z3 present, the cross-backend
# parity tests pick it up automatically.
from repro.constraints.z3_backend import Z3Backend, z3_available  # noqa: E402

if z3_available():  # pragma: no cover - depends on the optional dependency
    register_backend(Z3Backend())
