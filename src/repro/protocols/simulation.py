"""Random simulation of population protocols.

The scheduler picks, at every step, an ordered pair of distinct agents
uniformly at random and applies a transition enabled for that pair (if any).
With probability one such a scheduler produces a fair execution, so for
well-specified *silent* protocols the simulation converges to a terminal
consensus configuration and reports its output.

The simulator is used by the examples and by tests as an empirical sanity
check of the consensus values predicted by the verification engine.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field
from statistics import mean

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol, ProtocolError, Transition
from repro.protocols.semantics import enabled_transitions, is_consensus, is_terminal, output_of


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    initial: Configuration
    final: Configuration
    steps: int
    converged: bool
    output: int | None
    history_length: int = 0
    interactions_attempted: int = 0

    @property
    def is_consensus(self) -> bool:
        return self.output is not None


@dataclass
class BatchStatistics:
    """Aggregate statistics over a batch of simulations of the same input."""

    runs: int
    converged_runs: int
    outputs: dict[int, int]
    mean_steps: float
    max_steps: int

    def agreed_output(self) -> int | None:
        """The unique output observed across converged runs, if any."""
        if len(self.outputs) == 1:
            return next(iter(self.outputs))
        return None


@dataclass
class Simulator:
    """Random-scheduler simulator for a population protocol.

    Parameters
    ----------
    protocol:
        The protocol to simulate.
    seed:
        Seed of the pseudo-random scheduler (``None`` for nondeterministic).
    max_steps:
        Bound on the number of non-silent steps before giving up.
    """

    protocol: PopulationProtocol
    seed: int | None = None
    max_steps: int = 100_000
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------

    def run(
        self,
        input_population: Mapping | Multiset | None = None,
        configuration: Configuration | None = None,
        record_history: bool = False,
    ) -> SimulationResult:
        """Simulate one execution until a terminal configuration or ``max_steps``.

        Either ``input_population`` (a population over the input alphabet) or
        ``configuration`` (a configuration over the states) must be given.
        """
        if (input_population is None) == (configuration is None):
            raise ProtocolError("provide exactly one of input_population or configuration")
        if configuration is None:
            configuration = self.protocol.initial_configuration(input_population)
        if not self.protocol.is_configuration(configuration):
            raise ProtocolError(f"{configuration.pretty()} is not a configuration")

        current = configuration
        steps = 0
        attempted = 0
        history = 1
        while steps < self.max_steps:
            enabled = enabled_transitions(self.protocol, current)
            if not enabled:
                return SimulationResult(
                    initial=configuration,
                    final=current,
                    steps=steps,
                    converged=True,
                    output=output_of(self.protocol, current),
                    history_length=history,
                    interactions_attempted=attempted,
                )
            transition = self._pick_transition(current, enabled)
            attempted += 1
            if transition is None:
                continue
            current = transition.fire(current)
            steps += 1
            if record_history:
                history += 1
        return SimulationResult(
            initial=configuration,
            final=current,
            steps=steps,
            converged=is_terminal(self.protocol, current),
            output=output_of(self.protocol, current) if is_consensus(self.protocol, current) else None,
            history_length=history,
            interactions_attempted=attempted,
        )

    def _pick_transition(
        self, configuration: Configuration, enabled: list[Transition]
    ) -> Transition | None:
        """Pick a random interacting pair; return an enabled transition for it.

        To keep simulations fast we sample directly among enabled non-silent
        transitions, weighting each transition by the number of agent pairs
        that can take it.  This induces the same fair limiting behaviour as
        the uniform-pair scheduler while never wasting steps on silent
        interactions.
        """
        weights = []
        for transition in enabled:
            support = list(transition.pre.support())
            if len(support) == 1:
                state = support[0]
                count = configuration[state]
                weight = count * (count - 1) // 2
            else:
                weight = configuration[support[0]] * configuration[support[1]]
            weights.append(weight)
        total = sum(weights)
        if total == 0:
            return None
        pick = self._rng.randrange(total)
        for transition, weight in zip(enabled, weights):
            if pick < weight:
                return transition
            pick -= weight
        return enabled[-1]

    # ------------------------------------------------------------------

    def run_batch(
        self,
        input_population: Mapping | Multiset,
        runs: int = 20,
    ) -> BatchStatistics:
        """Run several independent simulations of the same input."""
        results = [self.run(input_population=input_population) for _ in range(runs)]
        outputs: dict[int, int] = {}
        for result in results:
            if result.output is not None:
                outputs[result.output] = outputs.get(result.output, 0) + 1
        return BatchStatistics(
            runs=runs,
            converged_runs=sum(1 for r in results if r.converged),
            outputs=outputs,
            mean_steps=mean(r.steps for r in results),
            max_steps=max(r.steps for r in results),
        )


def simulate(
    protocol: PopulationProtocol,
    input_population: Mapping | Multiset,
    seed: int | None = 0,
    max_steps: int = 100_000,
) -> SimulationResult:
    """Convenience wrapper: simulate one execution of ``protocol`` on an input."""
    return Simulator(protocol, seed=seed, max_steps=max_steps).run(input_population=input_population)
