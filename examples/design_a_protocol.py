"""Design a protocol from a Presburger specification and verify it.

The expressiveness result of Section 5 is constructive: any boolean
combination of threshold and remainder predicates can be compiled into a
WS³ protocol (threshold/remainder base protocols + negation + asynchronous
product).  This example compiles the specification

    "strictly more sick than healthy birds"  AND  "the flock has even size"

into a protocol.  The two leaf protocols are proved to be in WS³ with the
constraint-based verifier (membership is preserved by the product
construction, Proposition 33 / Corollary 34 — the product even inherits the
leaves' LayeredTermination certificates); the compiled product is then
checked against the specification on every small input with the
explicit-state engine and exercised by simulation.

Run with::

    python examples/design_a_protocol.py
"""

from __future__ import annotations

from repro.presburger.compiler import compile_predicate
from repro.presburger.predicates import RemainderPredicate, ThresholdPredicate
from repro.protocols.simulation import Simulator
from repro.verification.explicit import check_predicate_on_inputs, verify_single_input
from repro.verification.layered_termination import check_partition
from repro.verification.ws3 import verify_ws3


def main() -> None:
    # "#healthy - #sick < 0" (strict majority of sick birds) ...
    strict_sick_majority = ThresholdPredicate({"healthy": 1, "sick": -1}, 0)
    # ... and "#healthy + #sick = 0 (mod 2)" (even flock size).
    even_flock = RemainderPredicate({"healthy": 1, "sick": 1}, 2, 0)
    specification = strict_sick_majority & even_flock
    print(f"specification: {specification.describe()}")

    # Compile the two leaves and the full specification.
    majority_leaf = compile_predicate(strict_sick_majority, name="sick-majority")
    parity_leaf = compile_predicate(even_flock, name="even-flock")
    protocol = compile_predicate(specification, name="sick-majority-and-even")
    print(
        f"compiled protocols: leaves {majority_leaf.num_states}/{parity_leaf.num_states} states, "
        f"product {protocol.num_states} states and {protocol.num_transitions} transitions"
    )

    # WS3 membership of the leaves (the product construction preserves it).
    for leaf in (majority_leaf, parity_leaf):
        result = verify_ws3(leaf)
        print(f"  {leaf.name}: WS3 = {result.is_ws3} in {result.statistics['time']:.2f}s")
    lifted = check_partition(protocol, protocol.partition_hint)
    print(f"  product inherits a valid LayeredTermination certificate: {lifted.holds}")

    # Correctness of the product on all small inputs (explicit state space).
    ok, mismatches = check_predicate_on_inputs(protocol, specification, max_size=5)
    print(f"  product agrees with the specification on all inputs of size <= 5: {ok}")

    simulator = Simulator(protocol, seed=1)
    for population in [
        {"sick": 4, "healthy": 2},
        {"sick": 4, "healthy": 1},
        {"sick": 2, "healthy": 5},
    ]:
        run = simulator.run(input_population=population)
        explicit = verify_single_input(protocol, population)
        print(
            f"input {population}: simulation -> {run.output}, "
            f"explicit model checking -> {explicit.output}, "
            f"specification -> {int(specification.evaluate(population))}"
        )


if __name__ == "__main__":
    main()
