"""Tseitin / Plaisted-Greenbaum conversion of formulas to CNF.

The converter keeps a persistent mapping between arithmetic atoms (and named
boolean variables) and propositional variables, so that formulas added
incrementally to the same solver share propositional variables.  Because the
input is first put into negation normal form, the polarity-aware
(Plaisted-Greenbaum) encoding is sufficient: every sub-formula only needs the
clauses for its positive occurrence, which keeps the CNF small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smtlite.formula import (
    And,
    Atom,
    BoolConst,
    BoolVar,
    Formula,
    Not,
    Or,
    to_nnf,
)


@dataclass
class CNFConverter:
    """Stateful converter from formulas to CNF clauses over integer literals."""

    _next_var: int = 1
    atom_to_var: dict[Atom, int] = field(default_factory=dict)
    var_to_atom: dict[int, Atom] = field(default_factory=dict)
    boolvar_to_var: dict[str, int] = field(default_factory=dict)
    var_to_boolvar: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def fresh_var(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    @property
    def variable_count(self) -> int:
        return self._next_var - 1

    def var_for_atom(self, atom: Atom) -> int:
        """Propositional variable associated with an arithmetic atom."""
        var = self.atom_to_var.get(atom)
        if var is None:
            var = self.fresh_var()
            self.atom_to_var[atom] = var
            self.var_to_atom[var] = atom
        return var

    def var_for_boolvar(self, name: str) -> int:
        var = self.boolvar_to_var.get(name)
        if var is None:
            var = self.fresh_var()
            self.boolvar_to_var[name] = var
            self.var_to_boolvar[var] = name
        return var

    def is_theory_var(self, var: int) -> bool:
        return var in self.var_to_atom

    # ------------------------------------------------------------------

    def convert(self, formula: Formula) -> tuple[list[list[int]], bool]:
        """Convert a formula into clauses asserting it.

        Returns ``(clauses, trivially_false)``.  ``trivially_false`` is True
        when the formula simplifies to FALSE (in which case the clause list
        contains a single empty clause).
        """
        nnf = to_nnf(formula)
        clauses: list[list[int]] = []
        if isinstance(nnf, BoolConst):
            if nnf.value:
                return [], False
            return [[]], True
        top_conjuncts = nnf.operands if isinstance(nnf, And) else (nnf,)
        for conjunct in top_conjuncts:
            self._assert_positive(conjunct, clauses)
        return clauses, False

    # ------------------------------------------------------------------

    def _assert_positive(self, formula: Formula, clauses: list[list[int]]) -> None:
        """Assert a (NNF) formula at the top level."""
        if isinstance(formula, Or):
            clause = self._clause_for_disjunction(formula, clauses)
            clauses.append(clause)
            return
        literal = self._encode(formula, clauses)
        clauses.append([literal])

    def _clause_for_disjunction(self, formula: Or, clauses: list[list[int]]) -> list[int]:
        literals = []
        for operand in formula.operands:
            literals.append(self._encode(operand, clauses))
        return literals

    def _encode(self, formula: Formula, clauses: list[list[int]]) -> int:
        """Return a literal equi-satisfiable (for positive polarity) with ``formula``."""
        if isinstance(formula, Atom):
            return self.var_for_atom(formula)
        if isinstance(formula, BoolVar):
            return self.var_for_boolvar(formula.name)
        if isinstance(formula, Not):
            operand = formula.operand
            if isinstance(operand, BoolVar):
                return -self.var_for_boolvar(operand.name)
            raise TypeError(f"NNF formulas may only negate boolean variables, got {formula!r}")
        if isinstance(formula, BoolConst):
            # Encode constants through a fresh variable pinned by a unit clause.
            var = self.fresh_var()
            clauses.append([var] if formula.value else [-var])
            return var
        if isinstance(formula, And):
            aux = self.fresh_var()
            for operand in formula.operands:
                literal = self._encode(operand, clauses)
                clauses.append([-aux, literal])
            return aux
        if isinstance(formula, Or):
            aux = self.fresh_var()
            clause = [-aux]
            for operand in formula.operands:
                clause.append(self._encode(operand, clauses))
            clauses.append(clause)
            return aux
        raise TypeError(f"cannot encode formula {formula!r}")
