"""Crash recovery end to end: SIGKILL a journalled daemon, restart, resume."""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys

from repro.protocols.library import majority_protocol
from repro.service import JobJournal, ServeSession, VerificationService

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def serve_process(journal_dir) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--journal-dir", str(journal_dir)],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestSigkillRecovery:
    def test_killed_daemon_resumes_after_restart(self, tmp_path):
        """The acceptance scenario: submit, SIGKILL, restart, same result."""
        journal_dir = tmp_path / "journal"
        proc = serve_process(journal_dir)
        try:
            proc.stdin.write(json.dumps({"op": "submit", "spec": "majority", "id": 1}) + "\n")
            proc.stdin.flush()
            # The response arrives only after the submission is fsynced to
            # the journal, so killing now cannot lose the job.
            response = json.loads(proc.stdout.readline())
            assert response["ok"] and response["job"] == "job-1"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        assert proc.returncode != 0

        # A restarted service on the same journal finishes the job.
        with VerificationService(journal_dir=journal_dir) as service:
            assert service.statistics["resumed"] + service.statistics["recovered"] == 1
            handle = service.job("job-1")
            assert handle.wait(timeout=300)
            assert handle.result().is_ws3

    def test_kill_mid_append_leaves_a_recoverable_journal(self, tmp_path):
        """A torn final line (simulated mid-append crash) never blocks replay."""
        journal_dir = tmp_path / "journal"
        with VerificationService(journal_dir=journal_dir) as service:
            handle = service.submit(majority_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
        journal = JobJournal(journal_dir)
        with open(journal.path, "a", encoding="utf-8") as handle_:
            handle_.write('{"record": "submitted", "job": "job-2", "ki')  # torn
        with VerificationService(journal_dir=journal_dir) as service:
            assert service.statistics["recovered"] == 1
            assert service.job("job-1").status().value == "done"


class TestEofLeavesQueueResumable:
    def test_eof_keeps_journalled_backlog(self, tmp_path):
        """With a journal, EOF must not cancel the queued backlog."""
        requests = [
            {"op": "submit", "spec": "majority", "id": 1},
            # Lower priority: stays queued behind job-1 on the single
            # dispatcher when EOF (right after these lines) closes the
            # session.
            {"op": "submit", "spec": "broadcast", "priority": -1, "id": 2},
        ]
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        service = VerificationService(journal_dir=tmp_path)
        assert ServeSession(service, stdin, stdout).run() == 0
        assert service.closed
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert all(r["ok"] for r in responses if r["type"] == "response")

        with VerificationService(journal_dir=tmp_path) as restarted:
            # Whatever the first session finished was recovered; the rest
            # was resumed, not cancelled — nothing is lost.
            stats = restarted.statistics
            assert stats["recovered"] + stats["resumed"] == 2
            for job_id in ("job-1", "job-2"):
                handle = restarted.job(job_id)
                assert handle.wait(timeout=300)
                assert handle.status().value == "done"

    def test_shutdown_op_without_journal_still_cancels(self):
        requests = [
            {"op": "submit", "spec": "majority", "id": 1},
            {"op": "submit", "spec": "broadcast", "priority": -1, "id": 2},
            {"op": "shutdown", "id": 3},
        ]
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        service = VerificationService()
        assert ServeSession(service, stdin, stdout).run() == 0
        statuses = {handle.job_id: handle.status().value for handle in service.jobs()}
        assert statuses["job-2"] == "cancelled"
