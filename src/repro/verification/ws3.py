"""Membership in WS³ (Theorem 16): LayeredTermination ∧ StrongConsensus.

A protocol belongs to WS³ iff it satisfies both properties; every
WS³-protocol is well-specified (WS³ ⊆ WS² ⊆ WS), and WS³ computes exactly
the Presburger-definable predicates (Section 5), so nothing is lost by
restricting verification to this class.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.constraints.context import AnalysisContext
from repro.protocols.protocol import PopulationProtocol
from repro.verification.layered_termination import (
    LayeredTerminationResult,
    check_layered_termination_impl,
)
from repro.verification.strong_consensus import (
    StrongConsensusResult,
    check_strong_consensus_impl,
)


@dataclass
class WS3Result:
    """Outcome of the WS³ membership check."""

    protocol_name: str
    is_ws3: bool
    layered_termination: LayeredTerminationResult
    strong_consensus: StrongConsensusResult | None
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_ws3

    @property
    def is_well_specified(self) -> bool:
        """Membership in WS³ implies well-specification (but not conversely)."""
        return self.is_ws3

    def summary(self) -> str:
        lines = [f"WS3 membership check for {self.protocol_name}: {'YES' if self.is_ws3 else 'NOT PROVEN'}"]
        lt = self.layered_termination
        lines.append(
            f"  LayeredTermination: {'holds' if lt.holds else 'not established'}"
            + (
                f" ({lt.certificate.num_layers} layer(s), strategy {lt.certificate.strategy})"
                if lt.certificate
                else f" ({lt.reason})"
            )
        )
        if self.strong_consensus is None:
            lines.append("  StrongConsensus: skipped")
        else:
            sc = self.strong_consensus
            lines.append(
                f"  StrongConsensus: {'holds' if sc.holds else 'fails'}"
                f" ({len(sc.refinements)} trap/siphon refinement(s))"
            )
            if sc.counterexample is not None:
                lines.append(f"    counterexample: {sc.counterexample.describe()}")
        lines.append(f"  total time: {self.statistics.get('time', 0.0):.3f}s")
        return "\n".join(lines)


def verify_ws3_impl(
    protocol: PopulationProtocol,
    strategy: str = "auto",
    theory: str = "auto",
    max_layers: int | None = None,
    check_consensus_first: bool = False,
    materialize_rankings: bool = False,
    consensus_strategy: str = "auto",
    max_refinements: int = 10_000,
    max_pattern_pairs: int = 250_000,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> WS3Result:
    """Decide membership of a protocol in WS³ (implementation).

    This is the non-deprecated decision procedure shared by the
    :class:`repro.api.verifier.Verifier` property checkers and the legacy
    :func:`verify_ws3` shim.

    Parameters
    ----------
    strategy:
        Partition-search strategy for LayeredTermination (see
        :func:`repro.verification.layered_termination.check_layered_termination`).
    theory:
        Constraint-solver backend: ``"auto"``, ``"scipy"`` or ``"exact"``.
    check_consensus_first:
        The paper observes that StrongConsensus is usually cheaper than
        LayeredTermination; set this to run it first (the result is the same,
        only the time distribution changes).
    jobs:
        Number of worker processes for the parallel engine.  ``1`` (the
        default) is the exact single-process path; ``jobs > 1`` fans the
        independent subproblems of both properties — partition-search
        strategies, terminal-pattern pairs — over a process pool, with
        identical verdicts and counterexamples.
    engine:
        An existing :class:`repro.engine.scheduler.VerificationEngine` to
        schedule on (its worker pool is reused and left running); mutually
        exclusive with ``jobs > 1``, which creates a private engine for the
        duration of the call.
    """
    start = time.perf_counter()
    strong_consensus: StrongConsensusResult | None = None

    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    if context is None:
        context = AnalysisContext(protocol)
    owned_engine = False
    if engine is None and jobs > 1:
        from repro.engine.scheduler import VerificationEngine

        engine = VerificationEngine(jobs=jobs)
        owned_engine = True

    def run_consensus() -> StrongConsensusResult:
        return check_strong_consensus_impl(
            protocol,
            theory=theory,
            strategy=consensus_strategy,
            max_refinements=max_refinements,
            max_pattern_pairs=max_pattern_pairs,
            engine=engine,
            backend=backend,
            context=context,
            incremental=incremental,
        )

    def run_layered() -> LayeredTerminationResult:
        return check_layered_termination_impl(
            protocol,
            strategy=strategy,
            max_layers=max_layers,
            theory=theory,
            materialize_rankings=materialize_rankings,
            engine=engine,
            backend=backend,
            context=context,
            incremental=incremental,
        )

    try:
        if check_consensus_first:
            strong_consensus = run_consensus()
            layered = run_layered()
        else:
            layered = run_layered()
            if layered.holds:
                strong_consensus = run_consensus()
    finally:
        if owned_engine:
            engine.shutdown()

    is_member = layered.holds and strong_consensus is not None and strong_consensus.holds
    elapsed = time.perf_counter() - start
    statistics = {
        "time": elapsed,
        "layered_termination_time": layered.statistics.get("time"),
        "strong_consensus_time": (strong_consensus.statistics.get("time") if strong_consensus else None),
        "refinements": len(strong_consensus.refinements) if strong_consensus else 0,
        "num_states": protocol.num_states,
        "num_transitions": protocol.num_transitions,
        "jobs": engine.jobs if engine is not None else 1,
    }
    return WS3Result(
        protocol_name=protocol.name,
        is_ws3=is_member,
        layered_termination=layered,
        strong_consensus=strong_consensus,
        statistics=statistics,
    )


def verify_ws3(
    protocol: PopulationProtocol,
    strategy: str = "auto",
    theory: str = "auto",
    max_layers: int | None = None,
    check_consensus_first: bool = False,
    materialize_rankings: bool = False,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
) -> WS3Result:
    """Deprecated: use :class:`repro.api.Verifier` instead.

    ``Verifier(jobs=...).check(protocol, properties=["ws3"])`` returns a
    :class:`~repro.api.report.VerificationReport` with the same verdict,
    certificate and counterexample.  This shim delegates to the same
    implementation, so verdicts are identical.
    """
    warnings.warn(
        "verify_ws3() is deprecated; use repro.api.Verifier"
        " (Verifier().check(protocol, properties=['ws3']))",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_ws3_impl(
        protocol,
        strategy=strategy,
        theory=theory,
        max_layers=max_layers,
        check_consensus_first=check_consensus_first,
        materialize_rankings=materialize_rankings,
        jobs=jobs,
        engine=engine,
        backend=backend,
    )
