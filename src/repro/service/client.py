"""A resilient client for the TCP verification daemon.

:class:`VerificationClient` speaks the JSON-lines protocol of
:mod:`repro.service.serve` over a persistent TCP connection to a
:class:`~repro.service.net.NetworkServer`, and wraps every request in the
retry discipline a networked service demands:

* **connect and request retries** — a refused connection, a mid-request
  disconnect or a torn response line reconnects and retries, up to
  :class:`ClientRetryPolicy.max_attempts`;
* **exponential backoff with jitter** — delays grow geometrically and are
  jittered so a fleet of shed clients does not return in lockstep;
* **overload awareness** — an ``overloaded`` response (the server's
  explicit load shedding) is retried after at least its ``retry_after``
  hint; if the server is still shedding when attempts run out, the final
  :class:`OverloadedError` tells the caller *why* (turned away, not
  broken);
* **resumable event streams** — :meth:`VerificationClient.events` is a
  long-poll loop over the ``events`` op carrying an explicit ``since``
  cursor, so a dropped connection (or server-side buffer drop) costs
  nothing: the next poll replays exactly the missed suffix.

Retried submits are *at-least-once*: if the response to a ``submit`` is
lost after the server processed it, the retry creates a second job.
Verification is deterministic and side-effect-free, so a duplicate job
wastes work but never corrupts results; callers needing exactly-once
should submit once and reconcile via the ``jobs`` op.
"""

from __future__ import annotations

import itertools
import json
import logging
import random
import socket
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass

logger = logging.getLogger(__name__)


class ClientError(RuntimeError):
    """Base class of everything :class:`VerificationClient` raises."""


class RequestError(ClientError):
    """The server answered, and the answer is a non-retryable error."""


class OverloadedError(ClientError):
    """The server shed the request and kept shedding until retries ran out."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message or "server overloaded")
        self.retry_after = retry_after


class TransportError(ClientError):
    """The request could not be completed after every retry."""


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Exponential backoff with full jitter.

    The delay before attempt ``n+1`` is ``backoff_seconds *
    backoff_factor**(n-1)`` capped at ``max_backoff_seconds``, jittered
    uniformly within ``±jitter`` of itself, and never below the server's
    ``retry_after`` hint when one was given.
    """

    max_attempts: int = 6
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random, floor: float = 0.0) -> float:
        base = min(self.max_backoff_seconds, self.backoff_seconds * self.backoff_factor ** max(0, attempt - 1))
        spread = base * max(0.0, min(1.0, self.jitter))
        jittered = base - spread + rng.random() * 2 * spread
        return max(floor, jittered)


class VerificationClient:
    """A persistent, retrying JSON-lines client of the network daemon.

    The client owns one socket, reconnecting transparently inside the
    retry loop; all methods are safe to call from multiple threads (one
    request is on the wire at a time).  Use as a context manager::

        with VerificationClient(host, port) as client:
            job = client.submit("majority")
            for event in client.events(job):
                ...
            report = client.result(job)["report"]
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 120.0,
        retry: ClientRetryPolicy | None = None,
        seed: int | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.retry = retry or ClientRetryPolicy()
        self._timeout = timeout
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        self.statistics = {
            "requests": 0,
            "retries": 0,
            "reconnects": 0,
            "overloaded": 0,
            "events_dropped": 0,
        }

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def __enter__(self) -> "VerificationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self._timeout)
        sock.settimeout(self._timeout)
        self._sock = sock
        self._file = sock.makefile("r", encoding="utf-8", newline="\n")
        self.statistics["reconnects"] += 1

    def _disconnect(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    # The retry loop
    # ------------------------------------------------------------------

    def call(self, payload: dict, *, read_timeout: float | None = None) -> dict:
        """Send one raw op and return its response dictionary, ok or not.

        The proxying primitive (used by the sharded router): transport
        failures are retried exactly like :meth:`_request`, but the first
        response that arrives — success, explicit overload, or any error —
        is returned verbatim instead of being retried or raised, so a relay
        can forward the server's own answer (including ``retry_after``
        hints) to its caller unchanged.
        """
        return self._request(payload, read_timeout, raw=True)

    def _request(
        self, payload: dict, read_timeout: float | None = None, *, raw: bool = False
    ) -> dict:
        """Send one op and return its ``ok`` response, retrying as needed.

        Retries cover transport failures (refused/loss/torn line — the
        connection is rebuilt) and explicit ``overloaded`` responses
        (honouring ``retry_after``).  Non-retryable error responses raise
        :class:`RequestError` immediately.  With ``raw=True`` only
        transport failures are retried and whatever response arrives is
        returned as-is (see :meth:`call`).
        """
        last_error: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                self.statistics["retries"] += 1
                floor = getattr(last_error, "retry_after", 0.0)
                time.sleep(self.retry.delay(attempt - 1, self._rng, floor=floor))
            try:
                response = self._attempt(payload, read_timeout)
            except (OSError, EOFError, ValueError) as error:
                # OSError: dead/refused socket; EOFError: server closed
                # mid-exchange; ValueError: a torn JSON line (e.g. an
                # injected truncate).  All mean "rebuild and retry".
                last_error = error
                with self._lock:
                    self._disconnect()
                continue
            if raw or response.get("ok"):
                return response
            if response.get("overloaded") or response.get("retryable"):
                self.statistics["overloaded"] += 1
                last_error = OverloadedError(
                    response.get("error", ""), float(response.get("retry_after", 1.0))
                )
                continue
            raise RequestError(response.get("error", "request failed"))
        if isinstance(last_error, OverloadedError):
            raise last_error
        raise TransportError(
            f"request {payload.get('op')!r} failed after {self.retry.max_attempts} attempts: "
            f"{last_error}"
        ) from last_error

    def _attempt(self, payload: dict, read_timeout: float | None) -> dict:
        with self._lock:
            self._connect()
            self.statistics["requests"] += 1
            request_id = f"r{next(self._ids)}"
            message = dict(payload)
            message["id"] = request_id
            self._sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
            if read_timeout is not None:
                self._sock.settimeout(read_timeout)
            try:
                while True:
                    line = self._file.readline()
                    if not line:
                        raise EOFError("the server closed the connection")
                    if not line.endswith("\n"):
                        raise EOFError("the connection died mid-line")
                    data = json.loads(line)  # ValueError on a torn/corrupt line
                    if not isinstance(data, dict):
                        raise ValueError("non-object line from the server")
                    kind = data.get("type")
                    if kind == "dropped":
                        # The server's bounded event buffer overflowed; the
                        # events op replays what was lost, so just account it.
                        self.statistics["events_dropped"] += int(data.get("dropped", 0))
                        continue
                    if kind == "event":
                        continue  # push-streamed events; this client polls instead
                    if kind == "response" and data.get("id") == request_id:
                        return data
                    if kind == "response" and "id" not in data and not data.get("ok"):
                        # Connection-scoped rejections (shed connection, rate
                        # limit, unparseable frame) carry no id; they answer
                        # whatever is in flight — this request.  The server is
                        # closing this connection, so drop it now: a retry must
                        # reconnect rather than read EOF off the dead socket.
                        self._disconnect()
                        return data
                    # A response to a stale id (the late answer of a request
                    # we already retried): skip it.
            finally:
                if read_timeout is not None and self._sock is not None:
                    self._sock.settimeout(self._timeout)

    # ------------------------------------------------------------------
    # The public ops
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: str | None = None,
        *,
        specs: list[str] | None = None,
        protocol: dict | None = None,
        properties: list[str] | None = None,
        priority: int = 0,
    ) -> str:
        """Submit a job and return its id (at-least-once under retries)."""
        payload: dict = {"op": "submit", "priority": priority}
        if specs is not None:
            payload["specs"] = list(specs)
        elif protocol is not None:
            payload["protocol"] = protocol
        elif spec is not None:
            payload["spec"] = spec
        else:
            raise ValueError("submit needs a spec, specs or an inline protocol")
        if properties is not None:
            payload["properties"] = list(properties)
        return self._request(payload)["job"]

    def status(self, job: str) -> dict:
        """``{"job", "status", "events"}`` for one job (non-blocking)."""
        response = self._request({"op": "status", "job": job})
        return {key: response[key] for key in ("job", "status", "events")}

    def cancel(self, job: str) -> bool:
        return bool(self._request({"op": "cancel", "job": job})["cancelled"])

    def wait(self, job: str, timeout: float | None = None) -> str:
        """Block until the job finishes; returns its terminal (or current) status."""
        payload: dict = {"op": "wait", "job": job}
        read_timeout = None
        if timeout is not None:
            payload["timeout"] = timeout
            read_timeout = timeout + min(30.0, self._timeout)
        return self._request(payload, read_timeout=read_timeout)["status"]

    def result(self, job: str, wait: bool = True, timeout: float | None = None) -> dict:
        """The job's lossless result payload.

        Returns the full ``result`` response: ``"report"`` for single
        checks, ``"batch"`` for batches, plus ``"status"``.  Raises
        :class:`RequestError` for failed or cancelled jobs.
        """
        payload: dict = {"op": "result", "job": job, "wait": wait}
        read_timeout = None
        if timeout is not None:
            payload["timeout"] = timeout
            read_timeout = timeout + min(30.0, self._timeout)
        return self._request(payload, read_timeout=read_timeout)

    def report(self, job: str, timeout: float | None = None):
        """The decoded :class:`~repro.api.report.VerificationReport` of a check job."""
        from repro.api.report import VerificationReport

        response = self.result(job, wait=True, timeout=timeout)
        if "report" not in response:
            raise RequestError(f"job {job!r} is a batch job; use result()")
        return VerificationReport.from_dict(response["report"])

    def jobs(self) -> list[dict]:
        return list(self._request({"op": "jobs"})["jobs"])

    def shutdown(self) -> None:
        """End this connection's session server-side (the daemon keeps running)."""
        try:
            self._request({"op": "shutdown"})
        finally:
            self.close()

    # ------------------------------------------------------------------
    # Resumable event streaming
    # ------------------------------------------------------------------

    def events(
        self,
        job: str,
        since: int = 0,
        *,
        follow: bool = True,
        poll_timeout: float = 10.0,
    ) -> Iterator[dict]:
        """Yield the job's events as dictionaries, resumably.

        A long-poll loop over the ``events`` op: every poll carries the
        explicit ``since`` cursor, so reconnects (handled inside the retry
        loop), server-side buffer drops and even a daemon restart on the
        same journal replay the stream without gaps or duplicates.  With
        ``follow=True`` the stream ends when the job finishes and its log
        is drained; with ``follow=False`` it yields the current backlog
        and returns.
        """
        cursor = int(since)
        while True:
            payload: dict = {"op": "events", "job": job, "since": cursor}
            if follow:
                payload["wait"] = True
                payload["timeout"] = poll_timeout
            response = self._request(
                payload, read_timeout=poll_timeout + min(30.0, self._timeout)
            )
            events = response.get("events", [])
            for event in events:
                yield event
            cursor = int(response.get("next", cursor + len(events)))
            if not follow:
                return
            if response.get("status") in ("done", "failed", "cancelled") and not events:
                return
