"""JSON serialisation of population protocols.

The format is deliberately simple and close to the input format of the
authors' Peregrine tool: a JSON object with the states, the non-silent
transitions, the input alphabet, the input mapping and the output mapping.
States may be arbitrary JSON-representable values; tuples (used by the
threshold protocol and by product constructions) are encoded as JSON arrays
and decoded back to tuples.
"""

from __future__ import annotations

import json
from typing import Any

from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition


def _encode_state(state: Any) -> Any:
    if isinstance(state, tuple):
        return {"__tuple__": [_encode_state(part) for part in state]}
    return state


def _decode_state(state: Any) -> Any:
    if isinstance(state, dict) and "__tuple__" in state:
        return tuple(_decode_state(part) for part in state["__tuple__"])
    return state


def _encode_multiset(multiset) -> list:
    return [_encode_state(element) for element in multiset.elements()]


def protocol_to_dict(protocol: PopulationProtocol) -> dict:
    """Serialise a protocol to a plain dictionary."""
    data = {
        "name": protocol.name,
        "states": [_encode_state(state) for state in sorted(protocol.states, key=repr)],
        "transitions": [
            {
                "name": transition.name,
                "pre": _encode_multiset(transition.pre),
                "post": _encode_multiset(transition.post),
            }
            for transition in protocol.transitions
        ],
        "input_alphabet": [_encode_state(symbol) for symbol in protocol.input_alphabet],
        "input_map": [
            {"symbol": _encode_state(symbol), "state": _encode_state(state)}
            for symbol, state in protocol.input_map.items()
        ],
        "output_map": [
            {"state": _encode_state(state), "output": output}
            for state, output in sorted(protocol.output_map.items(), key=lambda item: repr(item[0]))
        ],
    }
    if protocol.partition_hint is not None:
        data["partition_hint"] = [
            [
                {"pre": _encode_multiset(t.pre), "post": _encode_multiset(t.post)}
                for t in sorted(layer, key=repr)
            ]
            for layer in protocol.partition_hint.layers
        ]
    return data


def protocol_from_dict(data: dict) -> PopulationProtocol:
    """Reconstruct a protocol from :func:`protocol_to_dict` output."""
    transitions = [
        Transition.make(
            [_decode_state(state) for state in entry["pre"]],
            [_decode_state(state) for state in entry["post"]],
            name=entry.get("name"),
        )
        for entry in data["transitions"]
    ]
    partition_hint = None
    if "partition_hint" in data:
        layers = []
        for layer in data["partition_hint"]:
            layers.append(
                [
                    Transition.make(
                        [_decode_state(state) for state in entry["pre"]],
                        [_decode_state(state) for state in entry["post"]],
                    )
                    for entry in layer
                ]
            )
        partition_hint = OrderedPartition.of(*layers)
    return PopulationProtocol(
        states=[_decode_state(state) for state in data["states"]],
        transitions=transitions,
        input_alphabet=[_decode_state(symbol) for symbol in data["input_alphabet"]],
        input_map={
            _decode_state(entry["symbol"]): _decode_state(entry["state"]) for entry in data["input_map"]
        },
        output_map={_decode_state(entry["state"]): entry["output"] for entry in data["output_map"]},
        name=data.get("name", "protocol"),
        partition_hint=partition_hint,
    )


def protocol_to_json(protocol: PopulationProtocol, indent: int = 2) -> str:
    """Serialise a protocol to a JSON string."""
    return json.dumps(protocol_to_dict(protocol), indent=indent, sort_keys=True)


def protocol_from_json(text: str) -> PopulationProtocol:
    """Parse a protocol from a JSON string."""
    return protocol_from_dict(json.loads(text))
