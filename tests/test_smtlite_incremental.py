"""Tests for the incremental solving interface.

Covers the assumption mechanism of the SAT core, push/pop scopes and
assumption-based checks of the DPLL(T) solver, the theory-result memo cache
exposed through :attr:`Solver.statistics`, and learned-clause deletion.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.smtlite.formula import BoolVar, Not, Or
from repro.smtlite.sat import SatSolver
from repro.smtlite.solver import Solver, SolverStatus
from repro.smtlite.terms import IntVar

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")


def brute_force_satisfiable(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestSatAssumptions:
    def test_assumptions_restrict_models(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is True
        assert solver.model[2] is True
        assert solver.solve(assumptions=[-2]) is True
        assert solver.model[1] is True

    def test_conflicting_assumptions_do_not_poison_solver(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) is False
        # The failure was local to the assumptions: the problem is still sat.
        assert solver.solve() is True
        assert solver.model[2] is True

    def test_directly_contradictory_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) is False
        assert solver.solve() is True

    def test_assumptions_on_fresh_variables(self):
        solver = SatSolver()
        assert solver.solve(assumptions=[3]) is True
        assert solver.model[3] is True

    def test_assumptions_against_brute_force(self):
        rng = random.Random(7)
        for _ in range(40):
            num_vars = rng.randint(3, 6)
            clauses = [
                [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(3)]
                for _ in range(rng.randint(3, 14))
            ]
            assumption = rng.choice([-1, 1]) * rng.randint(1, num_vars)
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            answer = solver.solve(assumptions=[assumption])
            expected = brute_force_satisfiable(num_vars, clauses + [[assumption]])
            assert answer is expected, (clauses, assumption)


class TestClauseDeletion:
    def test_reduction_keeps_answers_correct(self):
        rng = random.Random(13)
        for _ in range(25):
            num_vars = rng.randint(5, 8)
            clauses = [
                [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(3)]
                for _ in range(rng.randint(10, 30))
            ]
            solver = SatSolver()
            solver._max_learned = 2  # force aggressive database reduction
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() is brute_force_satisfiable(num_vars, clauses)

    def test_statistics_track_deletions(self):
        solver = SatSolver()
        assert "deleted_clauses" in solver.statistics
        assert "db_reductions" in solver.statistics


class TestPushPop:
    def test_pop_retracts_scope(self):
        solver = Solver()
        solver.add(x <= 5)
        solver.push()
        solver.add(x >= 10)
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) <= 5

    def test_nested_scopes(self):
        solver = Solver()
        solver.add(x + y <= 10)
        solver.push()
        solver.add(x >= 4)
        solver.push()
        solver.add(y >= 8)
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) >= 4
        solver.pop()
        assert solver.check().status is SolverStatus.SAT
        assert solver.num_scopes == 0

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            Solver().pop()

    def test_scoped_trivially_false_is_recoverable(self):
        solver = Solver()
        solver.push()
        solver.add(IntVar("q") <= IntVar("q") - 1)  # simplifies to FALSE
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        assert solver.check().status is SolverStatus.SAT

    def test_scope_statistics(self):
        solver = Solver()
        solver.push()
        solver.pop()
        assert solver.statistics["pushes"] == 1
        assert solver.statistics["pops"] == 1


class TestCheckAssumptions:
    def test_atom_assumptions(self):
        solver = Solver()
        solver.add(x <= 10)
        assert solver.check(assumptions=[x >= 11]).status is SolverStatus.UNSAT
        result = solver.check(assumptions=[x >= 7])
        assert result.status is SolverStatus.SAT
        assert 7 <= result.model.value(x) <= 10
        # The assumption is gone on the next check.
        assert solver.check(assumptions=[x <= 3]).status is SolverStatus.SAT

    def test_boolvar_assumptions(self):
        solver = Solver()
        flag = BoolVar("flag")
        solver.add(Or(Not(flag), x >= 5))
        result = solver.check(assumptions=[flag])
        assert result.status is SolverStatus.SAT
        assert result.model.bool_value("flag") is True
        assert result.model.value(x) >= 5
        result = solver.check(assumptions=[Not(flag)])
        assert result.status is SolverStatus.SAT
        assert result.model.bool_value("flag") is False

    def test_formula_assumptions(self):
        solver = Solver()
        solver.add(x + y <= 6)
        result = solver.check(assumptions=[Or(x >= 5, y >= 5)])
        assert result.status is SolverStatus.SAT
        model = result.model
        assert model.value(x) >= 5 or model.value(y) >= 5
        assert solver.check(assumptions=[Or(x >= 5, y >= 5), x >= 2, y >= 2]).status is SolverStatus.UNSAT

    def test_layer_sweep_style_assumptions(self):
        # The layered-termination sweep checks the same encoding under
        # successively weaker bound assumptions; emulate two rounds.
        solver = Solver()
        b = solver.int_var("b", lower=1, upper=3)
        solver.add(b >= 2)
        assert solver.check(assumptions=[b <= 1]).status is SolverStatus.UNSAT
        result = solver.check(assumptions=[b <= 2])
        assert result.status is SolverStatus.SAT
        assert result.model.value(b) == 2


class TestTheoryCache:
    def test_statistics_report_cache_counters(self):
        solver = Solver()
        assert "theory_cache_hits" in solver.statistics
        assert "theory_cache_misses" in solver.statistics

    def test_repeated_conjunction_hits_cache(self):
        solver = Solver()
        conjunction = [x + y <= 8, x >= 3, y >= 2]
        first = solver.check_conjunction(conjunction)
        assert first.status is SolverStatus.SAT
        misses = solver.statistics["theory_cache_misses"]
        second = solver.check_conjunction(list(conjunction))
        assert second.status is SolverStatus.SAT
        assert solver.statistics["theory_cache_misses"] == misses
        assert solver.statistics["theory_cache_hits"] >= 1

    def test_core_subsumption_answers_superset_conjunctions(self):
        solver = Solver()
        assert solver.check_conjunction([x >= 5, x <= 2]).status is SolverStatus.UNSAT
        hits_before = solver.statistics["theory_cache_hits"]
        # A strict superset of a known unsatisfiable core: no backend call.
        assert solver.check_conjunction([x >= 5, x <= 2, y >= 1]).status is SolverStatus.UNSAT
        assert solver.statistics["theory_cache_hits"] == hits_before + 1

    def test_core_subsumption_respects_redeclared_bounds(self):
        # A core learned under tight bounds must not answer queries posed
        # after the bounds were widened via int_var re-declaration.
        solver = Solver()
        tight = solver.int_var("t", lower=0, upper=0)
        assert solver.check_conjunction([tight >= 1]).status is SolverStatus.UNSAT
        solver.int_var("t", lower=0, upper=10)
        result = solver.check_conjunction([tight >= 1, IntVar("u") >= 0])
        assert result.status is SolverStatus.SAT
        assert result.model.value(tight) >= 1

    def test_check_conjunction_rejects_disjunctions(self):
        solver = Solver()
        with pytest.raises(TypeError):
            solver.check_conjunction([Or(x >= 1, y >= 1)])

    def test_check_conjunction_model(self):
        solver = Solver()
        result = solver.check_conjunction([x.eq(4), y.eq(2)])
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) == 4
        assert result.model.value(y) == 2
