"""Tests for the internals of the StrongConsensus machinery.

These exercise the pieces that the top-level checks compose: terminal
support patterns, the Appendix D.2 constraint templates, and the certificate
data types.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.multiset import Multiset
from repro.protocols.library import (
    broadcast_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    remainder_protocol,
)
from repro.protocols.protocol import OrderedPartition
from repro.protocols.semantics import is_terminal
from repro.smtlite.solver import Solver, SolverStatus
from repro.verification.results import (
    LayerCertificate,
    LayeredTerminationCertificate,
    RefinementStep,
    StrongConsensusCounterexample,
)
from repro.verification.strong_consensus import (
    _ConstraintBuilder,
    TerminalPattern,
    check_strong_consensus,
    terminal_support_patterns,
)


class TestTerminalSupportPatterns:
    def test_majority_patterns(self):
        protocol = majority_protocol()
        patterns = terminal_support_patterns(protocol)
        allowed_sets = {pattern.allowed for pattern in patterns}
        assert frozenset({"A", "a"}) in allowed_sets
        assert frozenset({"B", "b"}) in allowed_sets
        assert len(patterns) == 2
        # No self-interactions in the majority protocol.
        assert all(not pattern.capped for pattern in patterns)

    def test_flock_patterns_are_linear_in_c(self):
        protocol = flock_of_birds_protocol(6)
        patterns = terminal_support_patterns(protocol)
        assert len(patterns) <= protocol.num_states + 1
        # Only the pattern containing the accepting state admits output 1.
        accepting = [p for p in patterns if p.admits_output(protocol, 1)]
        assert len(accepting) == 1

    def test_threshold_n_flock_has_two_patterns(self):
        protocol = flock_of_birds_threshold_n_protocol(7)
        patterns = terminal_support_patterns(protocol)
        assert len(patterns) == 2
        # Levels below c interact with themselves, so they are capped at one agent.
        big_pattern = max(patterns, key=lambda p: len(p.allowed))
        assert any(level in big_pattern.capped for level in range(1, 7))

    def test_every_pattern_configuration_is_terminal(self):
        protocol = remainder_protocol([0, 1, 2], 3, 1)
        for pattern in terminal_support_patterns(protocol):
            counts = {}
            for state in pattern.allowed:
                counts[state] = 1 if state in pattern.capped else 2
            configuration = Multiset(counts)
            if configuration.size() >= 2:
                assert is_terminal(protocol, configuration)

    def test_terminal_configurations_match_some_pattern(self, majority_protocol):
        patterns = terminal_support_patterns(majority_protocol)
        for configuration in [Multiset({"A": 2, "a": 3}), Multiset({"b": 4}), Multiset({"a": 2})]:
            assert is_terminal(majority_protocol, configuration)
            assert any(configuration.support() <= pattern.allowed for pattern in patterns)

    def test_admits_output(self):
        protocol = majority_protocol()
        pattern = TerminalPattern(allowed=frozenset({"A", "a"}), capped=frozenset())
        assert pattern.admits_output(protocol, 0)
        assert not pattern.admits_output(protocol, 1)


class TestConstraintBuilder:
    @pytest.fixture
    def builder(self, majority_protocol):
        return _ConstraintBuilder(majority_protocol)

    def test_initial_constraint(self, builder):
        c0 = builder.config_vars("c0")
        solver = Solver()
        solver.add(builder.initial(c0))
        result = solver.check()
        assert result.status is SolverStatus.SAT
        model = result.model
        # Only A and B may be populated, with at least two agents.
        assert model.value(c0["a"]) == 0 and model.value(c0["b"]) == 0
        assert model.value(c0["A"]) + model.value(c0["B"]) >= 2

    def test_terminal_constraint_excludes_enabled_transitions(self, builder, majority_protocol):
        c1 = builder.config_vars("c1")
        solver = Solver()
        solver.add(builder.terminal(c1))
        solver.add(c1["A"] >= 1, c1["B"] >= 1)
        assert solver.check().status is SolverStatus.UNSAT

    def test_pattern_constraint(self, builder):
        c1 = builder.config_vars("c1")
        pattern = TerminalPattern(allowed=frozenset({"A", "a"}), capped=frozenset())
        solver = Solver()
        solver.add(builder.pattern(c1, pattern))
        solver.add(c1["b"] >= 1)
        assert solver.check().status is SolverStatus.UNSAT

    def test_derived_config_matches_firing(self, builder, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        c0 = builder.config_vars("c0")
        x = builder.flow_vars("x")
        derived = builder.derived_config(c0, x)
        solver = Solver()
        solver.add(c0["A"].eq(1), c0["B"].eq(2), c0["a"].eq(0), c0["b"].eq(0))
        solver.add(x[by_name["tAB"]].eq(1))
        for transition, variable in x.items():
            if transition is not by_name["tAB"]:
                solver.add(variable.eq(0))
        model = solver.check().model
        # Firing tAB once from {A, 2*B} yields {B, a, b}.
        assert model.value(derived["A"]) == 0
        assert model.value(derived["B"]) == 1
        assert model.value(derived["a"]) == 1
        assert model.value(derived["b"]) == 1

    def test_flow_equation_constraint(self, builder, majority_protocol):
        c0 = builder.config_vars("c0")
        c1 = builder.config_vars("c1")
        x = builder.flow_vars("x")
        solver = Solver()
        solver.add(builder.flow_equation(c0, c1, x))
        solver.add(builder.initial(c0))
        solver.add(c1["a"] >= 3)
        # Producing three passive agents requires flow (and is fine by the
        # flow equations alone).
        assert solver.check().status is SolverStatus.SAT

    def test_has_output_with_no_matching_states(self, broadcast_protocol):
        builder = _ConstraintBuilder(broadcast_protocol.with_negated_output())
        # After negation the protocol still has both outputs; force an
        # impossible request by asking for output 2-like behaviour through an
        # empty candidate list using a protocol with uniform outputs.
        uniform = broadcast_protocol
        builder = _ConstraintBuilder(uniform)
        formula = builder.has_output(builder.config_vars("c"), 1)
        solver = Solver()
        solver.add(formula)
        assert solver.check().status is SolverStatus.SAT


class TestStrategiesAgree:
    @pytest.mark.parametrize(
        "factory",
        [majority_protocol, broadcast_protocol, lambda: flock_of_birds_protocol(3)],
        ids=["majority", "broadcast", "flock3"],
    )
    def test_patterns_and_monolithic_agree(self, factory):
        protocol = factory()
        assert check_strong_consensus(protocol, strategy="patterns").holds
        assert check_strong_consensus(protocol, strategy="monolithic").holds

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            check_strong_consensus(majority_protocol(), strategy="quantum")


class TestSolverReuse:
    def test_pattern_strategy_uses_one_solver_across_pairs(self, monkeypatch):
        """Regression: the pattern strategy must not rebuild a solver per pair."""
        import repro.verification.strong_consensus as sc_module

        instances = []
        original = sc_module.create_solver

        def counting_solver(*args, **kwargs):
            solver = original(*args, **kwargs)
            instances.append(solver)
            return solver

        monkeypatch.setattr(sc_module, "create_solver", counting_solver)
        protocol = remainder_protocol([1], 5, 3)
        result = check_strong_consensus(protocol, strategy="patterns")
        assert result.holds
        assert result.statistics["pattern_pairs"] > 1
        assert len(instances) == 1
        assert result.statistics["solver_instances"] == 1

    def test_pattern_strategy_reports_solver_statistics(self):
        # White-box assertions on the smtlite statistics keys, so the
        # backend is pinned (the CI backend matrix must not redirect it).
        result = check_strong_consensus(
            flock_of_birds_protocol(4), strategy="patterns", backend="smtlite"
        )
        solver_stats = result.statistics["solver"]
        assert solver_stats["theory_checks"] > 0
        assert "theory_cache_hits" in solver_stats
        assert solver_stats["pushes"] == solver_stats["pops"]
        assert solver_stats["pushes"] >= 1

    def test_side_prechecks_hit_theory_cache(self):
        """The per-pair side skeletons recur, so the memo cache must fire."""
        protocol = remainder_protocol([1], 5, 3)
        result = check_strong_consensus(protocol, strategy="patterns", backend="smtlite")
        assert result.holds
        assert result.statistics["solver"]["theory_cache_hits"] > 0


class TestResultTypes:
    def test_layer_certificate_weight(self, majority_protocol):
        layer = frozenset(majority_protocol.transitions[:2])
        certificate = LayerCertificate(
            layer_index=1, transitions=layer, ranking={"A": Fraction(2), "B": Fraction(1)}
        )
        assert certificate.weight_of(Multiset({"A": 2, "B": 1})) == Fraction(5)
        bare = LayerCertificate(layer_index=1, transitions=layer)
        assert bare.weight_of(Multiset({"A": 1})) is None

    def test_layered_certificate_layer_count(self, majority_protocol):
        partition = OrderedPartition.of(majority_protocol.transitions)
        certificate = LayeredTerminationCertificate(partition=partition)
        assert certificate.num_layers == 1

    def test_refinement_step_validation(self):
        with pytest.raises(ValueError):
            RefinementStep(kind="loop", states=frozenset({"A"}), iteration=0)

    def test_counterexample_description(self):
        counterexample = StrongConsensusCounterexample(
            initial=Multiset({"x": 2}),
            terminal_true=Multiset({"yes": 2}),
            terminal_false=Multiset({"no": 2}),
            flow_true={},
            flow_false={},
        )
        text = counterexample.describe()
        assert "output 1" in text and "output 0" in text


class TestPatternEnumerationProperties:
    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=5, deadline=None)
    def test_flock_pattern_count_bounded(self, c):
        protocol = flock_of_birds_protocol(c)
        patterns = terminal_support_patterns(protocol)
        # Linear, not exponential, in the number of states.
        assert 1 <= len(patterns) <= protocol.num_states + 1
