"""Smoke tests: every example script must run to completion.

The examples double as end-to-end integration tests of the public API (they
build protocols, run the verifier, the correctness checker, the simulator,
the explicit-state baseline and the Petri-net substrate).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

# The protocol-design example compiles a product protocol and verifies it
# end-to-end — by far the longest-running test of the suite.
_SLOW_EXAMPLES = {"design_a_protocol.py"}
EXAMPLE_PARAMS = [
    pytest.param(name, marks=pytest.mark.slow) if name in _SLOW_EXAMPLES else name
    for name in EXAMPLE_SCRIPTS
]


def _load_and_run(script_name: str) -> None:
    path = EXAMPLES_DIR / script_name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script_name", EXAMPLE_PARAMS)
def test_example_runs(script_name, capsys):
    _load_and_run(script_name)
    output = capsys.readouterr().out
    assert output.strip(), f"{script_name} produced no output"
