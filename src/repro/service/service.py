"""The verification service: priority-scheduled jobs over one shared engine.

:class:`VerificationService` owns the machinery a
:class:`~repro.api.verifier.Verifier` session used to own directly — one
validated options bundle, one lazily created (and reused) parallel engine,
one result cache, the per-protocol analysis contexts — and exposes it as an
asynchronous job API:

* :meth:`submit` / :meth:`submit_batch` enqueue work and return a
  :class:`~repro.service.jobs.JobHandle` immediately;
* ``workers`` dispatcher threads drain the queue **priority-first** (higher
  ``priority`` values run earlier; FIFO within a priority), all sharing the
  service's engine worker pool and result cache;
* every stage emits a typed
  :class:`~repro.service.events.ProgressEvent`, recorded per job, delivered
  to subscribers and iterators, and stamped into the finished report's
  statistics as the ``"events"`` trail;
* cancellation is cooperative: a cancelled queued job never starts, a
  cancelled running job stops at the next checkpoint (engine wave boundary,
  pattern/strategy iteration) and frees its workers for later jobs.

``Verifier.check``/``check_many`` are synchronous facades over this class,
so the two surfaces produce identical verdicts by construction.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
import logging
import re
import threading
import time
from collections.abc import Callable, Iterable, Sequence

from repro.api.options import VerificationOptions
from repro.api.properties import property_checker
from repro.api.report import PropertyResult, Verdict, VerificationReport
from repro.engine import monitor
from repro.engine.monitor import JobBinding, JobCancelledError, JobDeadlineExceeded
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span
from repro.service.events import (
    JobFinished,
    JobRecovered,
    JobStarted,
    ProgressEvent,
    PropertyFinished,
    PropertyStarted,
)
from repro.service.jobs import Job, JobHandle, JobStatus, queued_event

logger = logging.getLogger(__name__)

#: Job-level latency and outcome counters for ``GET /metricsz``; the
#: per-instance ``statistics`` dict keeps its historical payload shape.
_JOB_SECONDS = REGISTRY.histogram(
    "repro_job_seconds",
    "End-to-end verification job latency, by terminal status",
)

#: The default property set of a bare ``service.submit(protocol)``.
DEFAULT_PROPERTIES = ("ws3",)

#: Analysis contexts kept per service (FIFO-bounded by protocol hash).
_MAX_CONTEXTS = 16

#: Finished jobs (with their event logs) retained for later lookup.  A
#: long-running serve daemon must not accumulate every job it ever ran:
#: once the bound is exceeded the oldest *finished* jobs are evicted
#: (queued/running jobs are never evicted) and ``service.job(id)`` starts
#: answering ``KeyError`` for them.  Callers holding a ``JobHandle`` keep
#: their job alive regardless — eviction only drops the service's index.
_MAX_FINISHED_JOBS = 256


def _normalize_properties(properties) -> tuple[str, ...]:
    if properties is None:
        return DEFAULT_PROPERTIES
    if isinstance(properties, str):
        return (properties,)
    names = tuple(properties)
    if not names:
        raise ValueError("at least one property must be requested")
    return names


class VerificationService:
    """Asynchronous verification jobs over one shared engine and cache.

    Parameters
    ----------
    options:
        A :class:`VerificationOptions` bundle (defaults apply when omitted);
        keyword overrides are applied on top, mirroring ``Verifier``.
    workers:
        Dispatcher threads, i.e. how many jobs may *run* concurrently.  The
        default of 1 serialises jobs (each still fans its subproblems over
        ``options.jobs`` worker processes); raise it to overlap independent
        jobs on the same pool.
    engine:
        An existing :class:`~repro.engine.scheduler.VerificationEngine` to
        schedule on (left running on :meth:`close`); mutually exclusive
        with ``jobs > 1`` in the options, which makes the service create —
        and own — a pool lazily on first use.
    cache:
        An existing :class:`~repro.engine.cache.ResultCache`; by default a
        cache is opened at ``options.cache_dir`` (if set) on first use.
    journal_dir:
        Directory of the durable :class:`~repro.service.journal.JobJournal`.
        When set, every submit / start / finish is journalled write-ahead,
        and construction *recovers* the journal: finished jobs become
        servable results again, unfinished jobs are re-enqueued (unless
        ``resume=False``) and run as if the crash never happened.
    resume:
        With a journal: whether to re-enqueue unfinished journalled jobs at
        construction (finished results are always restored).
    journal_compact_threshold:
        With a journal: the on-disk size (bytes) past which the journal is
        auto-compacted at startup.  ``None`` keeps the journal's default
        (:data:`~repro.service.journal.COMPACT_THRESHOLD_BYTES`); ``0``
        disables auto-compaction entirely.
    """

    def __init__(
        self,
        options: VerificationOptions | None = None,
        *,
        workers: int = 1,
        engine=None,
        cache=None,
        journal_dir=None,
        resume: bool = True,
        journal_compact_threshold: int | None = None,
        **overrides,
    ):
        if options is None:
            options = VerificationOptions(**overrides)
        elif overrides:
            options = options.replace(**overrides)
        if engine is not None and options.jobs != 1:
            raise ValueError("pass either jobs>1 in the options or an engine, not both")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.options = options
        self.workers = int(workers)
        self._engine = engine
        self._owns_engine = False
        self._cache = cache
        self._closed = False
        self._lock = threading.Lock()
        self._queue_condition = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, Job]] = []  # heap of (-priority, seq, job)
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        self._jobs: dict[str, Job] = {}
        self._threads: list[threading.Thread] = []
        self._contexts: dict[str, object] = {}
        self._contexts_lock = threading.Lock()
        self.statistics = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "subscriber_errors": 0,
            "recovered": 0,
            "resumed": 0,
        }
        #: The simplify-cache directory this service attached (see
        #: :meth:`_cache_for_call`); detached again on :meth:`close`.
        self._simplify_dir: str | None = None
        #: Whether dispatcher threads drain the queue after close() (the
        #: default) or leave queued jobs for the journal to resume.
        self._drain_on_close = True
        self.journal = None
        if journal_dir is not None:
            from repro.service.journal import COMPACT_THRESHOLD_BYTES, JobJournal

            if journal_compact_threshold is None:
                threshold = COMPACT_THRESHOLD_BYTES
            elif journal_compact_threshold <= 0:
                threshold = None  # auto-compaction disabled
            else:
                threshold = int(journal_compact_threshold)
            self.journal = JobJournal(journal_dir, compact_threshold_bytes=threshold)
            self._recover_journal(resume)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self, wait: bool = True, drain: bool = True) -> None:
        """Stop accepting jobs, drain the queue, shut down an owned engine.

        Pending jobs still run to completion (they were accepted); pass
        ``wait=False`` to return without joining the dispatcher threads.
        With ``drain=False`` queued jobs are *left queued* instead of run —
        the journal shutdown path: a journalled service closes fast and the
        undrained jobs are resumed by the next process from the journal.
        """
        with self._lock:
            if self._closed:
                threads = []
            else:
                self._closed = True
                self._drain_on_close = drain
                threads = list(self._threads)
            self._queue_condition.notify_all()
        if wait:
            for thread in threads:
                thread.join()
        with self._lock:
            if self._owns_engine and self._engine is not None:
                self._engine.shutdown()
                self._engine = None
                self._owns_engine = False
            simplify_dir = self._simplify_dir
            self._simplify_dir = None
        if simplify_dir is not None:
            from pathlib import Path

            from repro.constraints.simplify_cache import active_cache, configure_simplify_cache

            # Detach the disk layer — unless another session re-pointed it
            # at its own directory in the meantime (last one wins).
            if active_cache().directory == Path(simplify_dir):
                configure_simplify_cache(None)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def engine(self):
        """The shared engine (``None`` until a parallel job runs)."""
        return self._engine

    def _engine_for_call(self):
        with self._lock:
            # Refuse new outside callers once closed — but a dispatcher
            # thread finishing its in-flight job during the close() drain is
            # internal and must keep its engine access (otherwise every job
            # caught mid-run by a shutdown would fail instead of finishing).
            if self._closed and threading.current_thread() not in self._threads:
                raise RuntimeError("this VerificationService is closed")
            if self._engine is None and self.options.jobs > 1:
                from repro.engine.scheduler import VerificationEngine

                self._engine = VerificationEngine(
                    jobs=self.options.jobs, retry=self.options.retry
                )
                self._owns_engine = True
            return self._engine

    def _cache_for_call(self):
        with self._lock:
            if self._cache is None and self.options.cache_dir is not None:
                from repro.engine.cache import ResultCache

                self._cache = ResultCache(self.options.cache_dir)
                # Sessions with a result cache also persist simplified
                # constraint systems (keyed by content hash) under the same
                # directory, so repeated batch runs skip the simplifier
                # across processes.  The disk layer is process-global (the
                # call sites live deep in the verification layer): the most
                # recently opened cache wins, and close() detaches it again.
                import os

                from repro.constraints.simplify_cache import configure_simplify_cache

                self._simplify_dir = os.path.join(self.options.cache_dir, "simplified")
                configure_simplify_cache(self._simplify_dir)
            return self._cache

    def analysis_context(self, protocol):
        """The shared per-protocol :class:`~repro.constraints.context.AnalysisContext`.

        One context per protocol (by content hash), reused across every job
        of the service.
        """
        from repro.constraints.context import AnalysisContext
        from repro.engine.cache import protocol_content_hash

        key = protocol_content_hash(protocol)
        with self._contexts_lock:
            context = self._contexts.get(key)
            if context is None:
                context = AnalysisContext(protocol).seed_protocol_key(key)
                if len(self._contexts) >= _MAX_CONTEXTS:
                    self._contexts.pop(next(iter(self._contexts)))
                self._contexts[key] = context
            return context

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        protocol,
        properties: Sequence[str] | str | None = None,
        *,
        predicate=None,
        priority: int = 0,
        subscriber: Callable[[ProgressEvent], None] | None = None,
    ) -> JobHandle:
        """Enqueue one protocol check; returns without blocking.

        ``priority`` orders the queue (higher runs earlier); ``subscriber``
        is a convenience for registering an event callback atomically with
        submission, so the ``job_queued`` event is never missed.
        """
        names = _normalize_properties(properties)
        for name in names:
            property_checker(name)  # fail fast on unknown names, in the caller
        job = Job(
            job_id=f"job-{next(self._job_seq)}",
            kind="check",
            payload={"protocol": protocol, "properties": names, "predicate": predicate},
            priority=int(priority),
            protocol_name=getattr(protocol, "name", ""),
            properties=names,
        )
        return self._enqueue(job, subscriber)

    def submit_batch(
        self,
        protocols: Iterable,
        properties: Sequence[str] | str | None = None,
        *,
        priority: int = 0,
        subscriber: Callable[[ProgressEvent], None] | None = None,
    ) -> JobHandle:
        """Enqueue a whole batch (the ``check_many`` semantics) as one job.

        The job's result is a :class:`~repro.engine.batch.BatchResult`:
        duplicate protocols are verified once, known verdicts are served
        from the result cache (emitting ``cache_hit`` events), and with a
        parallel engine the pending protocols fan out across the pool.
        """
        protocols = list(protocols)
        names = _normalize_properties(properties)
        for name in names:
            property_checker(name)
        job = Job(
            job_id=f"job-{next(self._job_seq)}",
            kind="batch",
            payload={"protocols": protocols, "properties": names},
            priority=int(priority),
            protocol_name=f"{len(protocols)} protocol(s)",
            properties=names,
        )
        return self._enqueue(job, subscriber)

    def _enqueue(self, job: Job, subscriber) -> JobHandle:
        handle = JobHandle(job)
        if subscriber is not None:
            handle.subscribe(subscriber)
        with self._lock:
            if self._closed:
                raise RuntimeError("this VerificationService is closed")
            self._jobs[job.id] = job
            self.statistics["submitted"] += 1
        if self.journal is not None:
            # Write-ahead: the submission is durable before the job becomes
            # poppable.  A failing journal fails the submit — accepting a
            # job the journal cannot recover would break the durability
            # contract the caller opted into.
            try:
                self.journal.append(self._submitted_record(job))
            except BaseException:
                with self._lock:
                    self._jobs.pop(job.id, None)
                    self.statistics["submitted"] -= 1
                raise
        # The queued event is recorded *before* the job becomes poppable, so
        # every trail starts with job_queued (seq 0) — and subscribers run
        # outside the service lock, so a callback touching the service
        # cannot deadlock.
        job.record_event(queued_event(job))
        with self._lock:
            if self._closed:
                # Closed in the window above: the job can never run.
                self._jobs.pop(job.id, None)
                self.statistics["submitted"] -= 1
                raise RuntimeError("this VerificationService is closed")
            heapq.heappush(self._queue, (-job.priority, next(self._seq), job))
            self._ensure_workers_locked()
            self._queue_condition.notify()
        return handle

    def _ensure_workers_locked(self) -> None:
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-service-worker-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    # Job lookup
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> JobHandle:
        """The handle for a submitted job id; unknown ids raise ``KeyError``."""
        return JobHandle(self._jobs[job_id])

    def jobs(self) -> list[JobHandle]:
        """Handles for every job the service has seen, in submission order."""
        with self._lock:
            return [JobHandle(job) for job in self._jobs.values()]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._queue_condition:
                while not self._queue and not self._closed:
                    self._queue_condition.wait()
                if self._closed and not self._drain_on_close:
                    return  # closed without draining: queued jobs stay journalled
                if not self._queue:
                    return  # closed and drained
                _, _, job = heapq.heappop(self._queue)
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        if not job.mark_running():
            # Cancelled while queued: it never starts, never touches a worker.
            self._finish(job, JobStatus.CANCELLED, outcome="cancelled")
            return
        if self.journal is not None:
            # Best-effort: a failed "started" append only loses the
            # interrupted-mid-run distinction, never the job itself.
            try:
                self.journal.append({"record": "started", "job": job.id})
            except OSError as error:  # pragma: no cover - disk failure
                logger.warning("could not journal start of %s: %s", job.id, error)
        start = time.perf_counter()
        binding = JobBinding(
            job.id,
            record=job.record_event,
            should_cancel=lambda: job.cancel_requested,
            budget=self.options.retry.job_timeout,
        )
        with monitor.bound_to_job(binding):
            job.record_event(JobStarted(job_id=job.id))
            try:
                if job.kind == "batch":
                    result = self._run_batch_job(job)
                else:
                    result = self._run_check_job(job)
            except JobCancelledError:
                self._finish(job, JobStatus.CANCELLED, outcome="cancelled", start=start)
            except BaseException as error:
                self._finish(job, JobStatus.FAILED, error=error, start=start)
            else:
                self._finish(job, JobStatus.DONE, result=result, start=start)

    def _finish(
        self,
        job: Job,
        status: JobStatus,
        *,
        result=None,
        error: BaseException | None = None,
        outcome: str | None = None,
        start: float | None = None,
    ) -> None:
        elapsed = 0.0 if start is None else time.perf_counter() - start
        if outcome is None:
            outcome = {JobStatus.DONE: "done", JobStatus.FAILED: "error"}.get(status, "cancelled")
        ok = None
        if status is JobStatus.DONE and result is not None:
            ok = bool(getattr(result, "ok", getattr(result, "all_ok", None)))
        if self.journal is not None:
            # Write-ahead relative to the in-memory flip: once job.finish
            # makes the result visible, it is already durable.  Best-effort
            # beyond that — the caller still gets the in-memory result even
            # if the disk is gone.
            try:
                self.journal.append(self._finished_record(job, status, result, error))
            except (OSError, ValueError) as journal_error:  # pragma: no cover - disk failure
                logger.warning("could not journal finish of %s: %s", job.id, journal_error)
        # The terminal event, the status flip and the event-trail stamping
        # into the result's statistics happen atomically inside the job (see
        # Job.finish), so completion subscribers observe a finished job.
        job.finish(
            status,
            result=result,
            error=error,
            final_event=JobFinished(
                job_id=job.id,
                outcome=outcome,
                ok=ok,
                error="" if error is None else f"{type(error).__name__}: {error}",
                time_seconds=elapsed,
            ),
        )
        counter = {
            JobStatus.DONE: "completed",
            JobStatus.FAILED: "failed",
            JobStatus.CANCELLED: "cancelled",
        }[status]
        _JOB_SECONDS.observe(elapsed, status=counter)
        with self._lock:
            self.statistics[counter] += 1
            self.statistics["subscriber_errors"] += job.subscriber_errors
            job.subscriber_errors = 0
            self._evict_finished_locked()

    def _evict_finished_locked(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items() if job.status.finished]
        excess = len(finished) - _MAX_FINISHED_JOBS
        if excess > 0:
            # Dict order is submission order, so the oldest finished go first.
            for job_id in finished[:excess]:
                self._jobs.pop(job_id, None)

    # ------------------------------------------------------------------
    # Journal: durable records and crash recovery
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        """Jobs accepted but not yet picked up by a dispatcher."""
        with self._lock:
            return len(self._queue)

    def cache_statistics(self) -> dict | None:
        """A snapshot of the result cache's counters (``None`` if unopened)."""
        with self._lock:
            if self._cache is None:
                return None
            return dict(self._cache.statistics)

    def _submitted_record(self, job: Job) -> dict:
        """The journal line that makes a submission recoverable.

        Protocols are serialised losslessly; the documented predicate (both
        an explicit ``predicate=`` argument and one riding in
        ``protocol.metadata`` — which :func:`protocol_to_dict` drops) is
        captured separately so a recovered correctness check sees exactly
        what the original caller passed.
        """
        from repro.io.serialization import predicate_to_dict, protocol_to_dict

        record = {
            "record": "submitted",
            "job": job.id,
            "kind": job.kind,
            "priority": job.priority,
            "properties": list(job.properties),
            "protocol_name": job.protocol_name,
        }
        if job.kind == "batch":
            protocols = job.payload["protocols"]
            record["protocols"] = [protocol_to_dict(protocol) for protocol in protocols]
            metadata = [
                None
                if getattr(protocol, "metadata", {}).get("predicate") is None
                else predicate_to_dict(protocol.metadata["predicate"])
                for protocol in protocols
            ]
            if any(entry is not None for entry in metadata):
                record["metadata_predicates"] = metadata
        else:
            protocol = job.payload["protocol"]
            record["protocol"] = protocol_to_dict(protocol)
            if job.payload.get("predicate") is not None:
                record["predicate"] = predicate_to_dict(job.payload["predicate"])
            documented = getattr(protocol, "metadata", {}).get("predicate")
            if documented is not None:
                record["metadata_predicate"] = predicate_to_dict(documented)
        return record

    def _finished_record(self, job: Job, status: JobStatus, result, error) -> dict:
        record = {
            "record": "finished",
            "job": job.id,
            "status": status.value,
            "error": "" if error is None else f"{type(error).__name__}: {error}",
        }
        if isinstance(result, VerificationReport):
            record["report"] = result.to_dict()
        elif result is not None:
            from repro.engine.batch import BatchResult, batch_result_to_dict

            if isinstance(result, BatchResult):
                record["batch"] = batch_result_to_dict(result)
        return record

    def _recover_journal(self, resume: bool) -> None:
        """Replay the journal: restore finished results, re-enqueue the rest.

        Recovery never re-appends ``submitted`` records — the existing lines
        already make the jobs durable, and replay is last-wins, so restarting
        twice in a row is idempotent.
        """
        states = self.journal.load()
        if not states:
            return
        highest = 0
        for job_id in states:
            match = re.fullmatch(r"job-(\d+)", job_id)
            if match:
                highest = max(highest, int(match.group(1)))
        # Fresh submissions must never collide with journalled ids.
        self._job_seq = itertools.count(highest + 1)
        for job_id, state in states.items():
            try:
                if state.get("finished"):
                    self._restore_finished(job_id, state)
                elif resume:
                    self._resume_unfinished(job_id, state)
            except Exception as error:
                # One undecodable job must not take down recovery of the rest.
                logger.warning("could not recover journalled job %s: %s", job_id, error)
        with self._lock:
            if self._queue:
                self._ensure_workers_locked()
                self._queue_condition.notify_all()

    def _rebuild_job(self, job_id: str, state: dict) -> Job:
        from repro.io.serialization import predicate_from_dict, protocol_from_dict

        kind = state.get("kind", "check")
        properties = tuple(state.get("properties") or DEFAULT_PROPERTIES)
        if kind == "batch":
            protocols = [protocol_from_dict(entry) for entry in state.get("protocols", [])]
            for protocol, predicate in zip(protocols, state.get("metadata_predicates", [])):
                if predicate is not None:
                    protocol.metadata["predicate"] = predicate_from_dict(predicate)
            payload = {"protocols": protocols, "properties": properties}
        else:
            protocol = protocol_from_dict(state["protocol"])
            if state.get("metadata_predicate") is not None:
                protocol.metadata["predicate"] = predicate_from_dict(state["metadata_predicate"])
            predicate = None
            if state.get("predicate") is not None:
                predicate = predicate_from_dict(state["predicate"])
            payload = {"protocol": protocol, "properties": properties, "predicate": predicate}
        return Job(
            job_id=job_id,
            kind=kind,
            payload=payload,
            priority=int(state.get("priority", 0)),
            protocol_name=state.get("protocol_name", ""),
            properties=properties,
        )

    def _restore_finished(self, job_id: str, state: dict) -> None:
        """A journalled terminal job becomes a servable finished handle again."""
        job = self._rebuild_job(job_id, state)
        status = JobStatus(state.get("status", JobStatus.DONE.value))
        result = None
        if state.get("report") is not None:
            result = VerificationReport.from_dict(state["report"])
        elif state.get("batch") is not None:
            from repro.engine.batch import batch_result_from_dict

            result = batch_result_from_dict(state["batch"])
        error_text = state.get("error", "")
        error = None
        if status is JobStatus.FAILED:
            # The original exception type is gone; a RuntimeError carrying
            # the journalled message keeps JobHandle.result() raising.
            error = RuntimeError(error_text or "job failed (recovered from journal)")
        outcome = {JobStatus.DONE: "done", JobStatus.FAILED: "error"}.get(status, "cancelled")
        ok = None
        if status is JobStatus.DONE and result is not None:
            ok = bool(getattr(result, "ok", getattr(result, "all_ok", None)))
        job.record_event(queued_event(job))
        job.finish(
            status,
            result=result,
            error=error,
            final_event=JobFinished(job_id=job.id, outcome=outcome, ok=ok, error=error_text),
        )
        with self._lock:
            self._jobs[job.id] = job
            self.statistics["recovered"] += 1

    def _resume_unfinished(self, job_id: str, state: dict) -> None:
        """Re-enqueue a journalled job the previous process never finished."""
        job = self._rebuild_job(job_id, state)
        with self._lock:
            self._jobs[job.id] = job
            self.statistics["submitted"] += 1
            self.statistics["resumed"] += 1
        job.record_event(queued_event(job))
        job.record_event(JobRecovered(job_id=job.id, had_started=bool(state.get("started"))))
        with self._lock:
            heapq.heappush(self._queue, (-job.priority, next(self._seq), job))

    # ------------------------------------------------------------------
    # The actual checking (shared with the Verifier facade)
    # ------------------------------------------------------------------

    def _run_check_job(self, job: Job) -> VerificationReport:
        """One submit job: the check, served from the result cache when possible.

        Single jobs share the batch path's cache keying exactly
        (:func:`~repro.engine.batch.batch_cache_options`), so a daemon's
        ``submit`` traffic, ``check_many`` batches and earlier runs all hit
        the same entries.
        """
        payload = job.payload
        protocol = payload["protocol"]
        names = payload["properties"]
        predicate = payload["predicate"]
        cache = self._cache_for_call()
        key = None
        if cache is not None:
            from repro.engine.batch import batch_cache_options
            from repro.engine.cache import ResultCache, protocol_content_hash
            from repro.engine.scheduler import ENGINE_VERSION
            from repro.service.events import CacheHit

            effective = predicate
            if effective is None and "correctness" in names:
                effective = protocol.metadata.get("predicate")
            content_hash = protocol_content_hash(protocol)
            key = ResultCache.entry_key(
                content_hash,
                ENGINE_VERSION,
                batch_cache_options(names, self.options, effective),
            )
            cached = cache.get(key)
            if cached is not None:
                job.record_event(
                    CacheHit(job_id=job.id, protocol_name=protocol.name, protocol_hash=content_hash)
                )
                report = VerificationReport.from_dict(cached)
                report.statistics["from_cache"] = True
                return report
        report = self.run_check(protocol, names, predicate=predicate)
        if cache is not None and not report.partial:
            # A partial report decided nothing for its unfinished properties;
            # caching it would serve the indecision forever.
            cache.put(key, report.to_dict())
        return report

    def run_check(self, protocol, names: Sequence[str], *, predicate=None) -> VerificationReport:
        """Check ``names`` on one protocol, emitting property-stage events.

        This is the synchronous core used both by dispatcher threads and by
        ``run_batch``'s serial fallback; it must run under a job binding to
        produce events (without one it degrades to the plain check).

        With ``options.trace`` the whole check runs under a span sink and
        the finished report embeds the span tree (``statistics["trace"]``)
        next to the progress-event trail; ``options.profile`` adds per-phase
        wall/CPU timing and a ``cProfile`` capture of this thread
        (``statistics["profile"]``).  Both are execution-only: the verdicts
        and artifacts are identical to an uninstrumented run.
        """
        if not (self.options.trace or self.options.profile):
            return self._check_properties(protocol, tuple(names), predicate, None)
        import contextlib

        from repro.obs import trace as obs_trace
        from repro.obs.profile import PhaseProfile, cprofile_capture

        sink = obs_trace.TraceSink() if self.options.trace else None
        phases = PhaseProfile() if self.options.profile else None
        capture = None
        with contextlib.ExitStack() as stack:
            if self.options.profile:
                capture = stack.enter_context(cprofile_capture())
            if sink is not None:
                stack.enter_context(obs_trace.collect(sink))
                stack.enter_context(
                    obs_trace.span(
                        "job",
                        protocol=protocol.name,
                        job_id=monitor.current_job_id() or "",
                    )
                )
            report = self._check_properties(protocol, tuple(names), predicate, phases)
        if sink is not None:
            report.statistics["trace"] = sink.spans()
            if sink.dropped:
                report.statistics["trace_dropped_spans"] = sink.dropped
        if self.options.profile:
            report.statistics["profile"] = {
                "phases": phases.to_dict(),
                "top_functions": capture.top_functions(),
            }
        return report

    def _check_properties(
        self, protocol, names: tuple, predicate, phases
    ) -> VerificationReport:
        start = time.perf_counter()
        context = self.analysis_context(protocol)
        engine = self._engine_for_call()
        monitor.emit_backend_selected(self.options.backend, scope="options")
        results = []
        deadline_error: JobDeadlineExceeded | None = None
        for name in names:
            checker = property_checker(name)
            if deadline_error is not None:
                # Job budget already gone: the remaining properties are
                # reported PARTIAL rather than silently dropped, so the
                # caller sees exactly which verdicts are missing.
                result = PropertyResult(
                    property=name, verdict=Verdict.PARTIAL, reason=str(deadline_error)
                )
            else:
                try:
                    monitor.check_cancelled()
                    monitor.emit(
                        lambda job_id, name=name: PropertyStarted(
                            job_id=job_id, property=name, protocol_name=protocol.name
                        )
                    )
                    with obs_span("property", property=name, protocol=protocol.name) as pspan:
                        if phases is not None:
                            with phases.phase(name):
                                result = self._run_checker(
                                    checker, protocol, engine, predicate, context
                                )
                        else:
                            result = self._run_checker(
                                checker, protocol, engine, predicate, context
                            )
                        if pspan is not None:
                            pspan.attrs["verdict"] = result.verdict.value
                except JobDeadlineExceeded as error:
                    # A plain cancellation still propagates (JobCancelledError
                    # is the parent class); only the budget expiry degrades to
                    # a partial report.
                    deadline_error = error
                    result = PropertyResult(
                        property=name, verdict=Verdict.PARTIAL, reason=str(error)
                    )
            monitor.emit(
                lambda job_id, name=name, result=result: PropertyFinished(
                    job_id=job_id,
                    property=name,
                    protocol_name=protocol.name,
                    verdict=result.verdict.value,
                )
            )
            results.append(result)
        statistics = {
            "time": time.perf_counter() - start,
            "jobs": engine.jobs if engine is not None else 1,
            "properties": list(names),
        }
        if deadline_error is not None:
            statistics["partial"] = True
        return VerificationReport(
            protocol_name=protocol.name,
            protocol_hash=context.protocol_key,
            properties=results,
            options=self.options.to_dict(),
            statistics=statistics,
        )

    def _run_checker(self, checker, protocol, engine, predicate, context):
        """Invoke one checker, passing the shared context when it accepts one.

        Custom checkers written against the pre-context interface (no
        ``context`` keyword) keep working unchanged.
        """
        kwargs = {"engine": engine, "predicate": predicate}
        try:
            accepts_context = "context" in inspect.signature(checker.check).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            accepts_context = False
        if accepts_context:
            kwargs["context"] = context
        return checker.check(protocol, self.options, **kwargs)

    def _run_batch_job(self, job: Job):
        from repro.engine.batch import run_batch

        payload = job.payload
        names = payload["properties"]
        return run_batch(
            payload["protocols"],
            names,
            self.options,
            engine=self._engine_for_call(),
            cache=self._cache_for_call(),
            check_one=lambda protocol, engine: self.run_check(protocol, names),
        )
