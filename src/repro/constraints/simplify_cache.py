"""Content-hash keyed cache of simplified constraint systems.

The simplifier (:mod:`repro.constraints.simplify`) is pure: the simplified
form of a system depends only on the system's content and the
``tighten_bounds`` flag.  The verification layer, however, re-poses
byte-identical blocks constantly — the consensus/correctness base blocks per
solver instance, the recurring pattern blocks of a sweep, whole protocols
revisited by ``check_many`` — and re-simplified each one from scratch.

:func:`simplify_system_cached` keys each pass by a SHA-256 digest of the
system's canonical form (name, bounds, groups, constraint reprs — the
``LinearExpr``/``Formula`` reprs are deterministic) and serves repeats from

1. a bounded in-process memo (always on), and
2. an optional on-disk layer inside the result-cache directory
   (``<cache_dir>/simplified/``), configured by the service whenever a
   session has ``options.cache_dir`` set, so repeated batch runs skip the
   simplifier across processes too.

Entries store the simplified system *and* the pass statistics, and hits
merge the stored statistics into the caller's accumulator — a warm run
reports exactly the per-run simplifier savings a cold run would, so cached
and uncached reports stay comparable.  Returned systems are defensive
copies: callers may mutate their copy without poisoning the cache.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import threading
from pathlib import Path

from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import SimplifyStats, simplify_system
from repro.obs.metrics import REGISTRY

logger = logging.getLogger(__name__)

#: Part of every cache key: bump when the simplifier's output can change.
#: "2": scoped systems (PR 9) — keys carry the scope shape, and pickled
#: systems gained a slot, so version-"1" entries must never be loaded.
SIMPLIFY_CACHE_VERSION = "2"

#: Bound of the in-process memo (FIFO eviction).
_MAX_MEMORY_ENTRIES = 512

#: Process-wide mirror of every instance's counters (``GET /metricsz``).
_EVENTS = REGISTRY.counter(
    "repro_simplify_cache_events_total",
    "Simplify-cache traffic: memory/disk hits, misses, stores, corruptions",
)


def system_content_key(system: ConstraintSystem, tighten_bounds: bool) -> str:
    """SHA-256 digest of a system's canonical content (hex, 64 chars).

    The key is delta-aware: the scope marks of a system with open scopes
    (:meth:`ConstraintSystem.scope_marks`) are part of the payload, so a
    scoped system never collides with a from-scratch system that happens to
    have the same flattened content — the scoped one is still mutable below
    its marks, and the cached simplified form must not be shared.
    """
    payload = "\x1f".join(
        (
            SIMPLIFY_CACHE_VERSION,
            repr(tighten_bounds),
            system.name,
            repr(system.scope_marks()),
            repr(sorted(system.bounds.items())),
            repr(sorted(system.groups.items())),
            "\x1e".join(repr(constraint) for constraint in system.constraints),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _copy_system(system: ConstraintSystem) -> ConstraintSystem:
    """A shallow copy sharing the (immutable) formulas but no containers."""
    copy = ConstraintSystem(system.name)
    copy.bounds = dict(system.bounds)
    copy.groups = {group: tuple(members) for group, members in system.groups.items()}
    copy.constraints = list(system.constraints)
    return copy


class SimplifyCache:
    """Bounded in-memory memo with an optional on-disk layer."""

    def __init__(self, directory: str | Path | None = None):
        self._lock = threading.Lock()
        self._memory: dict[str, tuple[ConstraintSystem, SimplifyStats]] = {}
        self._directory: Path | None = None
        self.statistics = {"hits": 0, "disk_hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
        if directory is not None:
            self.attach_directory(directory)

    def attach_directory(self, directory: str | Path) -> None:
        """Enable (or move) the on-disk layer; entries are pickle files."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._directory = path

    def detach_directory(self) -> None:
        with self._lock:
            self._directory = None

    @property
    def directory(self) -> Path | None:
        return self._directory

    def _count(self, counter: str) -> None:
        # The process-global cache is shared by concurrent dispatcher
        # threads; counter updates are read-modify-write.
        with self._lock:
            self.statistics[counter] += 1
        _EVENTS.inc(event=counter)

    def get(self, key: str) -> tuple[ConstraintSystem, SimplifyStats] | None:
        with self._lock:
            entry = self._memory.get(key)
            directory = self._directory
        if entry is not None:
            self._count("hits")
            return entry
        if directory is None:
            self._count("misses")
            return None
        path = directory / f"{key}.pkl"
        try:
            entry = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError) as error:
            # A present-but-undecodable pickle is corruption, not a cold
            # cache: quarantine it so the next run re-simplifies once instead
            # of tripping over the same bad bytes forever.
            self._count("corrupt")
            logger.warning(
                "quarantining corrupt simplify-cache entry %s (%s: %s)",
                path.name,
                type(error).__name__,
                error,
            )
            try:
                path.replace(path.with_suffix(".corrupt"))
            except OSError:
                pass
            self._count("misses")
            return None
        with self._lock:
            self.statistics["disk_hits"] += 1
            self._remember(key, entry)
        _EVENTS.inc(event="disk_hits")
        return entry

    def put(self, key: str, system: ConstraintSystem, stats: SimplifyStats) -> None:
        entry = (system, stats)
        with self._lock:
            self._remember(key, entry)
            self.statistics["stores"] += 1
            directory = self._directory
        _EVENTS.inc(event="stores")
        if directory is None:
            return
        # Atomic publication, mirroring the result cache: concurrent batch
        # runs sharing a cache directory must never read a torn pickle.  The
        # disk layer is strictly best-effort — a vanished directory or a
        # full disk must never break a verification run.
        import os
        import tempfile

        try:
            handle = tempfile.NamedTemporaryFile(dir=directory, suffix=".tmp", delete=False)
            try:
                with handle:
                    handle.write(pickle.dumps(entry))
                os.replace(handle.name, directory / f"{key}.pkl")
            except OSError:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
        except (OSError, pickle.PicklingError):  # pragma: no cover - unwritable / unpicklable
            pass

    def _remember(self, key: str, entry) -> None:
        if len(self._memory) >= _MAX_MEMORY_ENTRIES:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = entry

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()


#: The process-wide cache every ``simplify_system_cached`` call goes through.
_CACHE = SimplifyCache()


def active_cache() -> SimplifyCache:
    return _CACHE


def configure_simplify_cache(directory: str | Path | None) -> SimplifyCache:
    """Point the on-disk layer at ``directory`` (``None`` detaches it).

    The service calls this with ``<options.cache_dir>/simplified`` whenever a
    session is configured with a result cache, fulfilling the ROADMAP item:
    simplified systems are keyed by content hash in the result-cache
    directory.
    """
    if directory is None:
        _CACHE.detach_directory()
    else:
        _CACHE.attach_directory(directory)
    return _CACHE


def simplify_system_cached(
    system: ConstraintSystem,
    tighten_bounds: bool = True,
    simplifier: SimplifyStats | None = None,
) -> ConstraintSystem:
    """Like :func:`simplify_system`, but content-hash memoized.

    ``simplifier`` (when given) accumulates the pass statistics exactly as
    the uncached call sites did — on a hit the *stored* statistics are
    merged, so per-run savings accounting is independent of cache warmth.
    """
    key = system_content_key(system, tighten_bounds)
    entry = _CACHE.get(key)
    if entry is None:
        simplified, stats = simplify_system(system, tighten_bounds=tighten_bounds)
        _CACHE.put(key, _copy_system(simplified), stats)
    else:
        simplified, stats = entry
        simplified = _copy_system(simplified)
    if simplifier is not None:
        simplifier.merge(stats)
    return simplified
