"""Unified verification API: one session object, pluggable properties.

The :class:`Verifier` replaces the historical per-property entry points
(``verify_ws3``, ``check_strong_consensus``, ``check_correctness``,
``check_layered_termination``, ``verify_many``)::

    from repro.api import Verifier

    report = Verifier().check(protocol, properties=["ws3"])
    print(report.summary())
    payload = report.to_json()          # lossless: certificates,
    clone = VerificationReport.from_json(payload)  # counterexamples, refinements
    assert clone == report

Properties are looked up in a registry
(:func:`~repro.api.properties.available_properties`), so downstream code can
plug in new :class:`~repro.api.properties.PropertyChecker` implementations
with :func:`~repro.api.properties.register_property`.
"""

from repro.api.options import VerificationOptions
from repro.api.properties import (
    PropertyChecker,
    available_properties,
    property_checker,
    register_property,
    unregister_property,
)
from repro.api.report import (
    REPORT_SCHEMA,
    PropertyResult,
    Verdict,
    VerificationReport,
)
from repro.api.verifier import DEFAULT_PROPERTIES, Verifier

__all__ = [
    "DEFAULT_PROPERTIES",
    "PropertyChecker",
    "PropertyResult",
    "REPORT_SCHEMA",
    "Verdict",
    "VerificationOptions",
    "VerificationReport",
    "Verifier",
    "available_properties",
    "property_checker",
    "register_property",
    "unregister_property",
]
