"""The verification service: jobs, priorities, events, cancellation, parity.

Covers the tentpole guarantees of the service PR:

* ``Verifier.check`` (the synchronous facade) and a directly submitted job
  produce byte-identical verdict payloads;
* events arrive in a sane order, through subscribers and the iterator API,
  and the finished report embeds the trail in its statistics;
* priorities order the queue; a cancelled job frees its workers and later
  jobs still complete (queued *and* running cancellation).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import Verifier
from repro.engine.monitor import JobCancelledError
from repro.protocols.library import broadcast_protocol, majority_protocol, remainder_protocol
from repro.service import JobNotFinished, JobStatus, VerificationService
from repro.service.events import JobFinished, JobQueued, event_from_dict

VOLATILE_KEYS = {"time", "timestamp", "events", "time_seconds", "worker_pid", "seq"}


def _volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith("_time")


def _stable(payload):
    """Strip run-dependent values so two runs of one check compare equal."""
    if isinstance(payload, dict):
        return {key: _stable(value) for key, value in payload.items() if not _volatile(key)}
    if isinstance(payload, list):
        return [_stable(item) for item in payload]
    return payload


class TestFacadeParity:
    def test_check_is_byte_identical_to_the_service_path(self):
        """Acceptance bar: facade and job API verdicts match byte for byte."""
        with Verifier() as verifier:
            via_facade = verifier.check(majority_protocol(), properties=["ws3"])
        with VerificationService() as service:
            handle = service.submit(majority_protocol(), properties=["ws3"])
            handle.wait()
            via_service = handle.result()
        facade_bytes = json.dumps(_stable(via_facade.to_dict()), sort_keys=True)
        service_bytes = json.dumps(_stable(via_service.to_dict()), sort_keys=True)
        assert facade_bytes == service_bytes

    def test_facade_report_embeds_the_event_trail(self):
        with Verifier() as verifier:
            report = verifier.check(broadcast_protocol())
        trail = [event_from_dict(entry) for entry in report.statistics["events"]]
        kinds = [event.TYPE for event in trail]
        assert kinds[0] == "job_queued" and kinds[-1] == "job_finished"
        assert "property_started" in kinds and "property_finished" in kinds
        assert isinstance(trail[0], JobQueued) and isinstance(trail[-1], JobFinished)
        # The trail survives the report's own lossless round-trip.
        from repro.api.report import VerificationReport

        clone = VerificationReport.from_json(report.to_json())
        assert clone.statistics["events"] == report.statistics["events"]

    def test_facade_propagates_checker_errors_unwrapped(self):
        with pytest.raises(ValueError, match="unknown property"):
            Verifier().check(broadcast_protocol(), properties=["never-registered"])


class TestJobLifecycle:
    def test_submit_is_non_blocking_and_result_never_blocks(self):
        with VerificationService() as service:
            handle = service.submit(majority_protocol())
            # result() must raise rather than block while the job runs/queues.
            if not handle.status().finished:
                with pytest.raises(JobNotFinished):
                    handle.result()
            assert handle.wait(timeout=120)
            report = handle.result()
            assert report.is_ws3
            assert handle.status() is JobStatus.DONE

    def test_events_iterator_sees_the_whole_ordered_stream(self):
        with VerificationService() as service:
            handle = service.submit(broadcast_protocol(), properties=["layered_termination"])
            events = list(handle.events(timeout=120))
        kinds = [event.TYPE for event in events]
        assert kinds[0] == "job_queued"
        assert kinds[-1] == "job_finished"
        assert [event.seq for event in events] == list(range(len(events)))

    def test_subscriber_replays_backlog_without_gaps(self):
        with VerificationService() as service:
            handle = service.submit(broadcast_protocol(), properties=["layered_termination"])
            handle.wait(timeout=120)
            seen: list[int] = []
            handle.subscribe(lambda event: seen.append(event.seq))
        assert seen == list(range(len(seen))) and seen  # backlog, in order

    def test_completion_subscriber_sees_a_finished_job(self):
        """The fetch-on-completion pattern: job_finished implies result()."""
        observed: dict = {}

        with VerificationService() as service:

            def on_event(event):
                if event.TYPE == "job_finished":
                    handle = service.job(event.job_id)
                    observed["status"] = handle.status().value
                    observed["ok"] = handle.result().ok  # must not raise

            handle = service.submit(
                broadcast_protocol(), properties=["layered_termination"], subscriber=on_event
            )
            assert handle.wait(timeout=120)
        assert observed == {"status": "done", "ok": True}

    def test_single_submits_share_the_result_cache(self, tmp_path):
        """A serve daemon's submit traffic must hit the cache, not just batches."""
        from repro.constraints.simplify_cache import configure_simplify_cache

        cache_dir = str(tmp_path / "cache")
        with VerificationService(cache_dir=cache_dir) as service:
            cold = service.submit(majority_protocol(), properties=["layered_termination"])
            assert cold.wait(timeout=240) and cold.result().ok
        with VerificationService(cache_dir=cache_dir) as service:
            warm = service.submit(majority_protocol(), properties=["layered_termination"])
            assert warm.wait(timeout=240)
            report = warm.result()
            assert report.ok
            assert report.statistics.get("from_cache") is True
            kinds = [event.TYPE for event in warm.events_so_far()]
            assert "cache_hit" in kinds
            # The cached report carries *this* job's trail, ending in its finish.
            assert report.statistics["events"][-1]["event"] == "job_finished"
        configure_simplify_cache(None)

    def test_broken_subscriber_does_not_break_the_job(self):
        def explode(event):
            raise RuntimeError("subscriber bug")

        with VerificationService() as service:
            handle = service.submit(broadcast_protocol(), subscriber=explode)
            handle.wait(timeout=120)
            assert handle.result().ok
        assert service.statistics["subscriber_errors"] > 0

    def test_job_lookup_by_id(self):
        with VerificationService() as service:
            handle = service.submit(broadcast_protocol())
            assert service.job(handle.job_id).job_id == handle.job_id
            with pytest.raises(KeyError):
                service.job("job-999")
            handle.wait(timeout=120)

    def test_closed_service_rejects_submissions(self):
        service = VerificationService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(broadcast_protocol())


class TestPriorities:
    def test_higher_priority_jobs_run_first(self):
        order: list[str] = []
        gate = threading.Event()

        with VerificationService() as service:
            # Hold the single dispatcher hostage so the queue builds up
            # (job_started is recorded from the dispatcher thread).
            blocker = service.submit(
                broadcast_protocol(),
                subscriber=lambda e: gate.wait(30) if e.TYPE == "job_started" else None,
            )
            low = service.submit(
                remainder_protocol([1], 3, 1),
                properties=["layered_termination"],
                priority=1,
                subscriber=lambda e, t="low": order.append(t) if e.TYPE == "job_started" else None,
            )
            high = service.submit(
                majority_protocol(),
                properties=["layered_termination"],
                priority=10,
                subscriber=lambda e, t="high": order.append(t) if e.TYPE == "job_started" else None,
            )
            gate.set()
            assert blocker.wait(timeout=120) and low.wait(timeout=120) and high.wait(timeout=120)
        assert order == ["high", "low"]


class TestCancellation:
    def test_cancelled_queued_job_never_runs_and_later_jobs_complete(self):
        gate = threading.Event()
        with VerificationService() as service:
            blocker = service.submit(
                broadcast_protocol(),
                subscriber=lambda e: gate.wait(30) if e.TYPE == "job_started" else None,
            )
            doomed = service.submit(majority_protocol(), priority=5)
            survivor = service.submit(remainder_protocol([1], 3, 1), priority=1)
            assert doomed.cancel()
            gate.set()
            assert survivor.wait(timeout=240) and doomed.wait(timeout=240)
            assert blocker.wait(timeout=240)

            assert doomed.status() is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                doomed.result()
            kinds = [event.TYPE for event in doomed.events_so_far()]
            assert kinds == ["job_queued", "job_finished"]  # it never started
            finish = doomed.events_so_far()[-1]
            assert finish.outcome == "cancelled"

            # The cancelled job freed its slot: the later job completed.
            assert survivor.status() is JobStatus.DONE
            assert survivor.result().is_ws3

    def test_cancelling_a_running_job_stops_it_at_a_checkpoint(self):
        cancelled_at = threading.Event()

        with VerificationService() as service:

            def cancel_once_checking(event):
                # Fires synchronously on the dispatcher thread right before
                # the checker runs; the job must then stop at the very next
                # cooperative checkpoint (a pattern-pair iteration).
                if event.TYPE == "property_started":
                    service.job(event.job_id).cancel()
                    cancelled_at.set()

            handle = service.submit(
                remainder_protocol([1], 5, 2),
                properties=["strong_consensus"],
                subscriber=cancel_once_checking,
            )
            assert handle.wait(timeout=240)
            assert cancelled_at.is_set()
            assert handle.status() is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                handle.result()

            # Workers are free: a job submitted afterwards completes cleanly.
            after = service.submit(broadcast_protocol(), properties=["layered_termination"])
            assert after.wait(timeout=240)
            assert after.result().ok

    def test_cancel_after_finish_returns_false(self):
        with VerificationService() as service:
            handle = service.submit(broadcast_protocol(), properties=["layered_termination"])
            handle.wait(timeout=120)
            assert handle.cancel() is False
            assert handle.status() is JobStatus.DONE


class TestBatchJobs:
    def test_submit_batch_returns_batch_result_with_cache_hits(self, tmp_path):
        from repro.constraints.simplify_cache import configure_simplify_cache

        protocols = [majority_protocol(), majority_protocol(), broadcast_protocol()]
        with VerificationService(cache_dir=str(tmp_path / "cache")) as service:
            cold = service.submit_batch(protocols, properties=["layered_termination"])
            cold.wait(timeout=240)
            assert cold.result().all_ok
        with VerificationService(cache_dir=str(tmp_path / "cache")) as service:
            warm = service.submit_batch(protocols, properties=["layered_termination"])
            warm.wait(timeout=240)
            batch = warm.result()
            assert batch.statistics["cache"]["hits"] > 0
            kinds = [event.TYPE for event in warm.events_so_far()]
            assert "cache_hit" in kinds
            assert batch.statistics["events"]  # the trail is embedded here too
        configure_simplify_cache(None)  # do not leave the disk layer on tmp_path


class TestConcurrentWorkers:
    def test_two_workers_share_one_service(self):
        with VerificationService(workers=2) as service:
            handles = [
                service.submit(majority_protocol(), properties=["layered_termination"]),
                service.submit(broadcast_protocol(), properties=["layered_termination"]),
                service.submit(remainder_protocol([1], 3, 1), properties=["layered_termination"]),
            ]
            for handle in handles:
                assert handle.wait(timeout=240)
                assert handle.result().ok
        assert service.statistics["completed"] == 3


class TestVerifierServiceSurface:
    def test_verifier_exposes_its_service(self):
        with Verifier() as verifier:
            handle = verifier.service.submit(broadcast_protocol(), properties=["layered_termination"])
            assert handle.wait(timeout=120)
            assert handle.result().ok
            # Shared analysis contexts: the facade and the job API see the
            # same per-protocol context object.
            assert verifier.analysis_context(broadcast_protocol()) is verifier.service.analysis_context(
                broadcast_protocol()
            )

    def test_subproblem_envelopes_carry_the_job_id(self):
        from repro.engine.monitor import JobBinding, bound_to_job
        from repro.engine.subproblem import Subproblem

        sub = Subproblem(kind="poison", index=0, protocol_key="k", protocol_data={})
        assert sub.job_id is None  # unbound: plain library use
        with bound_to_job(JobBinding("job-42", record=lambda event: None)):
            bound = Subproblem(kind="poison", index=0, protocol_key="k", protocol_data={})
        assert bound.job_id == "job-42"


def test_finished_jobs_are_evicted_beyond_the_retention_bound(monkeypatch):
    """A long-running daemon must not index every job it ever ran."""
    from repro.service import service as service_module

    monkeypatch.setattr(service_module, "_MAX_FINISHED_JOBS", 2)
    with VerificationService() as service:
        handles = [
            service.submit(broadcast_protocol(), properties=["layered_termination"])
            for _ in range(4)
        ]
        for handle in handles:
            assert handle.wait(timeout=240)
        # One more finish triggers eviction bookkeeping for the backlog.
        last = service.submit(broadcast_protocol(), properties=["layered_termination"])
        assert last.wait(timeout=240)
        assert len(service.jobs()) <= 3  # bound + the job that triggered it
        with pytest.raises(KeyError):
            service.job(handles[0].job_id)
        # Held handles keep working after eviction.
        assert handles[0].result().ok


def test_service_timestamps_are_monotone_enough():
    with VerificationService() as service:
        handle = service.submit(broadcast_protocol(), properties=["layered_termination"])
        handle.wait(timeout=120)
        stamps = [event.timestamp for event in handle.events_so_far()]
    assert stamps == sorted(stamps)
    assert all(stamp > time.time() - 3600 for stamp in stamps)
