"""Presburger predicates and their compilations (Section 5).

Two compilation targets: WS³ protocols (:mod:`repro.presburger.compiler`,
the paper's constructive expressiveness result) and the constraint IR
(:mod:`repro.presburger.ir`, consumed by the correctness checker).
"""

from repro.presburger.compiler import compile_predicate
from repro.presburger.ir import predicate_system
from repro.presburger.predicates import (
    AndPredicate,
    FalsePredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    RemainderPredicate,
    ThresholdPredicate,
    TruePredicate,
)

__all__ = [
    "Predicate",
    "ThresholdPredicate",
    "RemainderPredicate",
    "NotPredicate",
    "AndPredicate",
    "OrPredicate",
    "TruePredicate",
    "FalsePredicate",
    "compile_predicate",
    "predicate_system",
]
