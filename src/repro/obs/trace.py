"""Hierarchical trace spans: contextvar tree, ring buffer, Chrome-trace JSON.

A *span* is one timed node of a job's execution tree::

    job → property → CEGAR iteration / layer → subproblem → solver check

Spans only exist while a :class:`TraceSink` is installed on the current
context (:func:`collect`); everywhere else :func:`span` costs one contextvar
read and yields ``None``, so the instrumentation sprinkled through the
engine and the solver layer is free for untraced runs — the invariant the
bench overhead budget (≤ 3 % vs. BENCH_4) rests on.

Crossing process boundaries: a worker process has no access to the
coordinator's sink, so :func:`repro.engine.worker.solve_subproblem` installs
a local sink when the envelope asks for tracing and ships the finished
spans home inside the :class:`~repro.engine.subproblem.SubproblemResult`.
The coordinator calls :func:`adopt_spans` at harvest, re-parenting each
worker-side *root* span under its own current span — the whole-job tree
stays singly rooted (asserted by the cross-process tests).

Timestamps are ``time.time()`` (wall clock): within one worker they are
monotone for all practical purposes, and across the coordinator and its
workers they live on the same clock, so the Chrome trace viewer lays the
process lanes out on one axis.  Span ids are ``<pid>-<seq>``, unique across
the pool without coordination.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

#: Default ring-buffer capacity of one sink: large enough for the deepest
#: bench job (tens of pattern pairs × CEGAR iterations × solver checks),
#: bounded so a pathological job cannot grow a report without limit.
TRACE_RING_LIMIT = 20_000

_SEQ = itertools.count(1)
_SEQ_LOCK = threading.Lock()

_SINK: ContextVar["TraceSink | None"] = ContextVar("repro_trace_sink", default=None)
_PARENT: ContextVar[str | None] = ContextVar("repro_trace_parent", default=None)


def _new_span_id() -> str:
    with _SEQ_LOCK:
        sequence = next(_SEQ)
    return f"{os.getpid():x}-{sequence:x}"


class Span:
    """One finished (or in-flight) node of the trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "pid", "tid")

    def __init__(self, name: str, parent_id: str | None, attrs: dict):
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.end: float | None = None
        self.attrs = attrs
        self.pid = os.getpid()
        self.tid = threading.get_ident()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }


class TraceSink:
    """A bounded ring buffer of finished spans (oldest dropped first)."""

    def __init__(self, limit: int = TRACE_RING_LIMIT):
        self._spans: deque[dict] = deque(maxlen=limit)
        self._lock = threading.Lock()
        self.dropped = 0

    def add(self, span_dict: dict) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span_dict)

    def spans(self) -> list[dict]:
        """Finished spans, oldest first (children precede their parents —
        a span is recorded when it *closes*)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def tracing_active() -> bool:
    """Whether a sink is installed on the calling context."""
    return _SINK.get() is not None


def current_span_id() -> str | None:
    """The id of the innermost open span on this context, or ``None``."""
    return _PARENT.get()


@contextmanager
def collect(sink: TraceSink):
    """Install ``sink`` (and a fresh root context) for the block."""
    sink_token = _SINK.set(sink)
    parent_token = _PARENT.set(None)
    try:
        yield sink
    finally:
        _PARENT.reset(parent_token)
        _SINK.reset(sink_token)


@contextmanager
def span(name: str, **attrs):
    """Open one span under the current parent; a no-op without a sink.

    Yields the open :class:`Span` (or ``None`` when tracing is off) so the
    body can attach late attributes (verdicts, iteration counts)::

        with span("solver.check", backend=name) as s:
            result = ...
            if s is not None:
                s.attrs["status"] = result.status.name
    """
    sink = _SINK.get()
    if sink is None:
        yield None
        return
    opened = Span(name, _PARENT.get(), attrs)
    token = _PARENT.set(opened.span_id)
    try:
        yield opened
    finally:
        _PARENT.reset(token)
        opened.end = time.time()
        sink.add(opened.to_dict())


def adopt_spans(spans, parent_id: str | None = None) -> None:
    """Merge worker-shipped spans into the active sink, re-parented.

    Every span whose parent is not *within* ``spans`` is a worker-side root;
    its parent becomes ``parent_id`` (default: the caller's current span).
    A no-op when tracing is inactive — harvesting untraced results costs
    nothing.
    """
    sink = _SINK.get()
    if sink is None or not spans:
        return
    if parent_id is None:
        parent_id = _PARENT.get()
    local_ids = {span_dict["span_id"] for span_dict in spans}
    for span_dict in spans:
        adopted = dict(span_dict)
        if adopted.get("parent_id") not in local_ids:
            adopted["parent_id"] = parent_id
        sink.add(adopted)


# ----------------------------------------------------------------------
# Serialization: Chrome trace event format
# ----------------------------------------------------------------------


def chrome_trace(spans) -> dict:
    """Spans as a Chrome trace (``chrome://tracing`` / Perfetto ``.json``).

    Complete events (``"ph": "X"``) with microsecond timestamps; span ids
    and parent ids ride in ``args`` so the tree survives the round trip
    (the ``repro-verify trace`` pretty-printer reads them back).
    """
    events = []
    for span_dict in spans:
        start = span_dict["start"]
        end = span_dict.get("end", start) or start
        events.append(
            {
                "ph": "X",
                "name": span_dict["name"],
                "cat": "repro",
                "ts": round(start * 1e6, 3),
                "dur": round(max(0.0, end - start) * 1e6, 3),
                "pid": span_dict.get("pid", 0),
                "tid": span_dict.get("tid", 0),
                "args": {
                    "span_id": span_dict["span_id"],
                    "parent_id": span_dict.get("parent_id"),
                    **span_dict.get("attrs", {}),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(payload: dict) -> list[dict]:
    """Inverse of :func:`chrome_trace` (tolerates foreign extra events)."""
    spans = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X" or "span_id" not in event.get("args", {}):
            continue
        args = dict(event["args"])
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        start = event.get("ts", 0.0) / 1e6
        spans.append(
            {
                "name": event.get("name", "?"),
                "span_id": span_id,
                "parent_id": parent_id,
                "start": start,
                "end": start + event.get("dur", 0.0) / 1e6,
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "attrs": args,
            }
        )
    return spans


def self_times(spans) -> dict[str, float]:
    """Per-span self time: duration minus the duration of direct children."""
    durations = {
        span_dict["span_id"]: max(0.0, span_dict.get("end", span_dict["start"]) - span_dict["start"])
        for span_dict in spans
    }
    self_time = dict(durations)
    known = set(durations)
    for span_dict in spans:
        parent = span_dict.get("parent_id")
        if parent in known:
            self_time[parent] -= durations[span_dict["span_id"]]
    return {span_id: max(0.0, value) for span_id, value in self_time.items()}
